//! Cross-crate integration: strike targets produce the architecturally
//! expected corruption signatures on real kernels.

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::accel::config::DeviceConfig;
use radcrit::accel::engine::Engine;
use radcrit::accel::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
use radcrit::core::compare::compare_slices;
use radcrit::core::locality::{LocalityClassifier, SpatialClass};
use radcrit::core::shape::OutputShape;
use radcrit::kernels::dgemm::Dgemm;
use radcrit::kernels::lavamd::LavaMd;
use radcrit::kernels::Workload;

const N: usize = 48;

fn run_dgemm(device: DeviceConfig, strike: StrikeSpec, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let engine = Engine::new(device);
    let mut kernel = Dgemm::new(N, 7).unwrap();
    let golden = engine.golden(&mut kernel).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let run = engine.run(&mut kernel, &strike, &mut rng).unwrap();
    (golden.output, run.output)
}

fn classify(golden: &[f64], observed: &[f64]) -> (usize, SpatialClass) {
    let report = compare_slices(golden, observed, OutputShape::d2(N, N)).unwrap();
    (
        report.incorrect_elements(),
        LocalityClassifier::default().classify(&report),
    )
}

#[test]
fn fpu_strike_is_a_single_error() {
    let strike = StrikeSpec::new(
        2,
        StrikeTarget::Fpu {
            mask: 1 << 62,
            op_index: 17,
        },
    );
    let (golden, observed) = run_dgemm(DeviceConfig::kepler_k40(), strike, 1);
    let (count, class) = classify(&golden, &observed);
    assert_eq!(count, 1);
    assert_eq!(class, SpatialClass::Single);
}

#[test]
fn scheduler_skip_is_a_square_error() {
    let strike = StrikeSpec::new(4, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
    let (golden, observed) = run_dgemm(DeviceConfig::kepler_k40(), strike, 2);
    let (count, class) = classify(&golden, &observed);
    assert_eq!(count, 16 * 16, "a whole 16x16 output tile");
    assert_eq!(class, SpatialClass::Square);
}

#[test]
fn phi_unit_garble_is_a_large_block() {
    // Static chunking: a corrupted core loses the contiguous remainder of
    // its chunk — a band of the output matrix.
    let strike = StrikeSpec::new(0, StrikeTarget::UnitGarble);
    let (golden, observed) = run_dgemm(DeviceConfig::xeon_phi_3120a(), strike, 3);
    let (count, class) = classify(&golden, &observed);
    assert!(count > 100, "chunk-sized corruption, got {count}");
    assert!(
        class == SpatialClass::Square || class == SpatialClass::Line,
        "contiguous chunk must form a dense block, got {class}"
    );
}

#[test]
fn vector_strike_hits_consecutive_elements() {
    let strike = StrikeSpec::new(
        1,
        StrikeTarget::VectorRegister {
            mask: 1 << 61,
            lanes: 8,
            op_index: 0,
        },
    );
    let (golden, observed) = run_dgemm(DeviceConfig::xeon_phi_3120a(), strike, 4);
    let report = compare_slices(&golden, &observed, OutputShape::d2(N, N)).unwrap();
    assert!(report.incorrect_elements() <= 8);
    assert!(report.incorrect_elements() >= 1);
}

#[test]
fn lavamd_l2_strike_spreads_over_neighbouring_boxes() {
    // A corrupted cached rv line is read by up to 27 neighbour boxes in
    // the Phi's long-lived L2: the paper's cubic pattern in box space.
    let device = DeviceConfig::xeon_phi_3120a();
    let engine = Engine::new(device);
    let mut kernel = LavaMd::new(4, 6, 3).unwrap();
    let golden = engine.golden(&mut kernel).unwrap();
    let mut found_multibox = false;
    for seed in 0..40u64 {
        let strike = StrikeSpec::new(4, StrikeTarget::L2 { mask: 1 << 61 });
        let mut rng = StdRng::seed_from_u64(seed);
        let run = engine.run(&mut kernel, &strike, &mut rng).unwrap();
        let boxes: std::collections::HashSet<_> = golden
            .output
            .iter()
            .zip(&run.output)
            .enumerate()
            .filter(|(_, (g, o))| g != o)
            .map(|(i, _)| kernel.error_coord(i))
            .collect();
        if boxes.len() >= 4 {
            found_multibox = true;
            break;
        }
    }
    assert!(
        found_multibox,
        "some input strike must spread over several boxes"
    );
}

#[test]
fn masked_strikes_leave_output_untouched() {
    // An FPU strike with an op index beyond the tile's work never lands.
    let strike = StrikeSpec::new(
        0,
        StrikeTarget::Fpu {
            mask: 1 << 60,
            op_index: u64::MAX / 2,
        },
    );
    let (golden, observed) = run_dgemm(DeviceConfig::kepler_k40(), strike, 5);
    assert_eq!(golden, observed);
}
