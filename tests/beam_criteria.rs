//! Cross-crate integration: beam-session bookkeeping against real kernel
//! cross sections (§IV-D experimental design).

use radcrit::accel::engine::Engine;
use radcrit::campaign::presets;
use radcrit::campaign::KernelSpec;
use radcrit::faults::beam::{BeamSession, Facility};
use radcrit::faults::site::SiteTable;

#[test]
fn single_strike_criterion_holds_for_preset_kernels() {
    // The paper tunes the beam so that at most one neutron corrupts an
    // execution (<1e-3 errors/execution). Check the criterion with our
    // pseudo-cross-sections and realistic wall times.
    let session = BeamSession::paper_reference();
    for (device, kernel) in [
        (presets::k40(), KernelSpec::Dgemm { n: 64 }),
        (presets::xeon_phi(), KernelSpec::Dgemm { n: 64 }),
        (
            presets::k40(),
            KernelSpec::LavaMd {
                grid: 3,
                particles: 8,
            },
        ),
    ] {
        let engine = Engine::new(device.clone());
        let mut k = kernel.build(1).unwrap();
        let golden = engine.golden(k.as_mut()).unwrap();
        let table = SiteTable::for_program(&device, &golden.profile);
        let sigma = table.total_cm2();
        assert!(
            session.single_strike_criterion(sigma, 1.0),
            "{} {}: {} strikes/exec",
            device.kind(),
            kernel.name(),
            session.strikes_per_execution(sigma, 1.0)
        );
    }
}

#[test]
fn fluence_accounting_matches_fit_scaling() {
    use radcrit::core::fit::{FitRate, Fluence};
    let session = BeamSession::new(Facility::Lansce, 100.0, 2, 1.0);
    let fluence = session.total_fluence();
    // Double the events, double the FIT.
    let one = FitRate::from_events_sea_level(10, fluence);
    let two = FitRate::from_events_sea_level(20, fluence);
    assert!((two.value() / one.value() - 2.0).abs() < 1e-12);
    // Doubling beam time at fixed events halves the FIT.
    let longer = BeamSession::new(Facility::Lansce, 200.0, 2, 1.0);
    let less = FitRate::from_events_sea_level(10, longer.total_fluence());
    assert!((one.value() / less.value() - 2.0).abs() < 1e-12);
    let _ = Fluence::new(1.0).unwrap();
}

#[test]
fn site_tables_reflect_architecture() {
    use radcrit::faults::site::Site;
    let engine_k40 = Engine::new(presets::k40());
    let engine_phi = Engine::new(presets::xeon_phi());

    let mut dgemm = KernelSpec::Dgemm { n: 64 }.build(1).unwrap();
    let k40_profile = engine_k40.golden(dgemm.as_mut()).unwrap().profile;
    let phi_profile = engine_phi.golden(dgemm.as_mut()).unwrap().profile;
    let k40 = SiteTable::for_program(&presets::k40(), &k40_profile);
    let phi = SiteTable::for_program(&presets::xeon_phi(), &phi_profile);

    // The architectural asymmetries the whole study rests on:
    assert!(
        k40.share(Site::Scheduler) > phi.share(Site::Scheduler),
        "hardware scheduler exposes more state than the OS's core contexts"
    );
    assert!(
        phi.share(Site::CoreControl) > k40.share(Site::CoreControl),
        "complex in-order x86 cores expose more control state"
    );
    assert_eq!(k40.weight(Site::VectorRegister), 0.0);
    assert_eq!(phi.weight(Site::RegisterFile), 0.0);
    assert_eq!(phi.weight(Site::Sfu), 0.0, "no exposed SFU on the Phi");
}

#[test]
fn lavamd_occupancy_limits_k40_register_exposure() {
    // §V-B: local memory bounds LavaMD's active threads on the K40, so
    // its register site is far smaller than an occupancy-unlimited
    // kernel's despite the larger thread count.
    use radcrit::faults::site::Site;
    let device = presets::k40();
    let engine = Engine::new(device.clone());

    let mut lavamd = KernelSpec::LavaMd {
        grid: 5,
        particles: 16,
    }
    .build(1)
    .unwrap();
    let lavamd_profile = engine.golden(lavamd.as_mut()).unwrap().profile;
    let mut hotspot = KernelSpec::HotSpot {
        rows: 64,
        cols: 64,
        iterations: 2,
    }
    .build(1)
    .unwrap();
    let hotspot_profile = engine.golden(hotspot.as_mut()).unwrap().profile;

    assert!(
        lavamd_profile.resident_threads < lavamd_profile.instantiated_threads,
        "local memory must limit LavaMD residency"
    );
    let lavamd_table = SiteTable::for_program(&device, &lavamd_profile);
    let hotspot_table = SiteTable::for_program(&device, &hotspot_profile);
    assert!(
        lavamd_table.share(Site::RegisterFile) < hotspot_table.share(Site::RegisterFile),
        "occupancy-limited LavaMD has the smaller register share"
    );
}
