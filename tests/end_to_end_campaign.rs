//! Cross-crate integration: the full campaign pipeline from device model
//! to criticality summary, logs and CSV.

use radcrit::accel::config::DeviceConfig;
use radcrit::campaign::{log, Campaign, InjectionOutcome, KernelSpec};

fn campaign(device: DeviceConfig, kernel: KernelSpec, n: usize) -> Campaign {
    Campaign::new(device, kernel, n, 99).with_workers(2)
}

#[test]
fn dgemm_campaign_end_to_end_on_both_devices() {
    for device in [
        DeviceConfig::kepler_k40().scaled(8).unwrap(),
        DeviceConfig::xeon_phi_3120a().scaled(8).unwrap(),
    ] {
        let name = device.kind().to_string();
        let result = campaign(device, KernelSpec::Dgemm { n: 32 }, 80)
            .run()
            .unwrap();
        let s = result.summary();
        assert_eq!(s.injections, 80, "{name}");
        assert_eq!(s.masked + s.sdc + s.crash + s.hang, 80, "{name}");
        assert!(s.sdc > 0, "{name}: a campaign this size must observe SDCs");
        assert!(s.sigma_total > 0.0);
        // FIT bookkeeping is consistent with the outcome counts.
        let expected_fit = s.sdc as f64 / 80.0 * s.sigma_total;
        assert!((s.fit_all_total() - expected_fit).abs() < 1e-6 * expected_fit.max(1.0));
    }
}

#[test]
fn every_kernel_runs_in_a_campaign() {
    let device = DeviceConfig::xeon_phi_3120a().scaled(8).unwrap();
    let kernels = [
        KernelSpec::Dgemm { n: 32 },
        KernelSpec::LavaMd {
            grid: 3,
            particles: 6,
        },
        KernelSpec::HotSpot {
            rows: 16,
            cols: 16,
            iterations: 6,
        },
        KernelSpec::Shallow {
            rows: 24,
            cols: 24,
            steps: 10,
        },
    ];
    for kernel in kernels {
        let result = campaign(device.clone(), kernel, 40).run().unwrap();
        assert_eq!(result.records.len(), 40, "{}", kernel.name());
    }
}

#[test]
fn sdc_details_are_internally_consistent() {
    let device = DeviceConfig::kepler_k40().scaled(8).unwrap();
    let result = campaign(device, KernelSpec::Dgemm { n: 32 }, 150)
        .run()
        .unwrap();
    for r in &result.records {
        if let InjectionOutcome::Sdc(d) = &r.outcome {
            let c = &d.criticality;
            assert!(c.incorrect_elements > 0);
            assert!(c.filtered_incorrect_elements <= c.incorrect_elements);
            assert!(c.mean_relative_error.is_some());
            if c.filtered_incorrect_elements > 0 {
                // Surviving mismatches must exceed the threshold, so their
                // mean does too.
                let fmre = c.filtered_mean_relative_error.expect("non-empty mean");
                assert!(fmre > c.threshold_pct || fmre.is_nan());
            } else {
                assert_eq!(c.filtered_mean_relative_error, None);
            }
            assert!(r.delivered, "an SDC requires a delivered strike");
        }
    }
}

#[test]
fn log_and_csv_cover_all_records() {
    let device = DeviceConfig::kepler_k40().scaled(8).unwrap();
    let result = campaign(device, KernelSpec::Dgemm { n: 32 }, 50)
        .run()
        .unwrap();

    let mut log_buf = Vec::new();
    log::write_log(&result, &mut log_buf).unwrap();
    let log_text = String::from_utf8(log_buf).unwrap();
    assert_eq!(log_text.lines().count(), 51, "header + one line per record");

    let mut csv_buf = Vec::new();
    log::write_csv(&result, &mut csv_buf).unwrap();
    let csv_text = String::from_utf8(csv_buf).unwrap();
    assert_eq!(csv_text.lines().count(), 51);
    // Outcome tags in the CSV agree with the records.
    for (line, record) in csv_text.lines().skip(1).zip(&result.records) {
        let tag = line.split(',').nth(1).unwrap();
        assert_eq!(tag, record.outcome.tag());
    }
}

#[test]
fn campaigns_are_reproducible() {
    let device = DeviceConfig::xeon_phi_3120a().scaled(8).unwrap();
    let c = campaign(device, KernelSpec::Dgemm { n: 32 }, 60);
    let a = c.run().unwrap();
    let b = c.run().unwrap();
    assert_eq!(a.records, b.records);
    assert_eq!(a.sigma_total, b.sigma_total);
}
