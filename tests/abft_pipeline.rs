//! Cross-crate integration: ABFT checksum correction applied to outputs
//! corrupted by the *simulator* (not synthetic patterns), closing the
//! loop of §III's hardening discussion.

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::abft::{AbftDgemm, AbftOutcome};
use radcrit::accel::config::DeviceConfig;
use radcrit::accel::engine::Engine;
use radcrit::accel::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
use radcrit::kernels::dgemm::Dgemm;
use radcrit::kernels::input::matrix_value;

const N: usize = 32;
const SEED: u64 = 13;

fn checker() -> AbftDgemm {
    let mut a = Vec::with_capacity(N * N);
    let mut b = Vec::with_capacity(N * N);
    for i in 0..N {
        for j in 0..N {
            a.push(matrix_value(SEED, i, j));
            b.push(matrix_value(SEED ^ 0xB, i, j));
        }
    }
    AbftDgemm::from_inputs(&a, &b, N, 1e-7)
}

fn corrupted_output(strike: StrikeSpec, rng_seed: u64) -> (Vec<f64>, Vec<f64>) {
    let engine = Engine::new(DeviceConfig::kepler_k40());
    let mut kernel = Dgemm::new(N, SEED).unwrap();
    let golden = engine.golden(&mut kernel).unwrap();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let run = engine.run(&mut kernel, &strike, &mut rng).unwrap();
    (golden.output, run.output)
}

#[test]
fn abft_corrects_simulator_induced_single_error() {
    // Flip the lowest exponent bit: the corrupted partial product moves
    // by O(value) — large enough to trip the checksums, small enough
    // that the additive correction is numerically exact. (A 2^1024-scale
    // corruption would defeat the *correction* through floating-point
    // cancellation even though detection still works — a real limitation
    // of checksum ABFT.)
    let strike = StrikeSpec::new(
        1,
        StrikeTarget::Fpu {
            mask: 1 << 52,
            op_index: 5,
        },
    );
    let (golden, observed) = corrupted_output(strike, 1);
    assert_ne!(golden, observed, "strike must corrupt the product");
    let mut c = observed;
    match checker().check(&mut c) {
        AbftOutcome::Corrected(1) => {}
        other => panic!("expected single-element correction, got {other:?}"),
    }
    for (i, (&got, &want)) in c.iter().zip(&golden).enumerate() {
        assert!(
            (got - want).abs() <= 1e-6 * want.abs().max(1.0),
            "element {i} not restored"
        );
    }
}

#[test]
fn abft_detects_but_cannot_correct_skipped_tile() {
    // A skipped 16x16 tile is a square error: §III says ABFT cannot
    // correct it — and must not silently "fix" it into garbage.
    let strike = StrikeSpec::new(2, StrikeTarget::Scheduler(SchedulerEffect::SkipTile));
    let (golden, observed) = corrupted_output(strike, 2);
    assert_ne!(golden, observed);
    let mut c = observed;
    match checker().check(&mut c) {
        AbftOutcome::DetectedUncorrectable { rows, cols } => {
            assert_eq!(rows.len(), 16);
            assert_eq!(cols.len(), 16);
        }
        other => panic!("expected uncorrectable square, got {other:?}"),
    }
}

#[test]
fn abft_passes_untouched_golden_output() {
    let engine = Engine::new(DeviceConfig::kepler_k40());
    let mut kernel = Dgemm::new(N, SEED).unwrap();
    let golden = engine.golden(&mut kernel).unwrap();
    let mut c = golden.output;
    assert_eq!(checker().check(&mut c), AbftOutcome::Clean);
}
