//! Cross-crate integration: the Table I classification of the kernels is
//! *measured* from execution traces, not just asserted.

use radcrit::accel::engine::Engine;
use radcrit::campaign::presets;
use radcrit::campaign::KernelSpec;

fn trace(spec: KernelSpec) -> radcrit::accel::ExecutionTrace {
    let engine = Engine::new(presets::k40());
    let mut kernel = spec.build(1).expect("preset kernel");
    let (_, trace) = engine.golden_traced(kernel.as_mut()).expect("traced run");
    trace
}

#[test]
fn dgemm_is_compute_bound_hotspot_is_memory_bound() {
    let dgemm = trace(KernelSpec::Dgemm { n: 64 });
    let hotspot = trace(KernelSpec::HotSpot {
        rows: 64,
        cols: 64,
        iterations: 8,
    });
    // Table I: DGEMM bound by CPU, HotSpot by memory. Operational
    // intensity (ops per element moved) is the roofline-style proxy the
    // paper cites.
    assert!(
        dgemm.operational_intensity() > 2.0 * hotspot.operational_intensity(),
        "DGEMM OI {} must dwarf HotSpot OI {}",
        dgemm.operational_intensity(),
        hotspot.operational_intensity()
    );
}

#[test]
fn lavamd_is_imbalanced_dgemm_is_balanced() {
    let dgemm = trace(KernelSpec::Dgemm { n: 64 });
    let lavamd = trace(KernelSpec::LavaMd {
        grid: 4,
        particles: 8,
    });
    // Border boxes have 8-18 neighbours, interior 27: per-tile work
    // varies strongly for LavaMD, hardly at all for DGEMM.
    assert!(
        lavamd.tile_cv() > 5.0 * dgemm.tile_cv().max(1e-6),
        "LavaMD tile CV {} vs DGEMM {}",
        lavamd.tile_cv(),
        dgemm.tile_cv()
    );
}

#[test]
fn clamr_work_varies_across_launches() {
    // The AMR-like activity window: the number of tiles dispatched per
    // step grows as the dam-break wave expands (Table II: "#cells or
    // more (AMR)") — so the work per *unit of simulated time* varies
    // even though each dispatched tile is row-shaped.
    use radcrit::accel::program::TiledProgram;
    use radcrit::kernels::shallow::ShallowWater;

    let mut kernel = ShallowWater::new(128, 64, 60).expect("shallow builds");
    let first = kernel.tiles_in_step(0);
    let last = kernel.tiles_in_step(59);
    assert!(
        last > first,
        "tiles per step must grow with the wave: {first} -> {last}"
    );

    // The trace agrees with the activity schedule tile for tile.
    let engine = Engine::new(presets::xeon_phi());
    let (_, trace) = engine.golden_traced(&mut kernel).expect("traced");
    assert_eq!(trace.tiles().len(), kernel.tile_count());
    // And the per-launch thread count reported to the fault model is the
    // widest step, not the whole run.
    assert_eq!(
        kernel.tiles_per_launch(),
        (0..60).map(|s| kernel.tiles_in_step(s)).max().unwrap()
    );
}

#[test]
fn hotspot_is_perfectly_balanced_across_units() {
    let hotspot = trace(KernelSpec::HotSpot {
        rows: 64,
        cols: 64,
        iterations: 4,
    });
    assert!(
        hotspot.unit_imbalance() < 1.35,
        "HotSpot per-unit imbalance {} should be near 1",
        hotspot.unit_imbalance()
    );
}
