//! # radcrit
//!
//! Umbrella crate for the radcrit workspace: a reproduction of
//! *"Radiation-Induced Error Criticality in Modern HPC Parallel
//! Accelerators"* (Oliveira et al., HPCA 2017) built on a simulated
//! accelerator substrate.
//!
//! Re-exports every sub-crate under a short module name:
//!
//! * [`core`] — the four error-criticality metrics and FIT accounting;
//! * [`accel`] — the architectural simulator (K40- and Xeon-Phi-like
//!   device models, caches, schedulers, execution engine);
//! * [`faults`] — the neutron-beam model and fault-injection engine;
//! * [`kernels`] — DGEMM, LavaMD, HotSpot and the CLAMR-equivalent
//!   shallow-water AMR solver;
//! * [`abft`] — checksum-hardened DGEMM (Huang–Abraham ABFT);
//! * [`campaign`] — beam-campaign orchestration, logs and statistics;
//! * [`obs`] — observability: metrics registry, structured event stream
//!   and fault-provenance records.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use radcrit_abft as abft;
pub use radcrit_accel as accel;
pub use radcrit_campaign as campaign;
pub use radcrit_core as core;
pub use radcrit_faults as faults;
pub use radcrit_kernels as kernels;
pub use radcrit_obs as obs;
