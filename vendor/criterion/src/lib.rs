//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the radcrit benches use (`Criterion`,
//! benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Passing `--test` (as `cargo test` does for
//! bench targets) runs every benchmark body exactly once.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.test_mode, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&label, samples, self.parent.test_mode, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&label, samples, self.parent.test_mode, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

/// Timing harness handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    median: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples: samples.max(1),
        test_mode,
        median: None,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok");
    } else {
        match b.median {
            Some(m) => println!("bench {label:<48} median {m:>12.3?}"),
            None => println!("bench {label:<48} (no measurement)"),
        }
    }
}

/// Collects benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
