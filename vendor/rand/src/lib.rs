//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The radcrit workspace must build without registry access, so this
//! crate re-implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] (with `gen_range` over integer and float
//!   ranges and `gen_bool`),
//! * [`SeedableRng`] (`from_seed` + `seed_from_u64`),
//! * [`rngs::StdRng`], a deterministic xoshiro256\*\*-based generator.
//!
//! The streams differ from upstream `rand`'s (`StdRng` makes no
//! portability promise upstream either); everything in radcrit only
//! relies on determinism for a given seed, which this crate provides.

#![deny(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced here, kept for
/// API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and fallback generator.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by 128-bit widening multiply (Lemire,
/// without the rejection step — the bias is ≤ 2⁻⁶⁴ per draw, far below
/// anything the simulation can observe).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128) * span) >> 64
}

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )+};
}

float_sample_range!(f32, f64);

pub mod rngs {
    //! Standard generators.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// Deterministic general-purpose generator (xoshiro256\*\*).
    ///
    /// Like upstream `StdRng`, the exact stream is an implementation
    /// detail; only per-seed determinism is guaranteed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // xoshiro state must not be all-zero.
            if s == [0; 4] {
                let mut sm = SplitMix64(0xDEAD_BEEF_CAFE_F00D);
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: u64 = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
