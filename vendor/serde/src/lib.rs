//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! derive-macro namespaces so existing `use serde::{Deserialize,
//! Serialize}` imports and `#[derive(...)]` attributes compile without
//! registry access. No serialization machinery is provided — the
//! workspace's on-disk formats (campaign logs, CSV, JSONL checkpoints)
//! are hand-written.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
