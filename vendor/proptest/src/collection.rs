//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size` (half-open, like the real crate's `SizeRange`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates hash sets of distinct elements from `element` with a size in
/// `size`. The element domain must be large enough to supply that many
/// distinct values; generation gives up (with fewer elements) after a
/// bounded number of attempts, mirroring the real crate's behavior of
/// rejecting duplicates a limited number of times.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = sample_len(&self.size, rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 32 + 64 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty size range");
    let span = (size.end - size.start) as u64;
    size.start + rng.below(span) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let mut rng = TestRng::for_test("veclen");
        let s = vec(0.0f64..1.0, 2..9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_is_distinct_and_sized() {
        let mut rng = TestRng::for_test("hashset");
        let s = hash_set(0usize..100, 3..7);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!((3..7).contains(&set.len()), "len {}", set.len());
        }
    }
}
