//! Test configuration and the deterministic case RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps engine-heavy
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64 seeded from the test
/// path), so failures reproduce on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully-qualified test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn per_name_determinism() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
