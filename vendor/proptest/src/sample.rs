//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Picks uniformly among `options`; must be non-empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
