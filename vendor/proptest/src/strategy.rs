//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// expansion).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union over `arms`; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + (hi - lo) * u
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (0usize..4, -1.0f64..1.0).prop_map(|(i, x)| (i * 10, x.abs()));
        for _ in 0..200 {
            let (i, x) = s.generate(&mut rng);
            assert!(i % 10 == 0 && i < 40);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::for_test("union");
        let u = crate::prop_oneof![
            (0usize..1).prop_map(|_| 1usize),
            (0usize..1).prop_map(|_| 2usize)
        ];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
