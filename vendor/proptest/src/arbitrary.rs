//! `any::<T>()` support for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Primitive<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Default for Primitive<T> {
    fn default() -> Self {
        Primitive {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! arbitrary_prim {
    ($($t:ty => |$rng:ident| $gen:expr;)+) => {$(
        impl Strategy for Primitive<$t> {
            type Value = $t;

            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }

        impl Arbitrary for $t {
            type Strategy = Primitive<$t>;

            fn arbitrary() -> Self::Strategy {
                Primitive::default()
            }
        }
    )+};
}

arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    f64 => |rng| rng.unit_f64() * 2e9 - 1e9;
    f32 => |rng| (rng.unit_f64() * 2e9 - 1e9) as f32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::for_test("bools");
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.generate(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 20 && t < 80, "{t}");
    }
}
