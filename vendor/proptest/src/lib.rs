//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the radcrit workspace uses:
//! the [`proptest!`] macro, `prop_assert*` macros, [`prop_oneof!`],
//! range/tuple/collection strategies, `prop_map`, `any::<T>()`,
//! `sample::select` and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for an offline build:
//!
//! * cases are generated from a deterministic per-test RNG (seeded from
//!   the test name), so failures reproduce exactly on re-run;
//! * there is **no shrinking** — a failing case reports the panic from
//!   the offending iteration directly;
//! * `prop_assert*` are plain `assert*` (they panic instead of returning
//!   a `TestCaseError`).

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace alias so `prop::collection::...` / `prop::sample::...`
/// paths from the real prelude keep working.
pub mod prop {
    pub use crate::arbitrary;
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to `continue` — the surrounding generated test loop simply
/// moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Picks uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` expands to a `#[test]`
/// function that runs `body` for `ProptestConfig::cases` deterministic
/// samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}
