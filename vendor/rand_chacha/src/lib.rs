//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha keystream generator (the RFC 8439 quarter
//! round over a 16-word state) with 8- and 12-round variants, seeded
//! through the vendored [`rand::SeedableRng`] trait. The word stream is
//! not guaranteed to match upstream `rand_chacha` (which draws words out
//! of the 64-byte block in a particular order); radcrit only relies on
//! per-seed determinism.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// One ChaCha block generator with `R` double rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 ⇒ exhausted).
    cursor: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *w = u32::from_le_bytes(b);
        }
        ChaChaCore {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<{ $rounds / 2 }>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast statistically-strong variant.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds (the RFC 8439 cipher strength).
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn rounds_distinguish_variants() {
        let mut r8 = ChaCha8Rng::seed_from_u64(1);
        let mut r12 = ChaCha12Rng::seed_from_u64(1);
        assert_ne!(r8.next_u64(), r12.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
