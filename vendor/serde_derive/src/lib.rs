//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in environments with no registry access, so the
//! real serde cannot be fetched. Nothing in this workspace serializes
//! through serde's data model (the campaign checkpoint format is
//! hand-written JSONL), therefore the derives only need to *exist* so
//! that `#[derive(Serialize, Deserialize)]` attributes keep compiling.
//! They expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
