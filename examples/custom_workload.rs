//! Bringing your own kernel: criticality analysis for a workload the
//! paper never tested.
//!
//! Implements [`TiledProgram`] + [`Workload`]-style analysis for a 1-D
//! Jacobi solver (tridiagonal Poisson relaxation) from scratch, then runs
//! it through the same pipeline as the paper's kernels: golden run, site
//! table, fault injection, and the four §III metrics.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::accel::engine::Engine;
use radcrit::accel::error::AccelError;
use radcrit::accel::memory::{BufferId, DeviceMemory};
use radcrit::accel::program::{TileCtx, TileId, TiledProgram};
use radcrit::campaign::presets;
use radcrit::core::compare::compare_slices;
use radcrit::core::filter::ToleranceFilter;
use radcrit::core::locality::LocalityClassifier;
use radcrit::core::shape::OutputShape;
use radcrit::faults::sampler::{FaultSampler, InjectionPlan};

/// A 1-D Jacobi relaxation: `x'_i = (b_i + x_{i-1} + x_{i+1}) / 2`,
/// double-buffered, `sweeps` iterations over `n` unknowns.
#[derive(Debug)]
struct Jacobi1d {
    n: usize,
    sweeps: usize,
    b: Vec<f64>,
    bufs: Option<[BufferId; 3]>, // x_a, x_b, b
}

const TILE: usize = 64;

impl Jacobi1d {
    fn new(n: usize, sweeps: usize, seed: u64) -> Self {
        let b = (0..n)
            .map(|i| radcrit::kernels::input::in_range(seed, i as u64, -1.0, 1.0))
            .collect();
        Jacobi1d {
            n,
            sweeps,
            b,
            bufs: None,
        }
    }

    fn tiles_per_sweep(&self) -> usize {
        self.n / TILE
    }
}

impl TiledProgram for Jacobi1d {
    fn name(&self) -> &str {
        "jacobi1d"
    }

    fn tile_count(&self) -> usize {
        self.tiles_per_sweep() * self.sweeps
    }

    fn tiles_per_launch(&self) -> usize {
        self.tiles_per_sweep()
    }

    fn threads_per_tile(&self) -> usize {
        TILE
    }

    fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
        self.bufs = Some([
            mem.alloc("x_a", self.n),
            mem.alloc("x_b", self.n),
            mem.alloc_init("b", &self.b),
        ]);
        Ok(())
    }

    fn execute_tile(&mut self, tile: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
        let [xa, xb, bb] = self.bufs.expect("setup ran");
        let tps = self.tiles_per_sweep();
        let (sweep, blk) = (tile.index() / tps, tile.index() % tps);
        let (src, dst) = if sweep % 2 == 0 { (xa, xb) } else { (xb, xa) };

        let start = blk * TILE;
        let lo = start.saturating_sub(1);
        let hi = (start + TILE).min(self.n - 1);
        let mut window = vec![0.0; hi - lo + 1];
        ctx.load(src, lo, &mut window)?;
        let mut rhs = vec![0.0; TILE];
        ctx.load(bb, start, &mut rhs)?;

        let mut out = vec![0.0; TILE];
        for k in 0..TILE {
            let i = start + k;
            let left = if i == 0 { 0.0 } else { window[i - 1 - lo] };
            let right = if i == self.n - 1 {
                0.0
            } else {
                window[i + 1 - lo]
            };
            let sum = ctx.add(left, right);
            let total = ctx.add(rhs[k], sum);
            out[k] = ctx.mul(0.5, total);
        }
        ctx.store(dst, start, &out)
    }

    fn output(&self) -> BufferId {
        let [xa, xb, _] = self.bufs.expect("setup ran");
        if self.sweeps.is_multiple_of(2) {
            xa
        } else {
            xb
        }
    }

    fn output_shape(&self) -> OutputShape {
        OutputShape::d1(self.n)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let mut kernel = Jacobi1d::new(4096, 40, 5);

    let golden = engine.golden(&mut kernel)?;
    println!(
        "custom kernel '{}': {} tiles, {:.2}M ops, output {} unknowns",
        kernel.name(),
        golden.profile.tiles,
        golden.profile.total_ops as f64 / 1e6,
        golden.output.len()
    );

    let sampler = FaultSampler::new(&device, &golden.profile);
    let tolerance = ToleranceFilter::paper_default();
    let classifier = LocalityClassifier::default();
    let shape = OutputShape::d1(4096);

    let (mut masked, mut fatal, mut sdc, mut critical) = (0, 0, 0, 0);
    let mut class_counts = std::collections::BTreeMap::new();
    for i in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ i);
        match sampler.sample(&mut rng) {
            InjectionPlan::Crash | InjectionPlan::Hang => fatal += 1,
            InjectionPlan::Strike(spec) => {
                let run = engine.run(&mut kernel, &spec, &mut rng)?;
                let report = compare_slices(&golden.output, &run.output, shape)?;
                if !report.is_sdc() {
                    masked += 1;
                    continue;
                }
                sdc += 1;
                let crit = report.criticality(&tolerance, &classifier);
                if crit.is_critical() {
                    critical += 1;
                }
                *class_counts
                    .entry(crit.locality.to_string())
                    .or_insert(0usize) += 1;
            }
        }
    }
    println!(
        "300 injections: {sdc} SDC ({critical} critical at 2%), {masked} masked, {fatal} fatal"
    );
    println!("locality mix: {class_counts:?}");
    println!(
        "\nreading: a relaxation solver behaves like a 1-D HotSpot — corrupted\n\
         values average away sweep by sweep, so most SDCs fall inside the 2%\n\
         tolerance; the pipeline needed zero changes to analyze a new kernel."
    );
    Ok(())
}
