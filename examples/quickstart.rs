//! Quickstart: inject one neutron strike into DGEMM on a simulated K40
//! and evaluate the paper's four error-criticality metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::accel::{config::DeviceConfig, engine::Engine};
use radcrit::core::compare::compare_slices;
use radcrit::core::{filter::ToleranceFilter, locality::LocalityClassifier, shape::OutputShape};
use radcrit::faults::sampler::{FaultSampler, InjectionPlan};
use radcrit::kernels::dgemm::Dgemm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated NVIDIA K40 and a 128x128 double-precision matrix
    //    multiplication with deterministic, paper-style inputs.
    let device = DeviceConfig::kepler_k40();
    let engine = Engine::new(device.clone());
    let mut kernel = Dgemm::new(128, 42)?;

    // 2. The golden (fault-free) execution: reference output plus the
    //    dynamic profile that determines what a neutron can hit.
    let golden = engine.golden(&mut kernel)?;
    println!(
        "golden run: {} tiles, {:.1}M arithmetic ops, {:.1} KiB resident in L2",
        golden.profile.tiles,
        golden.profile.total_ops as f64 / 1e6,
        golden.profile.l2_avg_resident_bytes / 1024.0
    );

    // 3. Sample neutron strikes until one produces a silent data
    //    corruption, then evaluate the four metrics of the paper.
    let sampler = FaultSampler::new(&device, &golden.profile);
    let shape = OutputShape::d2(128, 128);
    let tolerance = ToleranceFilter::paper_default(); // 2 %
    let classifier = LocalityClassifier::default();

    let mut rng = StdRng::seed_from_u64(7);
    for attempt in 1..=1000 {
        match sampler.sample(&mut rng) {
            InjectionPlan::Crash => println!("attempt {attempt}: application crash"),
            InjectionPlan::Hang => println!("attempt {attempt}: node hang"),
            InjectionPlan::Strike(spec) => {
                let run = engine.run(&mut kernel, &spec, &mut rng)?;
                let report = compare_slices(&golden.output, &run.output, shape)?;
                if !report.is_sdc() {
                    println!(
                        "attempt {attempt}: strike on {} masked",
                        spec.target.site_name()
                    );
                    continue;
                }
                let crit = report.criticality(&tolerance, &classifier);
                println!(
                    "\nattempt {attempt}: SDC from a {} strike!",
                    spec.target.site_name()
                );
                println!("  incorrect elements : {}", crit.incorrect_elements);
                println!(
                    "  mean relative error: {:.3e} %",
                    crit.mean_relative_error.unwrap_or(f64::NAN)
                );
                println!("  spatial locality   : {}", crit.locality);
                println!(
                    "  after 2% filter    : {} elements, locality {}",
                    crit.filtered_incorrect_elements, crit.filtered_locality
                );
                println!(
                    "  critical under imprecise computing? {}",
                    if crit.is_critical() {
                        "yes"
                    } else {
                        "no (tolerable)"
                    }
                );
                return Ok(());
            }
        }
    }
    println!("no SDC in 1000 attempts — try another seed");
    Ok(())
}
