//! The CLAMR error wave: conserved-quantity corruption that grows
//! instead of dissipating (Figs. 8/9 and §V-D).
//!
//! Injects one strike into the shallow-water dam break, renders the
//! corrupted-cell map as the wave expands, and shows the
//! mass-consistency check that CLAMR uses as a detector.
//!
//! ```sh
//! cargo run --release --example error_wave
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::accel::engine::Engine;
use radcrit::accel::strike::{StrikeSpec, StrikeTarget};
use radcrit::campaign::presets;
use radcrit::core::compare::compare_slices;
use radcrit::core::locality::LocalityClassifier;
use radcrit::core::shape::OutputShape;
use radcrit::kernels::shallow::ShallowWater;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::xeon_phi();
    let engine = Engine::new(device.clone());
    let (rows, cols) = (96, 96);

    // Render the corruption footprint at increasing simulation lengths:
    // the same seed and strike, observed earlier and later.
    println!("one L2 strike observed after increasing numbers of time steps:\n");
    let mut detected_once = false;
    for steps in [40usize, 90, 140] {
        let mut kernel = ShallowWater::new(rows, cols, steps)?;
        let golden = engine.golden(&mut kernel)?;

        // An early strike on a resident L2 line: flip an exponent bit of
        // cached simulation state shortly after the dam breaks. Strikes
        // that land on zero-valued momentum cells are numerically masked
        // (the flipped value is denormal-small), so hunt deterministically
        // for a seed whose victim line carries live data.
        let spec = StrikeSpec::new(
            golden.profile.tiles / 20,
            StrikeTarget::L2 { mask: 1 << 55 },
        );
        let mut run = None;
        for attempt in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xD00D ^ attempt);
            let candidate = engine.run(&mut kernel, &spec, &mut rng)?;
            if candidate.output != golden.output {
                run = Some(candidate);
                break;
            }
        }
        let Some(run) = run else {
            println!("after {steps:>3} steps: every strike was masked");
            continue;
        };
        let report = compare_slices(&golden.output, &run.output, OutputShape::d2(rows, cols))?;
        let class = LocalityClassifier::default().classify(&report);
        let golden_mass = ShallowWater::total_mass(&golden.output);
        let mass = ShallowWater::total_mass(&run.output);
        let drift = ((mass - golden_mass) / golden_mass).abs();

        println!(
            "after {steps:>3} steps: {:>5} corrupted cells ({class}), relative mass drift {drift:.2e}",
            report.incorrect_elements()
        );
        if report.is_sdc() {
            println!("{}", report.render_map(18, 36, '#'));
            if drift > 1e-12 {
                detected_once = true;
            }
        }
    }

    println!(
        "reading: unlike HotSpot's dissipating stencil, the conservation laws\n\
         advect the corruption outward — the paper's wave of incorrect elements\n\
         (Fig. 9). The broken invariant is also the detector: the mass check\n\
         {} the corruption here (the paper measures 82% coverage for CLAMR).",
        if detected_once { "caught" } else { "missed" }
    );
    Ok(())
}
