//! Imprecise computing: how the accepted misfit changes a device's
//! *measured* reliability.
//!
//! §II-B/§III of the paper: seismic wave simulations accept misfits of
//! about 4 % (de la Puente et al.), while the paper's conservative filter
//! uses 2 %. HotSpot "can be imprecisely classified with a radiation
//! sensitivity up to 95 % higher [when] considering any mismatch as the
//! sole metric" (§V-C). This example replays the same set of injected
//! HotSpot executions under several tolerance thresholds — the workflow
//! the paper enables by publishing its raw corrupted outputs — and
//! reports the SDC rate each application class would observe.
//!
//! ```sh
//! cargo run --release --example seismic_tolerance
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::accel::engine::Engine;
use radcrit::campaign::presets;
use radcrit::campaign::KernelSpec;
use radcrit::core::filter::ToleranceFilter;
use radcrit::core::report::ErrorReport;
use radcrit::core::shape::OutputShape;
use radcrit::faults::sampler::{FaultSampler, InjectionPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let spec = KernelSpec::HotSpot {
        rows: 128,
        cols: 128,
        iterations: 24,
    };
    let mut kernel = spec.build(11)?;
    let golden = engine.golden(kernel.as_mut())?;
    let sampler = FaultSampler::new(&device, &golden.profile);
    let shape = OutputShape::d2(128, 128);

    // Collect the corrupted outputs of 200 injected executions (the
    // "publicly accessible repository" of §III, in memory).
    println!("injecting 200 faults into HotSpot on the scaled K40 ...");
    let mut reports: Vec<ErrorReport> = Vec::new();
    let (mut crash, mut hang, mut masked) = (0u32, 0u32, 0u32);
    for i in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5E15 ^ i);
        match sampler.sample(&mut rng) {
            InjectionPlan::Crash => crash += 1,
            InjectionPlan::Hang => hang += 1,
            InjectionPlan::Strike(strike) => {
                let run = engine.run(kernel.as_mut(), &strike, &mut rng)?;
                let report =
                    radcrit::core::compare::compare_slices(&golden.output, &run.output, shape)?;
                if report.is_sdc() {
                    reports.push(report);
                } else {
                    masked += 1;
                }
            }
        }
    }
    println!(
        "outcomes: {} SDC, {masked} masked, {crash} crash, {hang} hang\n",
        reports.len()
    );

    println!("tolerance sweep over the same corrupted outputs:\n");
    println!(
        "{:>12} | {:>10} | {:>20} | note",
        "threshold", "SDC count", "apparent sensitivity"
    );
    println!("{:->12}-+-{:->10}-+-{:->20}-+-----", "", "", "");
    let strict = reports.len().max(1) as f64;
    for (threshold, note) in [
        (0.0, "bit-exact HPC"),
        (0.5, ""),
        (2.0, "paper's conservative filter"),
        (4.0, "seismic misfit budget"),
        (10.0, "aggressive imprecise computing"),
    ] {
        let filter = ToleranceFilter::new(threshold)?;
        let surviving = reports.iter().filter(|r| !filter.fully_masks(r)).count();
        println!(
            "{threshold:>11}% | {surviving:>10} | {:>19.0}% | {note}",
            surviving as f64 / strict * 100.0
        );
    }

    println!(
        "\nreading: demanding bit-exact output makes the device look far less\n\
         reliable than a seismic application with a 4% misfit budget would\n\
         experience — exactly the paper's argument for criticality metrics."
    );
    Ok(())
}
