//! Should you deploy ABFT? Answering §III's question with the locality
//! metric, then proving it with a live checksum correction.
//!
//! "By knowing the spatial locality we can evaluate if it is wise to
//! implement ABFT": single and line errors are correctable, square and
//! random ones are not; the paper estimates ABFT leaves 20-40 % of DGEMM
//! errors on the K40 and 60-80 % on the Xeon Phi.
//!
//! ```sh
//! cargo run --release --example abft_hardening
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit::abft::{AbftDgemm, AbftOutcome};
use radcrit::accel::engine::Engine;
use radcrit::campaign::presets;
use radcrit::campaign::{Campaign, KernelSpec};
use radcrit::faults::sampler::{FaultSampler, InjectionPlan};
use radcrit::kernels::dgemm::Dgemm;
use radcrit::kernels::input::matrix_value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: what does the locality metric predict?
    println!("running 150-injection DGEMM campaigns on both devices ...\n");
    for device in [presets::k40(), presets::xeon_phi()] {
        let summary = Campaign::new(device, KernelSpec::Dgemm { n: 128 }, 150, 5)
            .run()?
            .summary();
        let correctable = summary.fit_all.abft_correctable_fraction();
        println!(
            "{:>8}: {:>3} SDCs | single+line {:>3.0}% | residual under ABFT {:>3.0}%",
            summary.device,
            summary.sdc,
            correctable * 100.0,
            radcrit::abft::residual_fraction(&summary.fit_all) * 100.0,
        );
    }

    // Part 2: prove it end to end — checksum-correct real corrupted
    // products.
    println!("\nlive correction of real corrupted products (K40, 64x64):");
    let n = 64;
    let seed = 5;
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let mut kernel = Dgemm::new(n, seed)?;
    let golden = engine.golden(&mut kernel)?;
    let sampler = FaultSampler::new(&device, &golden.profile);

    let mut a = Vec::with_capacity(n * n);
    let mut b = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            a.push(matrix_value(seed, i, j));
            b.push(matrix_value(seed ^ 0xB, i, j));
        }
    }
    let checker = AbftDgemm::from_inputs(&a, &b, n, 1e-7);

    let (mut corrected, mut uncorrectable, mut invisible, mut shown) = (0, 0, 0, 0);
    for i in 0..600u64 {
        let mut rng = StdRng::seed_from_u64(0xABF7 ^ i);
        let InjectionPlan::Strike(spec) = sampler.sample(&mut rng) else {
            continue;
        };
        let run = engine.run(&mut kernel, &spec, &mut rng)?;
        if run.output == golden.output {
            continue;
        }
        let mut c = run.output.clone();
        let verdict = checker.check(&mut c);
        match &verdict {
            AbftOutcome::Corrected(k) => {
                corrected += 1;
                let restored = c
                    .iter()
                    .zip(&golden.output)
                    .all(|(x, y)| (x - y).abs() <= 1e-6 * y.abs().max(1.0));
                if shown < 3 {
                    shown += 1;
                    println!(
                        "  strike on {:<14} -> {k} element(s) corrected, output {}",
                        spec.target.site_name(),
                        if restored {
                            "fully restored"
                        } else {
                            "NOT restored"
                        }
                    );
                }
            }
            AbftOutcome::DetectedUncorrectable { rows, cols } => {
                uncorrectable += 1;
                if shown < 6 {
                    shown += 1;
                    println!(
                        "  strike on {:<14} -> uncorrectable ({} rows x {} cols flagged)",
                        spec.target.site_name(),
                        rows.len(),
                        cols.len()
                    );
                }
            }
            AbftOutcome::Clean => invisible += 1,
        }
    }
    println!(
        "\ntotals: {corrected} corrected, {uncorrectable} detected-but-uncorrectable, \
         {invisible} below checksum tolerance"
    );
    println!(
        "\nreading: on the K40 most radiation-induced DGEMM errors are single\n\
         or (partial-)line patterns that checksums repair in linear time; the\n\
         block/garble patterns remain — matching the locality prediction above."
    );
    Ok(())
}
