//! Fleet-level reliability projection: from one campaign's FIT to the
//! MTBF of a Titan-scale machine.
//!
//! The paper's opening motivation: Titan's ~18 000 Kepler GPUs have a
//! radiation-induced MTBF "in the order of dozens of hours". This
//! example runs DGEMM campaigns on both simulated devices, projects
//! relative fleet MTBFs, and shows how criticality-aware accounting
//! (tolerating errors under 2 %, deploying ABFT) changes the picture —
//! all in arbitrary units, like the paper's own FIT reporting.
//!
//! ```sh
//! cargo run --release --example fleet_mtbf
//! ```

use radcrit::campaign::{presets, Campaign, KernelSpec};
use radcrit::core::fit::FitRate;
use radcrit::faults::beam::{altitude_acceleration, fleet_mtbf_hours};

const FLEET: usize = 18_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("projecting relative MTBF of a {FLEET}-device fleet running DGEMM\n");
    println!(
        "{:<10} | {:>12} | {:>12} | {:>12}",
        "device", "all errors", ">2% only", ">2% + ABFT"
    );
    println!("{:-<10}-+-{:->12}-+-{:->12}-+-{:->12}", "", "", "", "");

    let mut baseline: Option<f64> = None;
    for device in [presets::k40(), presets::xeon_phi()] {
        let name = device.kind().to_string();
        let summary = Campaign::new(device, KernelSpec::Dgemm { n: 512 }, 120, 17)
            .run()?
            .summary();

        // Three accounting policies for the same physical error rate:
        let fit_all = FitRate::from_raw(summary.fit_all_total());
        let fit_tol = FitRate::from_raw(summary.fit_filtered_total());
        let fit_abft = FitRate::from_raw(
            summary.fit_filtered_total() * radcrit::abft::residual_fraction(&summary.fit_filtered),
        );

        let mtbf = |fit: FitRate| fleet_mtbf_hours(fit, FLEET, 0.0);
        let scale = *baseline.get_or_insert_with(|| mtbf(fit_all));
        println!(
            "{name:<10} | {:>11.2}x | {:>11.2}x | {:>11.2}x",
            mtbf(fit_all) / scale,
            mtbf(fit_tol) / scale,
            mtbf(fit_abft) / scale,
        );
    }

    println!("\n(relative to the K40 fleet counting every mismatch = 1.00x; larger is better)\n");

    println!("altitude matters too — the same fleet relocated:");
    for (site, altitude) in [
        ("sea level", 0.0),
        ("Oak Ridge (260 m)", 260.0),
        ("Los Alamos (2230 m)", 2230.0),
        ("Leadville (3094 m)", 3094.0),
    ] {
        println!(
            "  {site:<20} neutron flux x{:.1} => MTBF / {:.1}",
            altitude_acceleration(altitude),
            altitude_acceleration(altitude)
        );
    }
    println!(
        "\nreading: whether the fleet's MTBF is 'dozens of hours' or several\n\
         times that depends as much on what you count as an error — the\n\
         paper's criticality argument — as on the hardware itself."
    );
    Ok(())
}
