//! Architecture design-space exploration: how cache capacity and
//! register-file ECC trade performance-oriented design against error
//! criticality (§V-E: "the architectural design must tune the
//! performance gain obtained by such decisions with the reliability
//! issues incurred").
//!
//! Builds custom devices with the [`DeviceConfig`] builder, runs the
//! same LavaMD workload on each, and compares SDC rates, error spread
//! and magnitudes.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use radcrit::accel::cache::CacheGeometry;
use radcrit::accel::config::DeviceConfig;
use radcrit::campaign::{Campaign, KernelSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = KernelSpec::LavaMd {
        grid: 5,
        particles: 16,
    };

    // A small GPU-like baseline and three design variants.
    let base = || {
        DeviceConfig::builder("base")
            .units(8)
            .max_threads_per_unit(512)
            .l1(CacheGeometry::new(16 * 1024, 64, 4).expect("valid L1"))
            .l2(CacheGeometry::new(128 * 1024, 64, 8).expect("valid L2"))
            .ecc(false, 0.0)
    };
    let designs: Vec<(&str, DeviceConfig)> = vec![
        ("baseline (128 KiB L2, no ECC)", base().build()?),
        (
            "8x larger L2 (perf: fewer misses)",
            base()
                .l2(CacheGeometry::new(1024 * 1024, 64, 8).expect("valid L2"))
                .build()?,
        ),
        (
            "register ECC (99% coverage)",
            base().ecc(true, 0.99).build()?,
        ),
        (
            "big L2 + register ECC",
            base()
                .l2(CacheGeometry::new(1024 * 1024, 64, 8).expect("valid L2"))
                .ecc(true, 0.99)
                .build()?,
        ),
    ];

    println!(
        "{:<36} | {:>5} | {:>9} | {:>12} | {:>10}",
        "design", "SDCs", "L2 hit %", "mean elems", "block loc %"
    );
    println!(
        "{:-<36}-+-{:->5}-+-{:->9}-+-{:->12}-+-{:->10}",
        "", "", "", "", ""
    );
    for (name, device) in designs {
        let result = Campaign::new(device, kernel, 250, 9).run()?;
        let hit = result.profile.l2_hit_rate() * 100.0;
        let s = result.summary();
        println!(
            "{name:<36} | {:>5} | {hit:>8.1}% | {:>12.1} | {:>9.0}%",
            s.sdc,
            s.mean_incorrect_elements(),
            s.block_locality_fraction() * 100.0,
        );
    }

    println!(
        "\nreading: growing the cache improves hit rates but keeps corrupted\n\
         lines alive longer, spreading single strikes across more of the\n\
         output (the paper's Phi-vs-K40 asymmetry); ECC removes the\n\
         register-file population of single-element errors but cannot touch\n\
         cache-spread or scheduler effects — 'long pipelines or large caches\n\
         ... enhance performance but leave data more exposed' (§V-E)."
    );
    Ok(())
}
