//! Run telemetry: outcome counters, a per-injection latency histogram,
//! throughput, and the periodic progress line.
//!
//! Telemetry describes *how a run went* (wall time, injections/s, hang
//! watchdog activity), never *what it computed* — it lives on
//! [`crate::runner::CampaignResult`] beside the records, and is kept out
//! of [`crate::summary::CampaignSummary`] on purpose so that a resumed
//! campaign still produces a summary bit-identical to an uninterrupted
//! run.

use std::time::{Duration, Instant};

use radcrit_obs::CriticalityAggregator;

use crate::outcome::InjectionOutcome;

/// Power-of-two bucketed histogram of per-injection wall times.
///
/// Since the observability layer landed this is the shared
/// [`radcrit_obs::Log2Histogram`]: bucket `b` still counts latencies in
/// `[2^b, 2^(b+1))` microseconds, but sub-microsecond and
/// beyond-last-bucket observations are now tracked explicitly
/// ([`Log2Histogram::underflow`](radcrit_obs::Log2Histogram::underflow) /
/// [`overflow`](radcrit_obs::Log2Histogram::overflow)) instead of being
/// silently clamped, and the histogram exports to the metrics snapshot's
/// JSON and Prometheus formats.
pub use radcrit_obs::Log2Histogram as LatencyHistogram;

/// Mutable telemetry accumulator owned by the campaign's collector loop.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    masked: usize,
    sdc: usize,
    crash: usize,
    hang: usize,
    watchdog_hangs: usize,
    replayed: usize,
    latency: LatencyHistogram,
}

impl Telemetry {
    /// Starts the clock.
    pub fn new() -> Self {
        Telemetry {
            started: Instant::now(),
            masked: 0,
            sdc: 0,
            crash: 0,
            hang: 0,
            watchdog_hangs: 0,
            replayed: 0,
            latency: LatencyHistogram::new(),
        }
    }

    /// Notes `n` records replayed from a checkpoint (they count toward
    /// the campaign's progress but not toward this run's throughput).
    pub fn note_replayed(&mut self, n: usize) {
        self.replayed = n;
    }

    /// Records one freshly produced injection outcome. `watchdog` marks
    /// outcomes synthesized by the hang watchdog rather than observed by
    /// a worker.
    pub fn record(&mut self, outcome: &InjectionOutcome, latency: Duration, watchdog: bool) {
        match outcome {
            InjectionOutcome::Masked => self.masked += 1,
            InjectionOutcome::Sdc(_) => self.sdc += 1,
            InjectionOutcome::Crash => self.crash += 1,
            InjectionOutcome::Hang => self.hang += 1,
        }
        if watchdog {
            self.watchdog_hangs += 1;
        }
        self.latency.record(latency);
    }

    /// Records produced by this run so far (excludes replayed ones).
    pub fn completed(&self) -> usize {
        self.masked + self.sdc + self.crash + self.hang
    }

    /// Freezes the current state into an immutable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            masked: self.masked,
            sdc: self.sdc,
            crash: self.crash,
            hang: self.hang,
            watchdog_hangs: self.watchdog_hangs,
            replayed: self.replayed,
            completed: self.completed(),
            elapsed: self.started.elapsed(),
            latency: self.latency.clone(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// Immutable telemetry of one (possibly partial) campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Masked outcomes produced by this run.
    pub masked: usize,
    /// SDC outcomes produced by this run.
    pub sdc: usize,
    /// Crash outcomes produced by this run.
    pub crash: usize,
    /// Hang outcomes produced by this run (watchdog or sampler).
    pub hang: usize,
    /// Hangs synthesized by the watchdog (subset of `hang`).
    pub watchdog_hangs: usize,
    /// Records replayed from the checkpoint instead of being re-run.
    pub replayed: usize,
    /// Records produced by this run (excludes `replayed`).
    pub completed: usize,
    /// Wall time since the run started.
    pub elapsed: Duration,
    /// Per-injection latency histogram.
    pub latency: LatencyHistogram,
}

impl TelemetrySnapshot {
    /// Injections per second of wall time for this run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// The one-line progress report printed under `--progress`.
    /// `target` is the number of records this run set out to produce.
    ///
    /// With `analytics` attached (the collector's live
    /// [`CriticalityAggregator`] — the same fold that powers the
    /// daemon's analytics endpoints, never a second counting path), the
    /// line also reports the tolerance-filtered SDC count and the
    /// converging FIT estimate with its 95 % CI width.
    ///
    /// `buckets` is the batch scheduler's live `(restores, forks)` pair;
    /// when present the line reports how many warm-bucket restores the
    /// forked injections amortized. It is passed alongside the snapshot
    /// (not stored in it) because bucket counts are an execution-order
    /// artifact: a batched and an unbatched run of the same campaign
    /// must stay comparable snapshot-for-snapshot.
    pub fn progress_line(
        &self,
        target: usize,
        analytics: Option<&CriticalityAggregator>,
        buckets: Option<(u64, u64)>,
    ) -> String {
        let pct = if target == 0 {
            100.0
        } else {
            self.completed as f64 / target as f64 * 100.0
        };
        let rate = self.throughput();
        let eta = if rate > 0.0 && target > self.completed {
            format!("{:.1}s", (target - self.completed) as f64 / rate)
        } else {
            "-".into()
        };
        let quantiles = match (self.latency.quantile(0.5), self.latency.quantile(0.9)) {
            (Some(p50), Some(p90)) => format!("p50<{p50:.1?} p90<{p90:.1?}"),
            _ => "p50<- p90<-".into(),
        };
        let crit = match analytics {
            Some(agg) => format!(
                " crit {} | fit {:.3e} ±{:.1e} |",
                agg.critical_sdc(),
                agg.fit_all().total().value(),
                agg.fit_ci_width() / 2.0,
            ),
            None => String::new(),
        };
        let bucket = match buckets {
            Some((restores, forks)) => format!(" buckets {restores} forks {forks} |"),
            None => String::new(),
        };
        format!(
            "[campaign] {}/{} ({pct:.1}%) | {rate:.1} inj/s | masked {} sdc {} crash {} hang {} \
             (watchdog {}) |{crit}{bucket} {quantiles} | eta {eta}",
            self.completed,
            target,
            self.masked,
            self.sdc,
            self.crash,
            self.hang,
            self.watchdog_hangs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::InjectionOutcome;

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(3)); // bucket [2, 4)
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(5)); // bucket [4096, 8192)
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (Duration::from_micros(2), 2));
        assert_eq!(buckets[1], (Duration::from_micros(4096), 1));
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..9 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        h.record(Duration::from_millis(1)); // bucket [512, 1024) µs... (1000 µs → [512, 1024))
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(16)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1024)));
        assert!(h.quantile(0.5).unwrap() >= Duration::from_micros(10));
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.nonzero_buckets()[0].0, Duration::from_micros(1));
        // ... and are counted explicitly rather than silently clamped.
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn beyond_range_latencies_are_counted_as_overflow() {
        let mut h = LatencyHistogram::new();
        // 2^30 µs ≈ 17.9 min is the top edge; an hour-long injection
        // overflows but is still counted (clamped into the last bucket).
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(1.0), Some(Duration::from_micros(1 << 30)));
    }

    #[test]
    fn telemetry_counts_outcomes_and_watchdog_fires() {
        let mut t = Telemetry::new();
        t.note_replayed(5);
        t.record(&InjectionOutcome::Masked, Duration::from_micros(50), false);
        t.record(&InjectionOutcome::Crash, Duration::from_micros(50), false);
        t.record(&InjectionOutcome::Hang, Duration::from_millis(100), true);
        let s = t.snapshot();
        assert_eq!(s.masked, 1);
        assert_eq!(s.crash, 1);
        assert_eq!(s.hang, 1);
        assert_eq!(s.watchdog_hangs, 1);
        assert_eq!(s.replayed, 5);
        assert_eq!(s.completed, 3);
        assert_eq!(s.latency.count(), 3);
        assert!(s.throughput() > 0.0);
    }

    #[test]
    fn progress_line_mentions_the_essentials() {
        let mut t = Telemetry::new();
        t.record(&InjectionOutcome::Masked, Duration::from_micros(50), false);
        let line = t.snapshot().progress_line(10, None, None);
        assert!(line.contains("1/10"), "{line}");
        assert!(line.contains("inj/s"), "{line}");
        assert!(line.contains("masked 1"), "{line}");
        assert!(!line.contains("crit"), "no analytics attached: {line}");
        assert!(!line.contains("buckets"), "unbatched run: {line}");
    }

    #[test]
    fn progress_line_reports_bucket_stats_when_batched() {
        let mut t = Telemetry::new();
        t.record(&InjectionOutcome::Masked, Duration::from_micros(50), false);
        let line = t.snapshot().progress_line(10, None, Some((3, 27)));
        assert!(line.contains("buckets 3 forks 27"), "{line}");
    }

    #[test]
    fn progress_line_reports_live_criticality_when_attached() {
        use radcrit_core::locality::SpatialClass;
        use radcrit_obs::analytics::AnalyticSample;

        let mut t = Telemetry::new();
        t.record(&InjectionOutcome::Masked, Duration::from_micros(50), false);
        let mut agg = CriticalityAggregator::with_context("dgemm", "32x32", "K40", 10, 100.0);
        agg.fold_sample(&AnalyticSample {
            index: 0,
            site: "fpu".to_owned(),
            outcome: "SDC".to_owned(),
            mismatches: 2,
            class: SpatialClass::Line,
            mre: Some(5.0),
            critical: true,
            fclass: Some(SpatialClass::Line),
        });
        let line = t.snapshot().progress_line(10, Some(&agg), None);
        assert!(line.contains("crit 1"), "{line}");
        assert!(line.contains("fit "), "{line}");
        assert!(line.contains('±'), "{line}");
    }
}
