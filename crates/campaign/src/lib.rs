//! # radcrit-campaign
//!
//! Campaign orchestration for the radcrit reproduction of the HPCA 2017
//! error-criticality study: everything needed to run "beam time" against
//! the simulated accelerators and produce the numbers behind the paper's
//! tables and figures.
//!
//! A [`Campaign`] fixes a device, a kernel and an injection budget; its
//! [`Campaign::run`] performs the golden execution, derives the
//! cross-section table, then replays the fault-injection loop in
//! parallel, classifying every injection as masked, SDC, crash or hang —
//! the four outcomes of §II-A. The resulting [`CampaignResult`] exposes
//!
//! * per-injection records with the four §III metrics evaluated both raw
//!   and under the 2 % tolerance filter,
//! * FIT break-downs by spatial class in arbitrary units (the bars of
//!   Figs. 3, 5 and 7),
//! * scatter series of mean relative error versus incorrect elements
//!   (Figs. 2, 4, 6 and 8),
//! * CAROL-style event logs and CSV export mirroring the public
//!   `HPCA2017-log-data` repository.
//!
//! The runner is hardened for long campaigns: a per-injection hang
//! watchdog ([`Campaign::with_deadline`]), panic capture that surfaces
//! as a typed error, streaming JSONL checkpoints with
//! [`Campaign::resume`] (see [`checkpoint`]), and run [`telemetry`]
//! (throughput, latency histogram, progress reporting).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod golden;
pub mod hardening;
pub mod log;
pub mod outcome;
pub mod parse;
pub mod presets;
pub mod runner;
pub mod summary;
pub mod sweep;
pub mod telemetry;

pub use config::{Campaign, KernelSpec};
pub use golden::{GoldenCache, GoldenCacheStats};
pub use hardening::HardeningAnalysis;
pub use outcome::{InjectionOutcome, InjectionRecord, SdcDetail};
pub use runner::{CampaignResult, RunOptions};
pub use summary::CampaignSummary;
pub use sweep::{Sweep, SweepResult};
pub use telemetry::TelemetrySnapshot;
