//! Selective-hardening analysis — the paper's stated future work (§VI):
//! "apply selective hardening to only those procedures, variables, or
//! resources whose corruption is likely to produce the observed critical
//! errors".
//!
//! Given a finished campaign, this module attributes critical SDCs (those
//! surviving the tolerance filter) to their strike sites and predicts the
//! FIT reduction from hardening any subset of sites — e.g. adding ECC to
//! a structure, duplicating a unit, or ABFT-protecting an algorithmic
//! phase.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::outcome::InjectionOutcome;
use crate::runner::CampaignResult;

/// Per-site contribution to the campaign's outcome counts.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SiteImpact {
    /// SDCs attributed to the site (before filtering).
    pub sdc: usize,
    /// SDCs surviving the tolerance filter — the *critical* ones.
    pub critical: usize,
    /// Delivered strikes that were masked.
    pub masked: usize,
}

/// The selective-hardening analysis of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardeningAnalysis {
    per_site: BTreeMap<String, SiteImpact>,
    total_critical: usize,
    injections: usize,
    sigma_total: f64,
}

impl HardeningAnalysis {
    /// Attributes each record of `result` to its strike site.
    pub fn of(result: &CampaignResult) -> Self {
        let mut per_site: BTreeMap<String, SiteImpact> = BTreeMap::new();
        let mut total_critical = 0;
        for r in &result.records {
            let entry = per_site.entry(r.site.clone()).or_default();
            match &r.outcome {
                InjectionOutcome::Sdc(d) => {
                    entry.sdc += 1;
                    if d.criticality.is_critical() {
                        entry.critical += 1;
                        total_critical += 1;
                    }
                }
                InjectionOutcome::Masked => entry.masked += 1,
                InjectionOutcome::Crash | InjectionOutcome::Hang => {}
            }
        }
        HardeningAnalysis {
            per_site,
            total_critical,
            injections: result.records.len(),
            sigma_total: result.sigma_total,
        }
    }

    /// Per-site impact, keyed by site name.
    pub fn per_site(&self) -> &BTreeMap<String, SiteImpact> {
        &self.per_site
    }

    /// Critical SDCs across all sites.
    pub fn total_critical(&self) -> usize {
        self.total_critical
    }

    /// Sites ranked by critical-SDC contribution, highest first — the
    /// hardening priority list.
    pub fn ranked_sites(&self) -> Vec<(&str, &SiteImpact)> {
        let mut v: Vec<(&str, &SiteImpact)> =
            self.per_site.iter().map(|(k, v)| (k.as_str(), v)).collect();
        v.sort_by(|a, b| b.1.critical.cmp(&a.1.critical).then(a.0.cmp(b.0)));
        v
    }

    /// The fraction of critical FIT removed by fully hardening `sites`
    /// (e.g. perfect ECC on those structures).
    pub fn fit_reduction(&self, sites: &[&str]) -> f64 {
        if self.total_critical == 0 {
            return 0.0;
        }
        let removed: usize = self
            .per_site
            .iter()
            .filter(|(name, _)| sites.contains(&name.as_str()))
            .map(|(_, i)| i.critical)
            .sum();
        removed as f64 / self.total_critical as f64
    }

    /// The smallest set of sites (by the ranking) whose hardening removes
    /// at least `target` (0..=1) of the critical FIT — the selective-
    /// hardening answer.
    pub fn sites_for_reduction(&self, target: f64) -> Vec<&str> {
        let target = target.clamp(0.0, 1.0);
        let mut chosen = Vec::new();
        let mut removed = 0usize;
        for (name, impact) in self.ranked_sites() {
            if self.total_critical == 0 || removed as f64 / self.total_critical as f64 >= target {
                break;
            }
            if impact.critical == 0 {
                break;
            }
            chosen.push(name);
            removed += impact.critical;
        }
        chosen
    }

    /// Critical FIT in a.u. (the quantity hardening reduces).
    pub fn critical_fit(&self) -> f64 {
        self.total_critical as f64 / self.injections.max(1) as f64 * self.sigma_total
    }

    /// The Architectural Vulnerability Factor of one site: the
    /// probability that a strike delivered there produces an SDC
    /// (Mukherjee et al., cited in §IV-D). Fatal sites have no AVF here
    /// (crashes are detectable by definition); returns `None` for sites
    /// with no delivered strikes.
    pub fn avf(&self, site: &str) -> Option<f64> {
        let i = self.per_site.get(site)?;
        let delivered = i.sdc + i.masked;
        if delivered == 0 {
            None
        } else {
            Some(i.sdc as f64 / delivered as f64)
        }
    }

    /// AVF restricted to *critical* SDCs (those surviving the tolerance
    /// filter) — the quantity selective hardening actually targets.
    pub fn critical_avf(&self, site: &str) -> Option<f64> {
        let i = self.per_site.get(site)?;
        let delivered = i.sdc + i.masked;
        if delivered == 0 {
            None
        } else {
            Some(i.critical as f64 / delivered as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Campaign, KernelSpec};
    use radcrit_accel::config::DeviceConfig;

    fn analysis() -> HardeningAnalysis {
        let result = Campaign::new(
            DeviceConfig::kepler_k40().scaled(8).unwrap(),
            KernelSpec::Dgemm { n: 32 },
            250,
            3,
        )
        .with_workers(4)
        .run()
        .unwrap();
        HardeningAnalysis::of(&result)
    }

    #[test]
    fn per_site_counts_sum_to_totals() {
        let a = analysis();
        let critical: usize = a.per_site().values().map(|i| i.critical).sum();
        assert_eq!(critical, a.total_critical());
        assert!(a.total_critical() > 0, "campaign must see critical SDCs");
    }

    #[test]
    fn ranking_is_descending() {
        let a = analysis();
        let ranked = a.ranked_sites();
        for w in ranked.windows(2) {
            assert!(w[0].1.critical >= w[1].1.critical);
        }
    }

    #[test]
    fn hardening_everything_removes_everything() {
        let a = analysis();
        let all: Vec<&str> = a.per_site().keys().map(String::as_str).collect();
        assert!((a.fit_reduction(&all) - 1.0).abs() < 1e-12);
        assert_eq!(a.fit_reduction(&[]), 0.0);
    }

    #[test]
    fn selective_set_reaches_target() {
        let a = analysis();
        for target in [0.25, 0.5, 0.9] {
            let sites = a.sites_for_reduction(target);
            assert!(
                a.fit_reduction(&sites) >= target - 1e-9,
                "sites {sites:?} reach only {}",
                a.fit_reduction(&sites)
            );
        }
    }

    #[test]
    fn selective_set_is_minimal_prefix() {
        let a = analysis();
        let sites = a.sites_for_reduction(0.5);
        if sites.len() > 1 {
            let fewer = &sites[..sites.len() - 1];
            assert!(
                a.fit_reduction(fewer) < 0.5,
                "dropping one site must miss the target"
            );
        }
    }

    #[test]
    fn critical_fit_scales_with_sigma() {
        let a = analysis();
        assert!(a.critical_fit() > 0.0);
    }

    #[test]
    fn avf_is_a_probability_and_bounds_critical_avf() {
        let a = analysis();
        let mut some_site = false;
        for site in a.per_site().keys() {
            if let Some(avf) = a.avf(site) {
                some_site = true;
                assert!((0.0..=1.0).contains(&avf), "{site}: {avf}");
                let cavf = a.critical_avf(site).expect("same denominator");
                assert!(cavf <= avf + 1e-12);
            }
        }
        assert!(some_site);
        assert_eq!(a.avf("no_such_site"), None);
    }
}
