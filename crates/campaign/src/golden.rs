//! A shared, content-addressed cache of golden executions.
//!
//! The golden run is the most expensive phase of a campaign — a full
//! fault-free execution of the kernel on the simulated device — and it
//! is pure: its output and [`ExecutionProfile`] depend only on the
//! kernel spec, the device configuration (including its scale divisor)
//! and the input seed. Sweeps and the campaign service therefore share
//! one [`GoldenCache`]: sweep points or submitted jobs that agree on
//! `(kernel, input, device, scale, seed)` reuse a single golden
//! execution instead of recomputing it per campaign.
//!
//! The cache is byte-size bounded with least-recently-used eviction
//! (entries are dominated by the golden output buffer), safe to share
//! across threads, and keeps hit/miss/eviction counters that the runner
//! mirrors into its [`radcrit_obs::MetricsRegistry`] as
//! `radcrit_golden_cache_{hits,misses}_total`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use radcrit_accel::profile::ExecutionProfile;
use radcrit_accel::snapshot::SnapshotSet;

use crate::config::Campaign;

/// The content address of one golden execution.
///
/// Built from the *rendered* kernel spec, device configuration and seed,
/// so any parameter that changes the golden output (input size, device
/// geometry, scale divisor, input seed) changes the key. Analysis knobs
/// (tolerance, classifier, worker count, watchdog deadline) are
/// deliberately excluded — they do not affect the golden run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GoldenKey(String);

impl GoldenKey {
    /// The key of `campaign`'s golden execution.
    pub fn for_campaign(campaign: &Campaign) -> Self {
        GoldenKey(format!(
            "kernel={:?}|device={:?}|seed={}",
            campaign.kernel, campaign.device, campaign.seed
        ))
    }

    /// The rendered key material (diagnostics only).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// One cached golden execution: the fault-free output, the dynamic
/// profile the fault sampler derives its cross sections from, and
/// (when differential execution is on) the golden-prefix snapshot set
/// injections resume from.
#[derive(Debug)]
pub struct GoldenEntry {
    /// The golden output buffer.
    pub output: Vec<f64>,
    /// The golden execution profile.
    pub profile: ExecutionProfile,
    /// Golden-prefix machine snapshots for differential injection
    /// execution. `None` when the entry was computed with differential
    /// execution disabled; `Some` (possibly empty, for non-resumable
    /// kernels) otherwise — the distinction lets a differential run
    /// recognize and refresh a snapshot-less entry.
    pub snapshots: Option<Arc<SnapshotSet>>,
}

impl GoldenEntry {
    /// Approximate heap footprint of the entry, used for the cache's
    /// byte budget. The output buffer and the snapshot set dominate; the
    /// profile and key are covered by a fixed overhead allowance.
    fn cost_bytes(&self) -> usize {
        let snaps = self.snapshots.as_ref().map_or(0, |s| s.cost_bytes());
        self.output.len() * std::mem::size_of::<f64>() + snaps + ENTRY_OVERHEAD_BYTES
    }
}

/// Fixed per-entry overhead charged on top of the output buffer (key
/// string, profile, map bookkeeping).
const ENTRY_OVERHEAD_BYTES: usize = 1024;

/// Point-in-time counters of a [`GoldenCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GoldenCacheStats {
    /// Lookups that found a cached golden execution.
    pub hits: u64,
    /// Lookups that missed (the caller computed and inserted).
    pub misses: u64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently charged against the budget.
    pub bytes: usize,
}

impl GoldenCacheStats {
    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas `self - earlier` (entries/bytes are taken from
    /// `self`): how a sweep or job batch used a shared cache.
    pub fn since(&self, earlier: &GoldenCacheStats) -> GoldenCacheStats {
        GoldenCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            entries: self.entries,
            bytes: self.bytes,
        }
    }
}

struct Resident {
    entry: Arc<GoldenEntry>,
    cost: usize,
    /// Monotonic last-use tick for LRU ordering.
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<GoldenKey, Resident>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe, byte-size-bounded LRU cache of golden executions.
///
/// # Examples
///
/// ```
/// use radcrit_campaign::golden::GoldenCache;
///
/// let cache = GoldenCache::new(64 * 1024 * 1024);
/// assert_eq!(cache.stats().hits, 0);
/// ```
pub struct GoldenCache {
    inner: Mutex<Inner>,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for GoldenCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("GoldenCache")
            .field("max_bytes", &self.max_bytes)
            .field("stats", &s)
            .finish()
    }
}

impl GoldenCache {
    /// The default byte budget (64 MiB — roughly 8 golden outputs of a
    /// 1024×1024 DGEMM).
    pub const DEFAULT_BYTES: usize = 64 * 1024 * 1024;

    /// Creates a cache bounded to `max_bytes` of golden-output storage.
    pub fn new(max_bytes: usize) -> Self {
        GoldenCache {
            inner: Mutex::new(Inner::default()),
            max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with the [`GoldenCache::DEFAULT_BYTES`] budget, already
    /// wrapped for sharing.
    pub fn shared_default() -> Arc<Self> {
        Arc::new(Self::new(Self::DEFAULT_BYTES))
    }

    /// The configured byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    /// Looks up `key`, counting a hit or miss and refreshing LRU order.
    pub fn get(&self, key: &GoldenKey) -> Option<Arc<GoldenEntry>> {
        let mut inner = self.inner.lock().expect("golden cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(r) => {
                r.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&r.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a computed golden execution under `key`, evicting
    /// least-recently-used entries until the byte budget holds. An entry
    /// larger than the whole budget is not cached at all. Re-inserting
    /// an existing key replaces the entry.
    pub fn insert(&self, key: GoldenKey, entry: GoldenEntry) -> Arc<GoldenEntry> {
        let cost = entry.cost_bytes();
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().expect("golden cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        // Any previous entry under the key is stale the moment its
        // replacement was computed (e.g. a snapshot-less entry refreshed
        // by a differential run), so it goes away even when the new
        // entry itself turns out to be uncacheable.
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.cost;
        }
        if cost > self.max_bytes {
            return entry; // would evict everything and still not fit
        }
        while inner.bytes + cost > self.max_bytes {
            let Some(lru_key) = inner
                .map
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(victim) = inner.map.remove(&lru_key) {
                inner.bytes -= victim.cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.bytes += cost;
        inner.map.insert(
            key,
            Resident {
                entry: Arc::clone(&entry),
                cost,
                last_used: tick,
            },
        );
        entry
    }

    /// Current counters and residency.
    pub fn stats(&self) -> GoldenCacheStats {
        let inner = self.inner.lock().expect("golden cache lock");
        GoldenCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use radcrit_accel::config::DeviceConfig;

    fn entry(len: usize) -> GoldenEntry {
        GoldenEntry {
            output: vec![1.0; len],
            snapshots: None,
            profile: ExecutionProfile {
                tiles: 1,
                threads_per_tile: 1,
                instantiated_threads: 1,
                resident_threads: 1,
                wave_size: 1,
                total_ops: 1,
                transcendental_ops: 0,
                loads: 0,
                stores: 0,
                cache: Default::default(),
                l2_avg_resident_bytes: 0.0,
                l1_avg_resident_bytes: 0.0,
            },
        }
    }

    fn key(tag: u64) -> GoldenKey {
        GoldenKey::for_campaign(&Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            1,
            tag,
        ))
    }

    #[test]
    fn keys_address_content_not_analysis_knobs() {
        let base = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            10,
            7,
        );
        let k = GoldenKey::for_campaign(&base);
        // Worker count and injection budget do not change the golden run.
        assert_eq!(
            k,
            GoldenKey::for_campaign(&{
                let mut c = base.clone().with_workers(4);
                c.injections = 99;
                c
            })
        );
        // Seed, kernel size and device scale all do.
        let mut other_seed = base.clone();
        other_seed.seed = 8;
        assert_ne!(k, GoldenKey::for_campaign(&other_seed));
        let mut other_kernel = base.clone();
        other_kernel.kernel = KernelSpec::Dgemm { n: 64 };
        assert_ne!(k, GoldenKey::for_campaign(&other_kernel));
        let mut other_device = base.clone();
        other_device.device = DeviceConfig::kepler_k40().scaled(8).unwrap();
        assert_ne!(k, GoldenKey::for_campaign(&other_device));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = GoldenCache::new(1 << 20);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), entry(8));
        let hit = cache.get(&key(1)).expect("inserted entry");
        assert_eq!(hit.output.len(), 8);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_ratio() > 0.49 && s.hit_ratio() < 0.51);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // Budget fits two entries (each 1000*8 + overhead bytes).
        let per = 1000 * 8 + ENTRY_OVERHEAD_BYTES;
        let cache = GoldenCache::new(2 * per);
        cache.insert(key(1), entry(1000));
        cache.insert(key(2), entry(1000));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), entry(1000));
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= cache.max_bytes());
        assert!(cache.get(&key(1)).is_some(), "recently used survives");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(3)).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = GoldenCache::new(64);
        cache.insert(key(1), entry(1000));
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.get(&key(1)).is_none());
    }

    #[test]
    fn oversized_replacement_still_removes_the_stale_entry() {
        // A refreshed result too large to cache must still invalidate
        // the entry it replaces — otherwise a snapshot-less entry whose
        // snapshot-carrying refresh exceeds the budget would be served
        // (and filtered, and recomputed) by every later differential
        // job, forever.
        let per = 8 * 8 + ENTRY_OVERHEAD_BYTES;
        let cache = GoldenCache::new(per);
        cache.insert(key(1), entry(8));
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(1), entry(100_000));
        assert!(cache.get(&key(1)).is_none(), "stale entry must be gone");
        let s = cache.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
    }

    #[test]
    fn differential_job_refreshes_a_snapshotless_entry() {
        use crate::runner::RunOptions;

        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            4,
            7,
        )
        .with_workers(1);
        let cache = GoldenCache::shared_default();
        let run = |full_execution: bool| {
            c.run_with(&RunOptions {
                golden_cache: Some(Arc::clone(&cache)),
                full_execution,
                ..RunOptions::default()
            })
            .unwrap()
        };
        // Job 1 (full execution) warms the cache without snapshots.
        run(true);
        let k = GoldenKey::for_campaign(&c);
        assert!(cache.get(&k).expect("warmed").snapshots.is_none());
        // Job 2 (differential) cannot use the snapshot-less hit; its
        // recomputed snapshot-carrying result must replace it.
        run(false);
        let refreshed = cache.get(&k).expect("still cached");
        assert!(
            refreshed.snapshots.as_ref().is_some_and(|s| !s.is_empty()),
            "differential job must have refreshed the entry with snapshots"
        );
        // Job 3 (differential) now hits.
        let before = cache.stats();
        run(false);
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn snapshot_sets_are_charged_against_the_budget() {
        use radcrit_accel::engine::Engine;
        use radcrit_accel::snapshot::SnapshotPolicy;

        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            1,
            7,
        );
        let mut k = c.kernel.build(c.seed).unwrap();
        let engine = Engine::new(c.device.clone());
        let (out, set) = engine
            .golden_snapshotted(k.as_mut(), &SnapshotPolicy::default())
            .unwrap();
        assert!(!set.is_empty());

        let cache = GoldenCache::new(1 << 30);
        cache.insert(
            key(1),
            GoldenEntry {
                output: out.output.clone(),
                profile: out.profile.clone(),
                snapshots: None,
            },
        );
        let plain = cache.stats().bytes;
        cache.insert(
            key(2),
            GoldenEntry {
                output: out.output,
                profile: out.profile,
                snapshots: Some(Arc::new(set)),
            },
        );
        let with_snaps = cache.stats().bytes - plain;
        assert!(
            with_snaps > plain,
            "snapshot-carrying entry ({with_snaps} B) must cost more than the plain one ({plain} B)"
        );
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let cache = GoldenCache::new(1 << 20);
        cache.insert(key(1), entry(8));
        cache.get(&key(1));
        let before = cache.stats();
        cache.get(&key(1));
        cache.get(&key(2));
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
    }
}
