//! Parsing campaign logs back into records.
//!
//! The paper publishes its raw corrupted-output logs "to ease
//! reproducibility and third party analysis" (§I contribution 2). The
//! writer in [`crate::log`] produces that artifact; this module is the
//! third party's side — it parses a log back into [`InjectionRecord`]s so
//! different tolerance filters or classifiers can be applied without
//! rerunning beam time.

use std::collections::HashMap;

use radcrit_core::locality::SpatialClass;
use radcrit_core::report::CriticalityReport;

use crate::outcome::{InjectionOutcome, InjectionRecord, SdcDetail};

/// A parse failure with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The header metadata of a campaign log.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHeader {
    /// Kernel name.
    pub kernel: String,
    /// Device name.
    pub device: String,
    /// Input-size label.
    pub input: String,
    /// Number of injections.
    pub injections: usize,
    /// Total cross-section (a.u.).
    pub sigma: f64,
}

/// A fully parsed campaign log.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLog {
    /// Header metadata.
    pub header: LogHeader,
    /// Event records in file order.
    pub records: Vec<InjectionRecord>,
}

/// Parses a log written by [`crate::log::write_log`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse_log(text: &str) -> Result<ParsedLog, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or(ParseError {
        line: 1,
        message: "empty log".into(),
    })?;
    let header = parse_header(header_line)?;

    let mut records = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_event(line, idx + 1, records.len())?);
    }
    Ok(ParsedLog { header, records })
}

fn fields(line: &str) -> HashMap<&str, &str> {
    line.split_whitespace()
        .filter_map(|tok| tok.split_once(':'))
        .collect()
}

fn parse_header(line: &str) -> Result<LogHeader, ParseError> {
    if !line.starts_with("#HEADER") {
        return Err(ParseError {
            line: 1,
            message: format!("expected #HEADER, got {line:.40}"),
        });
    }
    let f = fields(line);
    let get = |key: &str| {
        f.get(key).copied().ok_or(ParseError {
            line: 1,
            message: format!("missing header field {key}"),
        })
    };
    Ok(LogHeader {
        kernel: get("kernel")?.to_owned(),
        device: get("device")?.to_owned(),
        input: get("input")?.to_owned(),
        injections: get("injections")?.parse().map_err(|_| ParseError {
            line: 1,
            message: "bad injections count".into(),
        })?,
        sigma: get("sigma")?.parse().map_err(|_| ParseError {
            line: 1,
            message: "bad sigma".into(),
        })?,
    })
}

fn parse_event(line: &str, line_no: usize, index: usize) -> Result<InjectionRecord, ParseError> {
    let err = |message: String| ParseError {
        line: line_no,
        message,
    };
    let tag = line
        .split_whitespace()
        .next()
        .and_then(|t| t.strip_prefix('#'))
        .ok_or_else(|| err("missing outcome tag".into()))?
        .to_owned();
    let f = fields(line);
    let site = (*f.get("site").ok_or_else(|| err("missing site".into()))?).to_owned();
    let at_tile = match f.get("tile") {
        Some(&"-") | None => None,
        Some(t) => Some(t.parse().map_err(|_| err(format!("bad tile index {t}")))?),
    };
    let delivered = matches!(f.get("delivered"), Some(&"1"));

    let outcome = match tag.as_str() {
        "MASKED" => InjectionOutcome::Masked,
        "CRASH" => InjectionOutcome::Crash,
        "HANG" => InjectionOutcome::Hang,
        "SDC" => {
            let num = |key: &str| -> Result<usize, ParseError> {
                f.get(key)
                    .ok_or_else(|| err(format!("missing {key}")))?
                    .parse()
                    .map_err(|_| err(format!("bad {key}")))
            };
            let pct = |key: &str| -> Result<Option<f64>, ParseError> {
                match f.get(key).copied() {
                    None | Some("-") => Ok(None),
                    Some("inf") => Ok(Some(f64::INFINITY)),
                    Some(v) => v.parse().map(Some).map_err(|_| err(format!("bad {key}"))),
                }
            };
            let class = |key: &str| -> Result<SpatialClass, ParseError> {
                match f.get(key).copied() {
                    Some("none") => Ok(SpatialClass::None),
                    Some("single") => Ok(SpatialClass::Single),
                    Some("line") => Ok(SpatialClass::Line),
                    Some("square") => Ok(SpatialClass::Square),
                    Some("cubic") => Ok(SpatialClass::Cubic),
                    Some("random") => Ok(SpatialClass::Random),
                    other => Err(err(format!("bad {key}: {other:?}"))),
                }
            };
            InjectionOutcome::Sdc(SdcDetail {
                criticality: CriticalityReport {
                    incorrect_elements: num("incorrect")?,
                    mean_relative_error: pct("mre")?,
                    locality: class("locality")?,
                    filtered_incorrect_elements: num("filt_incorrect")?,
                    filtered_mean_relative_error: pct("filt_mre")?,
                    filtered_locality: class("filt_locality")?,
                    threshold_pct: radcrit_core::filter::ToleranceFilter::PAPER_THRESHOLD_PCT,
                },
                // The textual log does not carry the raw output length.
                output_len: 0,
            })
        }
        other => return Err(err(format!("unknown outcome tag {other}"))),
    };

    Ok(InjectionRecord {
        index,
        site,
        at_tile,
        delivered,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Campaign, KernelSpec};
    use crate::log::write_log;
    use radcrit_accel::config::DeviceConfig;

    fn sample_log() -> (String, usize) {
        let result = Campaign::new(
            DeviceConfig::kepler_k40().scaled(8).unwrap(),
            KernelSpec::Dgemm { n: 32 },
            60,
            5,
        )
        .with_workers(2)
        .run()
        .unwrap();
        let mut buf = Vec::new();
        write_log(&result, &mut buf).unwrap();
        (String::from_utf8(buf).unwrap(), result.records.len())
    }

    #[test]
    fn roundtrip_preserves_outcomes_and_metrics() {
        let (text, n) = sample_log();
        let parsed = parse_log(&text).unwrap();
        assert_eq!(parsed.header.kernel, "dgemm");
        assert_eq!(parsed.header.injections, n);
        assert_eq!(parsed.records.len(), n);

        // Re-serialize mentally: tags and key metrics must round-trip.
        let reparsed_sdc: Vec<_> = parsed
            .records
            .iter()
            .filter(|r| r.outcome.is_sdc())
            .collect();
        assert!(!reparsed_sdc.is_empty());
        for r in &reparsed_sdc {
            if let InjectionOutcome::Sdc(d) = &r.outcome {
                assert!(d.criticality.incorrect_elements > 0);
                assert!(
                    d.criticality.filtered_incorrect_elements <= d.criticality.incorrect_elements
                );
            }
        }
    }

    #[test]
    fn third_party_refiltering_workflow() {
        // The use case of §III: parse the published log and count how
        // many SDCs survive a *different* tolerance by re-reading the
        // recorded filtered metrics.
        let (text, _) = sample_log();
        let parsed = parse_log(&text).unwrap();
        let total_sdc = parsed.records.iter().filter(|r| r.outcome.is_sdc()).count();
        let critical = parsed
            .records
            .iter()
            .filter(|r| match &r.outcome {
                InjectionOutcome::Sdc(d) => d.criticality.filtered_incorrect_elements > 0,
                _ => false,
            })
            .count();
        assert!(critical <= total_sdc);
    }

    #[test]
    fn rejects_malformed_logs() {
        assert!(parse_log("").is_err());
        assert!(parse_log("not a header\n").is_err());
        let bad_event = "#HEADER kernel:x device:y input:z injections:1 sigma:1.0\n#SDC nonsense\n";
        let e = parse_log(bad_event).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parses_fatal_and_masked_lines() {
        let text = "#HEADER kernel:x device:y input:z injections:3 sigma:2.5e4\n\
                    #CRASH kernel:x device:y input:z site:fatal tile:- delivered:1\n\
                    #MASKED kernel:x device:y input:z site:l2 tile:7 delivered:0\n";
        let parsed = parse_log(text).unwrap();
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].outcome, InjectionOutcome::Crash);
        assert_eq!(parsed.records[0].at_tile, None);
        assert_eq!(parsed.records[1].outcome, InjectionOutcome::Masked);
        assert_eq!(parsed.records[1].at_tile, Some(7));
        assert!(!parsed.records[1].delivered);
    }
}
