//! Streaming JSONL checkpoints: crash-safe persistence for long
//! campaigns.
//!
//! A checkpoint file is line-oriented: a header object identifying the
//! campaign, then one object per finished [`InjectionRecord`], appended
//! (and flushed) as workers produce them. Killing a campaign therefore
//! loses at most the line being written; [`crate::Campaign::resume`]
//! replays the completed indices and re-runs only the rest, which —
//! thanks to the per-index RNG streams — yields the same records and a
//! bit-identical summary as an uninterrupted run.
//!
//! ```text
//! {"radcrit_checkpoint":1,"kernel":"Dgemm { n: 32 }","device":"K40",...}
//! {"i":0,"site":"l2","tile":3,"delivered":true,"outcome":"MASKED"}
//! {"i":1,"site":"fatal","tile":null,"delivered":true,"outcome":"CRASH"}
//! {"i":2,"site":"fpu","tile":9,"delivered":true,"outcome":"SDC","sdc":{...}}
//! ```
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `inf` and `NaN` appear verbatim — a deliberate deviation from strict
//! JSON (infinite mean relative errors are real data here, see
//! [`radcrit_core::mismatch::Mismatch::relative_error`]) that keeps the
//! codec lossless. A truncated final line (the kill race) is tolerated
//! on read; any other malformed line is [`AccelError::Corrupt`].
//!
//! The codec itself lives in [`radcrit_obs::json`], shared with the
//! event-stream and metrics writers; this module only defines the
//! checkpoint line formats on top of it.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use radcrit_accel::error::AccelError;
use radcrit_core::locality::SpatialClass;
use radcrit_core::report::CriticalityReport;
use radcrit_obs::json::{
    as_obj, escape, fmt_f64, fmt_opt_f64, get, get_bool, get_f64, get_opt_f64, get_opt_usize,
    get_str, get_usize, parse_line, Json,
};

use crate::config::Campaign;
use crate::outcome::{InjectionOutcome, InjectionRecord, SdcDetail};

/// Format version stamped into the header line.
pub const FORMAT_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// The header line identifying the campaign a checkpoint belongs to.
pub fn header_line(campaign: &Campaign) -> String {
    format!(
        "{{\"radcrit_checkpoint\":{FORMAT_VERSION},\"kernel\":\"{}\",\"device\":\"{}\",\
         \"injections\":{},\"seed\":{},\"threshold\":{}}}",
        escape(&format!("{:?}", campaign.kernel)),
        escape(&campaign.device.kind().to_string()),
        campaign.injections,
        campaign.seed,
        fmt_f64(campaign.tolerance.threshold_pct()),
    )
}

/// One record as a single JSONL line (no trailing newline).
pub fn record_line(r: &InjectionRecord) -> String {
    let tile = r.at_tile.map_or_else(|| "null".into(), |t| t.to_string());
    let mut line = format!(
        "{{\"i\":{},\"site\":\"{}\",\"tile\":{tile},\"delivered\":{},\"outcome\":\"{}\"",
        r.index,
        escape(&r.site),
        r.delivered,
        r.outcome.tag(),
    );
    if let InjectionOutcome::Sdc(d) = &r.outcome {
        let c = &d.criticality;
        line.push_str(&format!(
            ",\"sdc\":{{\"incorrect\":{},\"mre\":{},\"locality\":\"{}\",\
             \"f_incorrect\":{},\"f_mre\":{},\"f_locality\":\"{}\",\
             \"threshold\":{},\"output_len\":{}}}",
            c.incorrect_elements,
            fmt_opt_f64(c.mean_relative_error),
            c.locality,
            c.filtered_incorrect_elements,
            fmt_opt_f64(c.filtered_mean_relative_error),
            c.filtered_locality,
            fmt_f64(c.threshold_pct),
            d.output_len,
        ));
    }
    line.push('}');
    line
}

// ---------------------------------------------------------------------
// Decoding — on top of the shared radcrit_obs::json reader
// ---------------------------------------------------------------------

fn get_class(obj: &[(String, Json)], key: &str) -> Result<SpatialClass, String> {
    SpatialClass::from_str(get_str(obj, key)?)
}

fn record_from_json(v: &Json) -> Result<InjectionRecord, String> {
    let obj = as_obj(v)?;
    let index = get_usize(obj, "i")?;
    let site = get_str(obj, "site")?.to_owned();
    let at_tile = get_opt_usize(obj, "tile")?;
    let delivered = get_bool(obj, "delivered")?;
    let outcome = match get_str(obj, "outcome")? {
        "MASKED" => InjectionOutcome::Masked,
        "CRASH" => InjectionOutcome::Crash,
        "HANG" => InjectionOutcome::Hang,
        "SDC" => {
            let sdc = as_obj(get(obj, "sdc")?)?;
            InjectionOutcome::Sdc(SdcDetail {
                criticality: CriticalityReport {
                    incorrect_elements: get_usize(sdc, "incorrect")?,
                    mean_relative_error: get_opt_f64(sdc, "mre")?,
                    locality: get_class(sdc, "locality")?,
                    filtered_incorrect_elements: get_usize(sdc, "f_incorrect")?,
                    filtered_mean_relative_error: get_opt_f64(sdc, "f_mre")?,
                    filtered_locality: get_class(sdc, "f_locality")?,
                    threshold_pct: get_f64(sdc, "threshold")?,
                },
                output_len: get_usize(sdc, "output_len")?,
            })
        }
        other => return Err(format!("unknown outcome tag {other:?}")),
    };
    Ok(InjectionRecord {
        index,
        site,
        at_tile,
        delivered,
        outcome,
    })
}

// ---------------------------------------------------------------------
// File-level API
// ---------------------------------------------------------------------

fn corrupt(path: &Path, msg: impl std::fmt::Display) -> AccelError {
    AccelError::Corrupt(format!("checkpoint {}: {msg}", path.display()))
}

/// Reads and validates the records of `path` against `campaign`.
///
/// Tolerates a truncated final line (a campaign killed mid-write) and
/// duplicate indices (first occurrence wins); anything else malformed is
/// an error.
///
/// # Errors
///
/// [`AccelError::Corrupt`] when the file is unreadable, its header does
/// not match `campaign`, or a non-final line fails to parse.
pub fn read_records(path: &Path, campaign: &Campaign) -> Result<Vec<InjectionRecord>, AccelError> {
    let text = std::fs::read_to_string(path).map_err(|e| corrupt(path, e))?;
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let Some(&(_, header)) = lines.first() else {
        return Err(corrupt(path, "empty file (missing header)"));
    };
    if header.trim() != header_line(campaign) {
        parse_line(header.trim()).map_err(|e| corrupt(path, format!("bad header: {e}")))?;
        return Err(corrupt(
            path,
            "header does not match this campaign (kernel, device, injections, seed or threshold \
             differ)",
        ));
    }

    let mut records = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let last = lines.len() - 1;
    for (pos, &(lineno, line)) in lines.iter().enumerate().skip(1) {
        let parsed = parse_line(line.trim()).and_then(|v| record_from_json(&v));
        match parsed {
            Ok(r) => {
                if r.index >= campaign.injections {
                    return Err(corrupt(
                        path,
                        format!(
                            "line {}: record index {} out of range for {} injections",
                            lineno + 1,
                            r.index,
                            campaign.injections
                        ),
                    ));
                }
                if seen.insert(r.index) {
                    records.push(r);
                }
            }
            // The last line may be a torn write from a killed campaign.
            Err(_) if pos == last => break,
            Err(e) => {
                return Err(corrupt(path, format!("line {}: {e}", lineno + 1)));
            }
        }
    }
    Ok(records)
}

/// An append-only checkpoint writer that flushes every record.
#[derive(Debug)]
pub struct CheckpointWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Creates (truncating) a fresh checkpoint for `campaign` and writes
    /// its header.
    ///
    /// # Errors
    ///
    /// [`AccelError::Corrupt`] on I/O failure.
    pub fn create(path: &Path, campaign: &Campaign) -> Result<Self, AccelError> {
        let file = File::create(path).map_err(|e| corrupt(path, e))?;
        let mut w = CheckpointWriter {
            out: BufWriter::new(file),
            path: path.to_owned(),
        };
        w.write_line(&header_line(campaign))?;
        Ok(w)
    }

    /// Opens `path` for resumption: replays its records (empty when the
    /// file does not exist yet, in which case it is created) and returns
    /// a writer positioned to append.
    ///
    /// # Errors
    ///
    /// [`AccelError::Corrupt`] on I/O failure or when the checkpoint
    /// belongs to a different campaign.
    pub fn resume(
        path: &Path,
        campaign: &Campaign,
    ) -> Result<(Self, Vec<InjectionRecord>), AccelError> {
        if !path.exists() {
            return Ok((Self::create(path, campaign)?, Vec::new()));
        }
        let records = read_records(path, campaign)?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| corrupt(path, e))?;
        Ok((
            CheckpointWriter {
                out: BufWriter::new(file),
                path: path.to_owned(),
            },
            records,
        ))
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`AccelError::Corrupt`] on I/O failure.
    pub fn append(&mut self, record: &InjectionRecord) -> Result<(), AccelError> {
        let line = record_line(record);
        self.write_line(&line)
    }

    fn write_line(&mut self, line: &str) -> Result<(), AccelError> {
        let path = self.path.clone();
        (|| {
            self.out.write_all(line.as_bytes())?;
            self.out.write_all(b"\n")?;
            self.out.flush()
        })()
        .map_err(|e| corrupt(&path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use radcrit_accel::config::DeviceConfig;

    fn campaign() -> Campaign {
        Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            40,
            7,
        )
    }

    fn sdc_record(index: usize, mre: Option<f64>) -> InjectionRecord {
        InjectionRecord {
            index,
            site: "l2".into(),
            at_tile: Some(3),
            delivered: true,
            outcome: InjectionOutcome::Sdc(SdcDetail {
                criticality: CriticalityReport {
                    incorrect_elements: 5,
                    mean_relative_error: mre,
                    locality: SpatialClass::Line,
                    filtered_incorrect_elements: 2,
                    filtered_mean_relative_error: mre.map(|v| v / 2.0),
                    filtered_locality: SpatialClass::Single,
                    threshold_pct: 2.0,
                },
                output_len: 1024,
            }),
        }
    }

    fn roundtrip(r: &InjectionRecord) -> InjectionRecord {
        let line = record_line(r);
        record_from_json(&parse_line(&line).unwrap()).unwrap()
    }

    #[test]
    fn records_round_trip_losslessly() {
        let masked = InjectionRecord {
            index: 0,
            site: "scheduler".into(),
            at_tile: None,
            delivered: false,
            outcome: InjectionOutcome::Masked,
        };
        assert_eq!(roundtrip(&masked), masked);
        let crash = InjectionRecord {
            index: 1,
            site: "fatal".into(),
            at_tile: None,
            delivered: true,
            outcome: InjectionOutcome::Crash,
        };
        assert_eq!(roundtrip(&crash), crash);
        let sdc = sdc_record(2, Some(1.25));
        assert_eq!(roundtrip(&sdc), sdc);
        let no_mre = sdc_record(3, None);
        assert_eq!(roundtrip(&no_mre), no_mre);
    }

    #[test]
    fn infinite_relative_errors_survive_the_round_trip() {
        let inf = sdc_record(4, Some(f64::INFINITY));
        assert_eq!(roundtrip(&inf), inf);
        // Shortest round-trip formatting must be exact for finite values
        // too, including ones with many digits.
        let precise = sdc_record(5, Some(1.000_000_000_000_000_2));
        assert_eq!(roundtrip(&precise), precise);
    }

    #[test]
    fn sites_with_funny_characters_survive() {
        let mut r = sdc_record(6, Some(1.0));
        r.site = "a \"quoted\"\\\nsite\t".into();
        assert_eq!(roundtrip(&r), r);
    }

    #[test]
    fn file_round_trip_and_truncated_tail() {
        let c = campaign();
        let path = std::env::temp_dir().join(format!(
            "radcrit-checkpoint-test-{}.jsonl",
            std::process::id()
        ));
        let mut w = CheckpointWriter::create(&path, &c).unwrap();
        let records = vec![sdc_record(0, Some(3.5)), sdc_record(7, None)];
        for r in &records {
            w.append(r).unwrap();
        }
        drop(w);
        // Simulate a kill mid-write: append half a line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"i\":9,\"site\":\"l").unwrap();
        }
        let read = read_records(&path, &c).unwrap();
        assert_eq!(read, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let c = campaign();
        let path = std::env::temp_dir().join(format!(
            "radcrit-checkpoint-mismatch-{}.jsonl",
            std::process::id()
        ));
        CheckpointWriter::create(&path, &c).unwrap();
        let other = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            40,
            8, // different seed
        );
        let err = read_records(&path, &other).unwrap_err();
        assert!(matches!(err, AccelError::Corrupt(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_middle_line_is_corrupt() {
        let c = campaign();
        let path = std::env::temp_dir().join(format!(
            "radcrit-checkpoint-midline-{}.jsonl",
            std::process::id()
        ));
        let mut w = CheckpointWriter::create(&path, &c).unwrap();
        w.append(&sdc_record(0, Some(1.0))).unwrap();
        drop(w);
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(f, "{}", record_line(&sdc_record(1, Some(1.0)))).unwrap();
        }
        let err = read_records(&path, &c).unwrap_err();
        assert!(matches!(err, AccelError::Corrupt(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_indices_keep_the_first_record() {
        let c = campaign();
        let path = std::env::temp_dir().join(format!(
            "radcrit-checkpoint-dup-{}.jsonl",
            std::process::id()
        ));
        let mut w = CheckpointWriter::create(&path, &c).unwrap();
        let first = sdc_record(0, Some(1.0));
        let second = sdc_record(0, Some(99.0));
        w.append(&first).unwrap();
        w.append(&second).unwrap();
        drop(w);
        let read = read_records(&path, &c).unwrap();
        assert_eq!(read, vec![first]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_on_missing_file_starts_fresh() {
        let c = campaign();
        let path = std::env::temp_dir().join(format!(
            "radcrit-checkpoint-fresh-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let (w, replayed) = CheckpointWriter::resume(&path, &c).unwrap();
        assert!(replayed.is_empty());
        drop(w);
        assert!(path.exists(), "header must have been written");
        assert_eq!(read_records(&path, &c).unwrap(), vec![]);
        std::fs::remove_file(&path).ok();
    }
}
