//! Per-injection outcomes and records.

use radcrit_core::report::CriticalityReport;
use serde::{Deserialize, Serialize};

/// The classification of one injected execution — the four §II-A
/// outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InjectionOutcome {
    /// No effect on the program output (the failure is masked or the
    /// corrupted data is never used).
    Masked,
    /// Silent Data Corruption: the output differs from the golden one.
    Sdc(SdcDetail),
    /// The application crashed.
    Crash,
    /// The node hung.
    Hang,
}

impl InjectionOutcome {
    /// Short outcome tag for logs.
    pub fn tag(&self) -> &'static str {
        match self {
            InjectionOutcome::Masked => "MASKED",
            InjectionOutcome::Sdc(_) => "SDC",
            InjectionOutcome::Crash => "CRASH",
            InjectionOutcome::Hang => "HANG",
        }
    }

    /// Whether this outcome is an SDC.
    pub fn is_sdc(&self) -> bool {
        matches!(self, InjectionOutcome::Sdc(_))
    }
}

/// The §III metrics of one SDC, raw and filtered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdcDetail {
    /// The combined criticality report (all four metrics, raw and under
    /// the tolerance filter).
    pub criticality: CriticalityReport,
    /// Output length in elements (for corrupted-fraction computations —
    /// the logical locality shape may be coarser than the raw output).
    pub output_len: usize,
}

impl SdcDetail {
    /// Fraction of raw output elements corrupted.
    pub fn corrupted_fraction(&self) -> f64 {
        self.criticality.incorrect_elements as f64 / self.output_len.max(1) as f64
    }
}

/// One injected execution: what was injected and what happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Injection index within the campaign (also its RNG stream).
    pub index: usize,
    /// The struck site's name ("l2", "scheduler", "fatal_logic", …).
    pub site: String,
    /// Dispatch position of the strike, when one was delivered.
    pub at_tile: Option<usize>,
    /// Whether the strike found live state (false ⇒ architecturally
    /// masked before any corruption existed).
    pub delivered: bool,
    /// The outcome.
    pub outcome: InjectionOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_core::locality::SpatialClass;

    fn sdc_detail(incorrect: usize, output_len: usize) -> SdcDetail {
        SdcDetail {
            criticality: CriticalityReport {
                incorrect_elements: incorrect,
                mean_relative_error: Some(10.0),
                locality: SpatialClass::Single,
                filtered_incorrect_elements: incorrect,
                filtered_mean_relative_error: Some(10.0),
                filtered_locality: SpatialClass::Single,
                threshold_pct: 2.0,
            },
            output_len,
        }
    }

    #[test]
    fn tags_cover_paper_outcomes() {
        assert_eq!(InjectionOutcome::Masked.tag(), "MASKED");
        assert_eq!(InjectionOutcome::Crash.tag(), "CRASH");
        assert_eq!(InjectionOutcome::Hang.tag(), "HANG");
        assert_eq!(InjectionOutcome::Sdc(sdc_detail(1, 10)).tag(), "SDC");
        assert!(InjectionOutcome::Sdc(sdc_detail(1, 10)).is_sdc());
        assert!(!InjectionOutcome::Masked.is_sdc());
    }

    #[test]
    fn corrupted_fraction_uses_raw_output_length() {
        let d = sdc_detail(5, 50);
        assert!((d.corrupted_fraction() - 0.1).abs() < 1e-12);
    }
}
