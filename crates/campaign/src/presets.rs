//! Campaign presets reproducing the paper's experiment matrix at
//! simulator-affordable scale.
//!
//! The paper's input sizes (Table II) are scaled down by 8× alongside the
//! devices' storage hierarchies ([`DeviceConfig::scaled`]), preserving
//! the working-set/cache ratios that drive the criticality results:
//!
//! | experiment | paper | standard preset |
//! |---|---|---|
//! | DGEMM sides (K40) | 2¹⁰, 2¹¹, 2¹² | 128, 256, 512 |
//! | DGEMM sides (Phi) | 2¹⁰ – 2¹³ | 128 – 1024 |
//! | LavaMD grids (K40) | 15, 19, 23 @ 192 particles | 9, 11, 13 @ 32 |
//! | LavaMD grids (Phi) | 13, 15, 19, 23 @ 100 | 7, 9, 11, 13 @ 16 |
//! | HotSpot | 1024² | 256², 512 iterations |
//! | CLAMR | 512², 5000 steps | 128², 300 steps |

use std::time::Duration;

use radcrit_accel::config::DeviceConfig;

use crate::config::{Campaign, KernelSpec};

/// The storage-scaling divisor applied to both devices.
pub const DEVICE_SCALE: usize = 8;

/// The watchdog deadline [`Preset::hardened_campaign`] arms: generous
/// enough for the slowest Standard-scale injection, yet it still caps a
/// wedged run at minutes instead of a lost beam shift.
pub const PRESET_DEADLINE: Duration = Duration::from_secs(120);

/// How much compute to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke runs (CI, examples).
    Quick,
    /// The full reproduction matrix (minutes).
    Standard,
}

/// The scaled K40 device used by all presets.
pub fn k40() -> DeviceConfig {
    DeviceConfig::kepler_k40()
        .scaled(DEVICE_SCALE)
        .expect("published K40 geometry scales by 8")
}

/// The scaled Xeon Phi device used by all presets.
pub fn xeon_phi() -> DeviceConfig {
    DeviceConfig::xeon_phi_3120a()
        .scaled(DEVICE_SCALE)
        .expect("published Phi geometry scales by 8")
}

/// One entry of the experiment matrix.
#[derive(Debug, Clone)]
pub struct Preset {
    /// The device to run on.
    pub device: DeviceConfig,
    /// Kernel and input size.
    pub kernel: KernelSpec,
    /// Injection budget.
    pub injections: usize,
}

impl Preset {
    /// Turns the preset into a runnable campaign.
    pub fn campaign(&self, seed: u64) -> Campaign {
        Campaign::new(self.device.clone(), self.kernel, self.injections, seed)
    }

    /// Like [`Preset::campaign`], with the hang watchdog armed at
    /// [`PRESET_DEADLINE`] — the configuration long unattended sweeps
    /// should use.
    pub fn hardened_campaign(&self, seed: u64) -> Campaign {
        self.campaign(seed).with_deadline(PRESET_DEADLINE)
    }
}

/// DGEMM presets for one device (Figs. 2 and 3).
pub fn dgemm(device: &DeviceConfig, scale: Scale) -> Vec<Preset> {
    let phi = device.vector_lanes_f64() > 1;
    let sizes: Vec<(usize, usize)> = match (scale, phi) {
        (Scale::Quick, false) => vec![(32, 60), (64, 40)],
        (Scale::Quick, true) => vec![(32, 60), (64, 40), (128, 25)],
        (Scale::Standard, false) => vec![(128, 400), (256, 250), (512, 120)],
        (Scale::Standard, true) => vec![(128, 400), (256, 250), (512, 120), (1024, 60)],
    };
    sizes
        .into_iter()
        .map(|(n, injections)| Preset {
            device: device.clone(),
            kernel: KernelSpec::Dgemm { n },
            injections,
        })
        .collect()
}

/// LavaMD presets for one device (Figs. 4 and 5). Particle counts keep
/// the paper's ~2:1 K40-to-Phi ratio (192:100).
pub fn lavamd(device: &DeviceConfig, scale: Scale) -> Vec<Preset> {
    let phi = device.vector_lanes_f64() > 1;
    let particles = match (scale, phi) {
        (Scale::Quick, false) => 12,
        (Scale::Quick, true) => 6,
        (Scale::Standard, false) => 32,
        (Scale::Standard, true) => 16,
    };
    let grids: Vec<(usize, usize)> = match (scale, phi) {
        (Scale::Quick, false) => vec![(3, 40), (4, 30)],
        (Scale::Quick, true) => vec![(2, 40), (3, 40), (4, 30)],
        (Scale::Standard, false) => vec![(9, 220), (11, 140), (13, 80)],
        (Scale::Standard, true) => vec![(7, 300), (9, 220), (11, 140), (13, 80)],
    };
    grids
        .into_iter()
        .map(|(grid, injections)| Preset {
            device: device.clone(),
            kernel: KernelSpec::LavaMd { grid, particles },
            injections,
        })
        .collect()
}

/// HotSpot preset (Figs. 6 and 7): a single input size, like the paper.
pub fn hotspot(device: &DeviceConfig, scale: Scale) -> Preset {
    let (rows, cols, iterations, injections) = match scale {
        Scale::Quick => (48, 48, 16, 50),
        Scale::Standard => (256, 256, 512, 180),
    };
    Preset {
        device: device.clone(),
        kernel: KernelSpec::HotSpot {
            rows,
            cols,
            iterations,
        },
        injections,
    }
}

/// CLAMR preset (Figs. 8 and 9). The paper only reports the Xeon Phi
/// (CLAMR targets Trinity); pass the Phi device for the reproduction,
/// though the kernel runs on either.
pub fn clamr(device: &DeviceConfig, scale: Scale) -> Preset {
    let (rows, cols, steps, injections) = match scale {
        Scale::Quick => (48, 48, 40, 50),
        Scale::Standard => (128, 128, 300, 150),
    };
    Preset {
        device: device.clone(),
        kernel: KernelSpec::Shallow { rows, cols, steps },
        injections,
    }
}

/// The whole experiment matrix of the paper (§IV-B/§IV-C): DGEMM and
/// LavaMD on both devices at several sizes, HotSpot on both, CLAMR on
/// the Phi.
pub fn full_matrix(scale: Scale) -> Vec<Preset> {
    let k40 = k40();
    let phi = xeon_phi();
    let mut out = Vec::new();
    out.extend(dgemm(&k40, scale));
    out.extend(dgemm(&phi, scale));
    out.extend(lavamd(&k40, scale));
    out.extend(lavamd(&phi, scale));
    out.push(hotspot(&k40, scale));
    out.push(hotspot(&phi, scale));
    out.push(clamr(&phi, scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_devices_build() {
        assert_eq!(k40().units(), 15);
        assert_eq!(xeon_phi().units(), 57);
        assert!(xeon_phi().l2().size_bytes > k40().l2().size_bytes);
    }

    #[test]
    fn phi_gets_one_extra_dgemm_and_lavamd_size() {
        // Table II: the Phi DGEMM matrix goes to 2^13 and LavaMD starts
        // at grid 13.
        assert_eq!(dgemm(&k40(), Scale::Standard).len(), 3);
        assert_eq!(dgemm(&xeon_phi(), Scale::Standard).len(), 4);
        assert_eq!(lavamd(&k40(), Scale::Standard).len(), 3);
        assert_eq!(lavamd(&xeon_phi(), Scale::Standard).len(), 4);
    }

    #[test]
    fn full_matrix_covers_all_experiments() {
        let m = full_matrix(Scale::Quick);
        let dgemm_count = m
            .iter()
            .filter(|p| matches!(p.kernel, KernelSpec::Dgemm { .. }))
            .count();
        let clamr_count = m
            .iter()
            .filter(|p| matches!(p.kernel, KernelSpec::Shallow { .. }))
            .count();
        assert_eq!(dgemm_count, 5); // 2 (K40) + 3 (Phi) quick sizes
        assert_eq!(clamr_count, 1);
    }

    #[test]
    fn quick_presets_actually_run() {
        let p = &dgemm(&k40(), Scale::Quick)[0];
        let result = p.campaign(3).run().unwrap();
        assert_eq!(result.records.len(), p.injections);
    }

    #[test]
    fn hardened_campaign_arms_the_watchdog() {
        let p = &dgemm(&k40(), Scale::Quick)[0];
        assert_eq!(p.campaign(3).deadline, None);
        assert_eq!(p.hardened_campaign(3).deadline, Some(PRESET_DEADLINE));
    }

    #[test]
    fn particle_ratio_matches_paper() {
        let k = &lavamd(&k40(), Scale::Standard)[0];
        let p = &lavamd(&xeon_phi(), Scale::Standard)[0];
        let (KernelSpec::LavaMd { particles: pk, .. }, KernelSpec::LavaMd { particles: pp, .. }) =
            (k.kernel, p.kernel)
        else {
            panic!("lavamd presets must be lavamd");
        };
        assert_eq!(pk, 2 * pp);
    }
}
