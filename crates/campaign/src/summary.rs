//! Aggregate campaign statistics: the numbers behind the paper's plots.

use std::collections::BTreeMap;

use radcrit_core::fit::{FitBreakdown, FitRate};
use radcrit_core::locality::SpatialClass;
use radcrit_core::stats::poisson_ci;
use serde::{Deserialize, Serialize};

use crate::outcome::InjectionOutcome;
use crate::runner::CampaignResult;
use crate::telemetry::TelemetrySnapshot;

/// One scatter point of Figs. 2/4/6/8: a faulty execution's number of
/// incorrect elements versus its mean relative error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Number of incorrect elements.
    pub incorrect_elements: usize,
    /// Mean relative error in percent (uncapped).
    pub mean_relative_error: f64,
}

/// Aggregate statistics of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Kernel name.
    pub kernel: String,
    /// Input-size label.
    pub input: String,
    /// Device name.
    pub device: String,
    /// Number of injections.
    pub injections: usize,
    /// Masked executions.
    pub masked: usize,
    /// SDC executions (before the tolerance filter).
    pub sdc: usize,
    /// SDC executions that survive the tolerance filter.
    pub critical_sdc: usize,
    /// Crashes.
    pub crash: usize,
    /// Hangs.
    pub hang: usize,
    /// Total cross-section (a.u.) — the FIT scale factor.
    pub sigma_total: f64,
    /// FIT break-down by raw spatial class ("All" bars).
    pub fit_all: FitBreakdown,
    /// FIT break-down by filtered spatial class ("> 2 %" bars).
    pub fit_filtered: FitBreakdown,
    /// Scatter series over raw metrics.
    pub scatter: Vec<ScatterPoint>,
    /// Per-site SDC counts.
    pub sdc_by_site: BTreeMap<String, usize>,
}

impl CampaignSummary {
    /// Builds the summary from a finished campaign.
    pub fn from_result(result: &CampaignResult) -> Self {
        let mut masked = 0usize;
        let mut crash = 0usize;
        let mut hang = 0usize;
        let mut sdc = 0usize;
        let mut critical_sdc = 0usize;
        let mut all_counts: BTreeMap<SpatialClass, usize> = BTreeMap::new();
        let mut filt_counts: BTreeMap<SpatialClass, usize> = BTreeMap::new();
        let mut scatter = Vec::new();
        let mut sdc_by_site: BTreeMap<String, usize> = BTreeMap::new();

        for r in &result.records {
            match &r.outcome {
                InjectionOutcome::Masked => masked += 1,
                InjectionOutcome::Crash => crash += 1,
                InjectionOutcome::Hang => hang += 1,
                InjectionOutcome::Sdc(d) => {
                    sdc += 1;
                    *sdc_by_site.entry(r.site.clone()).or_default() += 1;
                    *all_counts.entry(d.criticality.locality).or_default() += 1;
                    if d.criticality.is_critical() {
                        critical_sdc += 1;
                        *filt_counts
                            .entry(d.criticality.filtered_locality)
                            .or_default() += 1;
                    }
                    scatter.push(ScatterPoint {
                        incorrect_elements: d.criticality.incorrect_elements,
                        mean_relative_error: d
                            .criticality
                            .mean_relative_error
                            .unwrap_or(f64::INFINITY),
                    });
                }
            }
        }

        // FIT in arbitrary units: the event share scaled by the total
        // cross-section. Ratios across campaigns then behave like the
        // paper's relative FIT: (events_cat / injections) × σ_total ∝
        // events_cat / fluence.
        let injections = result.records.len().max(1) as f64;
        let to_fit =
            |count: usize| FitRate::from_raw(count as f64 / injections * result.sigma_total);
        let fit_all = all_counts
            .iter()
            .map(|(&class, &n)| (class, to_fit(n)))
            .collect();
        let fit_filtered = filt_counts
            .iter()
            .map(|(&class, &n)| (class, to_fit(n)))
            .collect();

        CampaignSummary {
            kernel: result.campaign.kernel.name().to_owned(),
            input: result.campaign.kernel.input_label(),
            device: result.campaign.device.kind().to_string(),
            injections: result.records.len(),
            masked,
            sdc,
            critical_sdc,
            crash,
            hang,
            sigma_total: result.sigma_total,
            fit_all,
            fit_filtered,
            scatter,
            sdc_by_site,
        }
    }

    /// Rebuilds the summary from a [`CriticalityAggregator`] fold of
    /// the campaign's event stream.
    ///
    /// This is the analytics layer's hard invariant: for any finished
    /// campaign with events enabled,
    /// `CampaignSummary::from_analytics(&fold of events.jsonl)` renders
    /// byte-identically to `result.summary()` — the FIT arithmetic,
    /// scatter ordering and float formatting all coincide. Integration
    /// tests assert this across every fixture, including kill → resume
    /// streams whose replayed indices fold from enriched `replay`
    /// markers.
    pub fn from_analytics(agg: &radcrit_obs::CriticalityAggregator) -> Self {
        CampaignSummary {
            kernel: agg.kernel().to_owned(),
            input: agg.input().to_owned(),
            device: agg.device().to_owned(),
            injections: agg.injections() as usize,
            masked: agg.masked() as usize,
            sdc: agg.sdc() as usize,
            critical_sdc: agg.critical_sdc() as usize,
            crash: agg.crash() as usize,
            hang: agg.hang() as usize,
            sigma_total: agg.sigma_total(),
            fit_all: agg.fit_all(),
            fit_filtered: agg.fit_filtered(),
            scatter: agg
                .scatter()
                .map(|(_, mismatches, mre)| ScatterPoint {
                    incorrect_elements: mismatches as usize,
                    mean_relative_error: mre,
                })
                .collect(),
            sdc_by_site: agg
                .sdc_by_site()
                .iter()
                .map(|(site, &n)| (site.clone(), n as usize))
                .collect(),
        }
    }

    /// SDC : (crash + hang) ratio (§V intro).
    pub fn sdc_to_crash_hang_ratio(&self) -> f64 {
        let fatal = self.crash + self.hang;
        if fatal == 0 {
            f64::INFINITY
        } else {
            self.sdc as f64 / fatal as f64
        }
    }

    /// Fraction of SDCs fully inside the tolerance (dropped by the
    /// filter) — §V-A reports 50–75 % for K40 DGEMM, ~0 for the Phi;
    /// §V-C reports 80–95 % for HotSpot.
    pub fn filtered_out_fraction(&self) -> f64 {
        if self.sdc == 0 {
            0.0
        } else {
            1.0 - self.critical_sdc as f64 / self.sdc as f64
        }
    }

    /// The total "All" FIT in a.u.
    pub fn fit_all_total(&self) -> f64 {
        self.fit_all.total().value()
    }

    /// The total "> threshold" FIT in a.u.
    pub fn fit_filtered_total(&self) -> f64 {
        self.fit_filtered.total().value()
    }

    /// 95 % Poisson confidence interval on the "All" FIT total, in a.u.
    pub fn fit_all_ci95(&self) -> (f64, f64) {
        let (lo, hi) = poisson_ci(self.sdc, 0.95);
        let scale = self.sigma_total / self.injections.max(1) as f64;
        (lo * scale, hi * scale)
    }

    /// Mean number of incorrect elements over SDCs.
    pub fn mean_incorrect_elements(&self) -> f64 {
        if self.scatter.is_empty() {
            return 0.0;
        }
        self.scatter
            .iter()
            .map(|p| p.incorrect_elements as f64)
            .sum::<f64>()
            / self.scatter.len() as f64
    }

    /// Fraction of SDCs whose mean relative error is at most
    /// `bound_pct` (for statements like "about 75 % of K40 DGEMM errors
    /// have a mean relative error below 10 %").
    pub fn fraction_mre_at_most(&self, bound_pct: f64) -> f64 {
        if self.scatter.is_empty() {
            return 0.0;
        }
        self.scatter
            .iter()
            .filter(|p| p.mean_relative_error <= bound_pct)
            .count() as f64
            / self.scatter.len() as f64
    }

    /// Share of cubic + square locality among filtered SDCs (§V-B's
    /// 55 %→42 % trend for K40 LavaMD).
    pub fn block_locality_fraction(&self) -> f64 {
        self.fit_all
            .fraction_of(&[SpatialClass::Cubic, SpatialClass::Square])
    }

    /// Renders the summary as one canonical JSON line (no trailing
    /// newline).
    ///
    /// The encoding is fully deterministic — fixed field order, sorted
    /// maps, [`radcrit_obs::json::fmt_f64`] float formatting — so two
    /// summaries are equal iff their rendered bytes are equal. This is
    /// the wire format of the campaign service's `result.json` and of
    /// the CLI's `--summary-out`, and the bit-for-bit identity check
    /// between the two paths compares exactly these bytes.
    pub fn to_json(&self) -> String {
        use radcrit_obs::json::{escape, fmt_f64};

        let fit = |b: &FitBreakdown| {
            let fields: Vec<String> = b
                .iter()
                .map(|(class, rate)| {
                    format!(
                        "\"{}\":{}",
                        escape(&class.to_string()),
                        fmt_f64(rate.value())
                    )
                })
                .collect();
            format!("{{{}}}", fields.join(","))
        };
        let scatter: Vec<String> = self
            .scatter
            .iter()
            .map(|p| {
                format!(
                    "{{\"incorrect_elements\":{},\"mean_relative_error\":{}}}",
                    p.incorrect_elements,
                    fmt_f64(p.mean_relative_error)
                )
            })
            .collect();
        let by_site: Vec<String> = self
            .sdc_by_site
            .iter()
            .map(|(site, n)| format!("\"{}\":{n}", escape(site)))
            .collect();
        format!(
            concat!(
                "{{\"radcrit_summary\":1",
                ",\"kernel\":\"{}\",\"input\":\"{}\",\"device\":\"{}\"",
                ",\"injections\":{},\"masked\":{},\"sdc\":{},\"critical_sdc\":{}",
                ",\"crash\":{},\"hang\":{},\"sigma_total\":{}",
                ",\"fit_all\":{},\"fit_filtered\":{}",
                ",\"scatter\":[{}],\"sdc_by_site\":{{{}}}}}"
            ),
            escape(&self.kernel),
            escape(&self.input),
            escape(&self.device),
            self.injections,
            self.masked,
            self.sdc,
            self.critical_sdc,
            self.crash,
            self.hang,
            fmt_f64(self.sigma_total),
            fit(&self.fit_all),
            fit(&self.fit_filtered),
            scatter.join(","),
            by_site.join(",")
        )
    }
}

/// A human-readable report of one run: the summary's outcome counts
/// joined with the run's telemetry (wall time, throughput, latency,
/// watchdog activity).
///
/// Telemetry is deliberately *not* part of [`CampaignSummary`] — wall
/// clocks differ between runs, and the summary must stay bit-identical
/// between a resumed and an uninterrupted campaign. Pairing them happens
/// only at presentation time, here.
pub fn render_run(summary: &CampaignSummary, telemetry: &TelemetrySnapshot) -> String {
    let mut out = format!(
        "{} x {} on {}: {} injections -> {} masked, {} SDC ({} critical), {} crash, {} hang\n",
        summary.kernel,
        summary.input,
        summary.device,
        summary.injections,
        summary.masked,
        summary.sdc,
        summary.critical_sdc,
        summary.crash,
        summary.hang,
    );
    out.push_str(&format!(
        "run: {} new + {} replayed in {:.1?} ({:.1} inj/s)",
        telemetry.completed,
        telemetry.replayed,
        telemetry.elapsed,
        telemetry.throughput(),
    ));
    if let (Some(p50), Some(p90)) = (
        telemetry.latency.quantile(0.5),
        telemetry.latency.quantile(0.9),
    ) {
        out.push_str(&format!(" | latency p50<{p50:.1?} p90<{p90:.1?}"));
    }
    if telemetry.watchdog_hangs > 0 {
        out.push_str(&format!(
            " | {} hang(s) cut off by the watchdog",
            telemetry.watchdog_hangs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Campaign, KernelSpec};
    use radcrit_accel::config::DeviceConfig;

    fn result() -> CampaignResult {
        Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            200,
            5,
        )
        .with_workers(4)
        .run()
        .unwrap()
    }

    #[test]
    fn summary_counts_are_consistent() {
        let r = result();
        let s = r.summary();
        assert_eq!(s.injections, 200);
        assert_eq!(s.masked + s.sdc + s.crash + s.hang, 200);
        assert!(s.critical_sdc <= s.sdc);
        assert_eq!(
            s.scatter.len(),
            s.sdc,
            "one scatter point per faulty execution"
        );
        let by_site_total: usize = s.sdc_by_site.values().sum();
        assert_eq!(by_site_total, s.sdc);
    }

    #[test]
    fn fit_totals_scale_with_sigma() {
        let r = result();
        let s = r.summary();
        let expected = s.sdc as f64 / 200.0 * s.sigma_total;
        assert!((s.fit_all_total() - expected).abs() < 1e-9 * expected.max(1.0));
        assert!(s.fit_filtered_total() <= s.fit_all_total() + 1e-9);
    }

    #[test]
    fn ci_brackets_fit() {
        let r = result();
        let s = r.summary();
        if s.sdc > 0 {
            let (lo, hi) = s.fit_all_ci95();
            assert!(lo < s.fit_all_total());
            assert!(hi > s.fit_all_total());
        }
    }

    #[test]
    fn fraction_mre_is_monotone_in_bound() {
        let r = result();
        let s = r.summary();
        assert!(s.fraction_mre_at_most(1.0) <= s.fraction_mre_at_most(100.0));
        assert!(s.fraction_mre_at_most(f64::INFINITY) <= 1.0);
    }

    #[test]
    fn summary_json_is_deterministic_and_parseable() {
        use radcrit_obs::json;

        let s = result().summary();
        let line = s.to_json();
        assert_eq!(line, result().summary().to_json(), "stable across runs");
        assert!(!line.contains('\n'));

        let parsed = json::parse_line(&line).unwrap();
        let top = json::as_obj(&parsed).unwrap();
        assert_eq!(json::get_usize(top, "radcrit_summary"), Ok(1));
        assert_eq!(json::get_str(top, "kernel"), Ok("dgemm"));
        assert_eq!(json::get_usize(top, "injections"), Ok(200));
        assert_eq!(
            json::get_usize(top, "masked").unwrap()
                + json::get_usize(top, "sdc").unwrap()
                + json::get_usize(top, "crash").unwrap()
                + json::get_usize(top, "hang").unwrap(),
            200
        );
    }

    #[test]
    fn render_run_joins_summary_and_telemetry() {
        let r = result();
        let text = render_run(&r.summary(), &r.telemetry);
        assert!(text.contains("dgemm x 32x32"), "{text}");
        assert!(text.contains("200 injections"), "{text}");
        assert!(text.contains("inj/s"), "{text}");
        assert!(text.contains("200 new + 0 replayed"), "{text}");
    }
}
