//! `radcrit-campaign` — run one injection campaign from the command line.
//!
//! ```text
//! radcrit-campaign --device k40|phi [--scale N] --kernel dgemm|lavamd|hotspot|clamr
//!                  [--n N] [--grid G] [--particles P] [--rows R] [--cols C]
//!                  [--steps S] [--iterations I]
//!                  [--injections N] [--seed S] [--tolerance PCT]
//!                  [--workers W] [--csv FILE] [--log FILE] [--hardening]
//!                  [--deadline-ms MS] [--checkpoint FILE] [--resume]
//!                  [--progress SECS]
//!                  [--metrics-out FILE] [--events-out FILE] [--events-sample N]
//! radcrit-campaign obs-report EVENTS_FILE
//! ```
//!
//! Prints the campaign summary (outcome counts, FIT break-downs, §III
//! metrics) and optionally writes the CAROL-style log and CSV that third
//! parties can re-filter. `--deadline-ms` arms the per-injection hang
//! watchdog, `--checkpoint`/`--resume` stream records to a JSONL file
//! that survives kills, and `--progress` prints a periodic status line.
//!
//! Observability: `--events-out` streams structured JSONL events
//! (lifecycle spans, strikes, resolutions, diffs, and one `provenance`
//! record per injection) in injection-index order; `--events-sample N`
//! restricts the detail events to every Nth injection; `--metrics-out`
//! writes an end-of-run metrics snapshot as JSON, plus a Prometheus text
//! rendering beside it (`.prom` extension). The `obs-report` subcommand
//! aggregates an event stream's provenance records into a per-site
//! outcome / spatial-class / relative-error table.

use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Duration;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::log::{write_csv, write_log};
use radcrit_campaign::summary::render_run;
use radcrit_campaign::{Campaign, HardeningAnalysis, KernelSpec, RunOptions};
use radcrit_core::filter::ToleranceFilter;
use radcrit_core::locality::SpatialClass;
use radcrit_obs::ProvenanceBreakdown;

#[derive(Debug, Default)]
struct Args {
    device: Option<String>,
    scale: usize,
    kernel: Option<String>,
    n: usize,
    grid: usize,
    particles: usize,
    rows: usize,
    cols: usize,
    steps: usize,
    iterations: usize,
    injections: usize,
    seed: u64,
    tolerance: f64,
    workers: usize,
    csv: Option<String>,
    log: Option<String>,
    hardening: bool,
    deadline_ms: Option<u64>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    progress: Option<f64>,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    events_sample: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: radcrit-campaign --device k40|phi --kernel dgemm|lavamd|hotspot|clamr\n\
         \x20      [--scale 8] [--n 128] [--grid 7] [--particles 16]\n\
         \x20      [--rows 128] [--cols 128] [--steps 200] [--iterations 128]\n\
         \x20      [--injections 200] [--seed 2017] [--tolerance 2.0]\n\
         \x20      [--workers 0] [--csv out.csv] [--log out.log] [--hardening]\n\
         \x20      [--deadline-ms 120000] [--checkpoint run.jsonl] [--resume]\n\
         \x20      [--progress 5]\n\
         \x20      [--metrics-out metrics.json] [--events-out events.jsonl]\n\
         \x20      [--events-sample 1]\n\
         \x20      radcrit-campaign obs-report events.jsonl"
    );
    exit(2)
}

/// `obs-report EVENTS_FILE`: aggregate an event stream's provenance
/// records into the per-site breakdown table.
fn obs_report(args: &[String]) -> ! {
    let [path] = args else {
        eprintln!("usage: radcrit-campaign obs-report EVENTS_FILE");
        exit(2)
    };
    match ProvenanceBreakdown::from_events_path(Path::new(path)) {
        Ok(b) if b.sites().is_empty() => {
            eprintln!("no provenance events found in {path}");
            exit(1)
        }
        Ok(b) => {
            print!("{}", b.render());
            let totals = b
                .class_totals()
                .iter()
                .map(|(class, n)| format!("{class}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!("spatial-class totals: {totals}");
            exit(0)
        }
        Err(e) => {
            eprintln!("obs-report: {e}");
            exit(1)
        }
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: 8,
        n: 128,
        grid: 7,
        particles: 16,
        rows: 128,
        cols: 128,
        steps: 200,
        iterations: 128,
        injections: 200,
        seed: 2017,
        tolerance: ToleranceFilter::PAPER_THRESHOLD_PCT,
        ..Args::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = |it: &mut dyn Iterator<Item = String>| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--device" => a.device = Some(val(&mut it)),
            "--scale" => a.scale = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--kernel" => a.kernel = Some(val(&mut it)),
            "--n" => a.n = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--grid" => a.grid = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--particles" => a.particles = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--rows" => a.rows = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--cols" => a.cols = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--steps" => a.steps = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--iterations" => a.iterations = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--injections" => a.injections = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--tolerance" => a.tolerance = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--workers" => a.workers = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--csv" => a.csv = Some(val(&mut it)),
            "--log" => a.log = Some(val(&mut it)),
            "--hardening" => a.hardening = true,
            "--deadline-ms" => {
                a.deadline_ms = Some(val(&mut it).parse().unwrap_or_else(|_| usage()))
            }
            "--checkpoint" => a.checkpoint = Some(PathBuf::from(val(&mut it))),
            "--resume" => a.resume = true,
            "--progress" => a.progress = Some(val(&mut it).parse().unwrap_or_else(|_| usage())),
            "--metrics-out" => a.metrics_out = Some(PathBuf::from(val(&mut it))),
            "--events-out" => a.events_out = Some(PathBuf::from(val(&mut it))),
            "--events-sample" => a.events_sample = val(&mut it).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    a
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("obs-report") {
        obs_report(&argv[1..]);
    }
    let args = parse_args();

    let device = match args.device.as_deref() {
        Some("k40") => DeviceConfig::kepler_k40(),
        Some("phi") => DeviceConfig::xeon_phi_3120a(),
        _ => usage(),
    };
    let device = if args.scale > 1 {
        device.scaled(args.scale).unwrap_or_else(|e| {
            eprintln!("cannot scale device: {e}");
            exit(2)
        })
    } else {
        device
    };

    let kernel = match args.kernel.as_deref() {
        Some("dgemm") => KernelSpec::Dgemm { n: args.n },
        Some("lavamd") => KernelSpec::LavaMd {
            grid: args.grid,
            particles: args.particles,
        },
        Some("hotspot") => KernelSpec::HotSpot {
            rows: args.rows,
            cols: args.cols,
            iterations: args.iterations,
        },
        Some("clamr") => KernelSpec::Shallow {
            rows: args.rows,
            cols: args.cols,
            steps: args.steps,
        },
        _ => usage(),
    };

    let tolerance = ToleranceFilter::new(args.tolerance).unwrap_or_else(|e| {
        eprintln!("bad tolerance: {e}");
        exit(2)
    });

    eprintln!(
        "running {} x {} on {} ({} injections, seed {}) ...",
        kernel.name(),
        kernel.input_label(),
        device.kind(),
        args.injections,
        args.seed
    );
    if args.resume && args.checkpoint.is_none() {
        eprintln!("--resume needs --checkpoint FILE");
        exit(2)
    }
    if args.progress.is_some_and(|p| p <= 0.0 || !p.is_finite()) {
        eprintln!("--progress must be a positive number of seconds");
        exit(2)
    }

    let mut campaign = Campaign::new(device, kernel, args.injections, args.seed)
        .with_tolerance(tolerance)
        .with_workers(args.workers);
    if let Some(ms) = args.deadline_ms {
        if ms == 0 {
            eprintln!("--deadline-ms must be positive");
            exit(2)
        }
        campaign = campaign.with_deadline(Duration::from_millis(ms));
    }
    let options = RunOptions {
        checkpoint: args.checkpoint,
        resume: args.resume,
        progress: args.progress.map(Duration::from_secs_f64),
        budget: None,
        metrics_out: args.metrics_out.clone(),
        events_out: args.events_out.clone(),
        events_sample: args.events_sample,
    };

    let result = campaign.run_with(&options).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        exit(1)
    });

    let s = result.summary();
    eprintln!("{}", render_run(&s, &result.telemetry));
    println!(
        "outcomes: {} SDC ({} critical at >{}%), {} masked, {} crash, {} hang",
        s.sdc, s.critical_sdc, args.tolerance, s.masked, s.crash, s.hang
    );
    println!(
        "SDC:(crash+hang) ratio: {:.2} | filtered out: {:.0}% | sigma {:.3e} a.u.",
        s.sdc_to_crash_hang_ratio(),
        s.filtered_out_fraction() * 100.0,
        s.sigma_total
    );
    println!("FIT (a.u., scaled 1e-3):");
    for (label, b) in [("All", &s.fit_all), (">tol", &s.fit_filtered)] {
        let classes = SpatialClass::PLOTTED
            .iter()
            .map(|&c| format!("{c}:{:.2}", b.rate(c).value() * 1e-3))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {label:>4}: total {:.2} | {classes}",
            b.total().value() * 1e-3
        );
    }
    let (lo, hi) = s.fit_all_ci95();
    println!(
        "  95% CI on All total: [{:.2}, {:.2}]",
        lo * 1e-3,
        hi * 1e-3
    );

    if args.hardening {
        let analysis = HardeningAnalysis::of(&result);
        println!("hardening priority (site: critical SDCs, AVF):");
        for (site, impact) in analysis.ranked_sites() {
            println!(
                "  {site:>16}: {:>4} critical, AVF {}",
                impact.critical,
                analysis
                    .avf(site)
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}"))
            );
        }
    }

    if let Some(path) = args.log {
        let f = File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1)
        });
        write_log(&result, BufWriter::new(f)).expect("log write");
        eprintln!("log written to {path}");
    }
    if let Some(path) = args.csv {
        let f = File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            exit(1)
        });
        write_csv(&result, BufWriter::new(f)).expect("csv write");
        eprintln!("csv written to {path}");
    }
    if let Some(path) = &args.metrics_out {
        eprintln!(
            "metrics written to {} (Prometheus text: {})",
            path.display(),
            path.with_extension("prom").display()
        );
    }
    if let Some(path) = &args.events_out {
        eprintln!(
            "events written to {} (aggregate with: radcrit-campaign obs-report {})",
            path.display(),
            path.display()
        );
    }
}
