//! The campaign runner: golden run, cross sections, parallel injection —
//! hardened with a hang watchdog, panic capture, streaming checkpoints
//! and run telemetry.
//!
//! ## Execution model
//!
//! Worker threads claim injection indices from a shared cursor and send
//! finished [`InjectionRecord`]s over a bounded channel to the collector
//! (the calling thread), which appends them to the optional JSONL
//! checkpoint, feeds the [`Telemetry`] accumulator, and prints the
//! periodic progress line. Injection `i` always uses its own seeded RNG
//! stream, so records are identical for any worker count — which is what
//! lets [`Campaign::resume`] replay a killed campaign's checkpoint and
//! finish with a bit-identical summary.
//!
//! ## Failure containment
//!
//! * A panic inside an injection is caught ([`std::panic::catch_unwind`])
//!   and surfaces as [`AccelError::WorkerPanic`] instead of aborting.
//! * The first worker error wins and stops further dispatch; later
//!   errors are dropped rather than overwriting it.
//! * With [`Campaign::with_deadline`] armed, an injection still running
//!   past the deadline is recorded as [`InjectionOutcome::Hang`]
//!   (site `"watchdog"`), its worker is abandoned, and a replacement
//!   worker keeps the campaign going. An abandoned worker that
//!   eventually wakes up discards its stale result via a generation
//!   check, so the synthesized record is never duplicated.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::engine::Engine;
use radcrit_accel::error::AccelError;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_core::mismatch::Mismatch;
use radcrit_core::report::ErrorReport;
use radcrit_faults::sampler::{FaultSampler, InjectionPlan};
use radcrit_kernels::Workload;

use crate::checkpoint::CheckpointWriter;
use crate::config::Campaign;
use crate::outcome::{InjectionOutcome, InjectionRecord, SdcDetail};
use crate::summary::CampaignSummary;
use crate::telemetry::{Telemetry, TelemetrySnapshot};

/// The site name of hang records synthesized by the watchdog.
pub const WATCHDOG_SITE: &str = "watchdog";

/// Per-invocation knobs of [`Campaign::run_with`] — how a run executes,
/// as opposed to the scientific configuration living on [`Campaign`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stream finished records to this JSONL checkpoint file.
    pub checkpoint: Option<PathBuf>,
    /// Replay completed indices from an existing checkpoint before
    /// running (no-op when the file does not exist yet).
    pub resume: bool,
    /// Print a progress line to stderr at this interval.
    pub progress: Option<Duration>,
    /// Stop after producing this many new records, leaving the campaign
    /// resumable — primarily a deterministic stand-in for "killed
    /// mid-run" in tests and a way to slice very long campaigns.
    pub budget: Option<usize>,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The campaign that was run.
    pub campaign: Campaign,
    /// Golden execution profile.
    pub profile: ExecutionProfile,
    /// Total cross-section in byte-equivalents (drives the FIT scale).
    pub sigma_total: f64,
    /// Raw output length in elements.
    pub output_len: usize,
    /// One record per injection, in index order (fewer than
    /// `campaign.injections` when a budget cut the run short).
    pub records: Vec<InjectionRecord>,
    /// How the run went: throughput, latency, watchdog activity.
    pub telemetry: TelemetrySnapshot,
}

impl CampaignResult {
    /// Builds the aggregate summary (FIT break-downs, scatter series,
    /// outcome counts).
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary::from_result(self)
    }

    /// Whether every injection of the campaign has a record.
    pub fn is_complete(&self) -> bool {
        self.records.len() == self.campaign.injections
    }
}

/// State shared between the collector and the worker threads.
struct Shared {
    campaign: Campaign,
    sampler: FaultSampler,
    golden: Vec<f64>,
    /// Indices still to run (already filtered against the checkpoint).
    pending: Vec<usize>,
    /// Cursor into `pending`.
    next: AtomicUsize,
    /// Set on the first error; workers stop claiming new indices.
    stop: AtomicBool,
}

/// One worker's watchdog slot. The generation counter arbitrates between
/// a worker finishing late and the watchdog having already given up on
/// it: whoever still holds the generation owns the injection's record.
struct Slot {
    generation: u64,
    /// The injection being executed and when it started.
    current: Option<(usize, Instant)>,
    retired: bool,
}

enum Event {
    Done {
        record: InjectionRecord,
        latency: Duration,
    },
    Failed {
        error: AccelError,
    },
    Exited,
}

impl Campaign {
    /// Runs the campaign: one golden execution, then `injections`
    /// fault-injected executions distributed over worker threads.
    ///
    /// Results are deterministic for a given `(campaign, seed)` pair
    /// regardless of the worker count: injection `i` always uses its own
    /// seeded RNG stream.
    ///
    /// # Errors
    ///
    /// Propagates kernel construction and execution errors; a panicking
    /// injection returns [`AccelError::WorkerPanic`].
    pub fn run(&self) -> Result<CampaignResult, AccelError> {
        self.run_with(&RunOptions::default())
    }

    /// Resumes a campaign from the JSONL checkpoint at `path`: completed
    /// indices are replayed from the file, the rest are run, and new
    /// records are appended to the same file. A missing file starts a
    /// fresh checkpointed run, so calling this in a retry loop is safe.
    ///
    /// # Errors
    ///
    /// [`AccelError::Corrupt`] when the checkpoint belongs to a
    /// different campaign or is damaged beyond its final line; plus
    /// everything [`Campaign::run`] can return.
    pub fn resume<P: AsRef<Path>>(&self, path: P) -> Result<CampaignResult, AccelError> {
        self.run_with(&RunOptions {
            checkpoint: Some(path.as_ref().to_owned()),
            resume: true,
            ..RunOptions::default()
        })
    }

    /// [`Campaign::run`] with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// As [`Campaign::run`], plus [`AccelError::Corrupt`] for checkpoint
    /// I/O and validation failures.
    pub fn run_with(&self, options: &RunOptions) -> Result<CampaignResult, AccelError> {
        let engine = Engine::new(self.device.clone());

        // Golden execution: output, profile, cross sections.
        let mut golden_kernel = self.kernel.build(self.seed)?;
        let golden = engine.golden(golden_kernel.as_mut())?;
        let sampler = FaultSampler::new(&self.device, &golden.profile);
        let sigma_total = sampler.table().total();
        let golden_output = golden.output;

        // Checkpoint: replay what a previous run already finished.
        let mut writer = None;
        let mut records: Vec<InjectionRecord> = Vec::new();
        if let Some(path) = &options.checkpoint {
            if options.resume {
                let (w, replayed) = CheckpointWriter::resume(path, self)?;
                writer = Some(w);
                records = replayed;
            } else {
                writer = Some(CheckpointWriter::create(path, self)?);
            }
        }
        let done: HashSet<usize> = records.iter().map(|r| r.index).collect();
        let mut pending: Vec<usize> = (0..self.injections).filter(|i| !done.contains(i)).collect();
        let target = options
            .budget
            .map_or(pending.len(), |b| b.min(pending.len()));
        pending.truncate(target);

        let mut telemetry = Telemetry::new();
        telemetry.note_replayed(records.len());

        let workers = self.effective_workers().min(target.max(1));
        let shared = Arc::new(Shared {
            campaign: self.clone(),
            sampler,
            golden: golden_output.clone(),
            pending,
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });

        // The collector keeps its own sender alive so the watchdog can
        // hand it to replacement workers; termination is tracked via the
        // `active` count rather than channel disconnection.
        let (tx, rx) = mpsc::sync_channel::<Event>(workers * 2 + 4);
        let mut slots: Vec<Arc<Mutex<Slot>>> = Vec::new();
        let mut active = 0usize;
        if target > 0 {
            for _ in 0..workers {
                slots.push(spawn_worker(&shared, &tx));
                active += 1;
            }
        }

        // The collector tick bounds both watchdog reaction time and
        // progress-line cadence.
        let mut tick = Duration::from_millis(200);
        if let Some(deadline) = self.deadline {
            tick = tick.min(deadline / 4);
        }
        if let Some(progress) = options.progress {
            tick = tick.min(progress);
        }
        let tick = tick.max(Duration::from_millis(5));

        let mut produced = 0usize;
        let mut first_error: Option<AccelError> = None;
        let mut last_progress = Instant::now();

        while active > 0 && produced < target {
            match rx.recv_timeout(tick) {
                Ok(Event::Done { record, latency }) => {
                    telemetry.record(&record.outcome, latency, false);
                    if let Some(w) = writer.as_mut() {
                        if let Err(e) = w.append(&record) {
                            shared.stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                    records.push(record);
                    produced += 1;
                }
                Ok(Event::Failed { error }) => {
                    // First error wins; later ones are victims of the
                    // same shutdown, not the cause.
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                    shared.stop.store(true, Ordering::SeqCst);
                }
                Ok(Event::Exited) => active -= 1,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            if let Some(deadline) = self.deadline {
                let mut hung_indices = Vec::new();
                for slot in &slots {
                    let mut s = slot.lock().expect("slot lock");
                    if let Some((index, started)) = s.current {
                        if started.elapsed() >= deadline {
                            s.generation += 1;
                            s.current = None;
                            s.retired = true;
                            hung_indices.push(index);
                        }
                    }
                }
                for index in hung_indices {
                    active -= 1;
                    let record = InjectionRecord {
                        index,
                        site: WATCHDOG_SITE.into(),
                        at_tile: None,
                        delivered: true,
                        outcome: InjectionOutcome::Hang,
                    };
                    telemetry.record(&record.outcome, deadline, true);
                    if let Some(w) = writer.as_mut() {
                        if let Err(e) = w.append(&record) {
                            shared.stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                    records.push(record);
                    produced += 1;
                    if produced < target && !shared.stop.load(Ordering::SeqCst) {
                        // Keep the pool at strength: the hung worker is
                        // abandoned, not joined.
                        slots.push(spawn_worker(&shared, &tx));
                        active += 1;
                    }
                }
                slots.retain(|s| !s.lock().expect("slot lock").retired);
            }

            if let Some(interval) = options.progress {
                if last_progress.elapsed() >= interval {
                    eprintln!("{}", telemetry.snapshot().progress_line(target));
                    last_progress = Instant::now();
                }
            }
        }
        shared.stop.store(true, Ordering::SeqCst);

        if let Some(e) = first_error {
            return Err(e);
        }
        if options.progress.is_some() {
            eprintln!("{}", telemetry.snapshot().progress_line(target));
        }
        records.sort_by_key(|r| r.index);

        Ok(CampaignResult {
            campaign: self.clone(),
            profile: golden.profile,
            sigma_total,
            output_len: golden_output.len(),
            records,
            telemetry: telemetry.snapshot(),
        })
    }

    fn run_one(
        &self,
        index: usize,
        engine: &Engine,
        kernel: &mut (dyn Workload + Send),
        sampler: &FaultSampler,
        golden: &[f64],
    ) -> Result<InjectionRecord, AccelError> {
        // A per-injection RNG stream: reproducible independent of worker
        // scheduling.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64);
        let mut rng = StdRng::seed_from_u64(stream);

        let plan = sampler.sample(&mut rng);
        match plan {
            InjectionPlan::Crash => Ok(InjectionRecord {
                index,
                site: "fatal".into(),
                at_tile: None,
                delivered: true,
                outcome: InjectionOutcome::Crash,
            }),
            InjectionPlan::Hang => Ok(InjectionRecord {
                index,
                site: "fatal".into(),
                at_tile: None,
                delivered: true,
                outcome: InjectionOutcome::Hang,
            }),
            InjectionPlan::Strike(spec) => {
                let run = engine.run(kernel, &spec, &mut rng)?;
                let report = compare_with_logical_coords(golden, &run.output, kernel);
                let outcome = if report.is_sdc() {
                    let criticality = report.criticality(&self.tolerance, &self.classifier);
                    InjectionOutcome::Sdc(SdcDetail {
                        criticality,
                        output_len: golden.len(),
                    })
                } else {
                    InjectionOutcome::Masked
                };
                Ok(InjectionRecord {
                    index,
                    site: spec.target.site_name().to_owned(),
                    at_tile: Some(spec.at_tile),
                    delivered: run.strike_delivered,
                    outcome,
                })
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, tx: &SyncSender<Event>) -> Arc<Mutex<Slot>> {
    let slot = Arc::new(Mutex::new(Slot {
        generation: 0,
        current: None,
        retired: false,
    }));
    let shared = Arc::clone(shared);
    let slot_for_worker = Arc::clone(&slot);
    let tx = tx.clone();
    thread::spawn(move || worker_loop(shared, slot_for_worker, tx));
    slot
}

fn worker_loop(shared: Arc<Shared>, slot: Arc<Mutex<Slot>>, tx: SyncSender<Event>) {
    let mut kernel = match shared.campaign.kernel.build(shared.campaign.seed) {
        Ok(k) => k,
        Err(e) => {
            shared.stop.store(true, Ordering::SeqCst);
            let _ = tx.send(Event::Failed { error: e });
            let _ = tx.send(Event::Exited);
            return;
        }
    };
    let engine = Engine::new(shared.campaign.device.clone());

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let cursor = shared.next.fetch_add(1, Ordering::SeqCst);
        let Some(&index) = shared.pending.get(cursor) else {
            break;
        };

        let my_generation = {
            let mut s = slot.lock().expect("slot lock");
            if s.retired {
                return;
            }
            s.current = Some((index, Instant::now()));
            s.generation
        };

        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.campaign.run_one(
                index,
                &engine,
                kernel.as_mut(),
                &shared.sampler,
                &shared.golden,
            )
        }));
        let latency = started.elapsed();

        // Never send while holding the slot lock: the collector both
        // drains the channel and takes this lock in its watchdog scan.
        let still_owner = {
            let mut s = slot.lock().expect("slot lock");
            if s.generation == my_generation {
                s.current = None;
                true
            } else {
                false
            }
        };
        if !still_owner {
            // The watchdog recorded this injection as a hang and moved
            // on; our late result would be a duplicate.
            return;
        }

        match outcome {
            Ok(Ok(record)) => {
                if tx.send(Event::Done { record, latency }).is_err() {
                    return;
                }
            }
            Ok(Err(error)) => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = tx.send(Event::Failed { error });
                break;
            }
            Err(payload) => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = tx.send(Event::Failed {
                    error: AccelError::WorkerPanic(panic_message(payload)),
                });
                break;
            }
        }
    }
    let _ = tx.send(Event::Exited);
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Compares outputs element-wise, mapping each mismatch to the kernel's
/// *logical* coordinate space (e.g. LavaMD's box grid), which is what the
/// paper's spatial-locality metric operates on.
pub fn compare_with_logical_coords(
    golden: &[f64],
    observed: &[f64],
    kernel: &(dyn Workload + Send),
) -> ErrorReport {
    let mut mismatches = Vec::new();
    for (i, (&g, &o)) in golden.iter().zip(observed.iter()).enumerate() {
        let matches = (g == o) || (g.is_nan() && o.is_nan());
        if !matches {
            mismatches.push(Mismatch::new(kernel.error_coord(i), o, g));
        }
    }
    ErrorReport::new(kernel.logical_shape(), mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use radcrit_accel::config::DeviceConfig;

    fn small_campaign(device: DeviceConfig) -> Campaign {
        Campaign::new(device, KernelSpec::Dgemm { n: 32 }, 40, 7).with_workers(2)
    }

    #[test]
    fn campaign_produces_one_record_per_injection() {
        let result = small_campaign(DeviceConfig::kepler_k40()).run().unwrap();
        assert_eq!(result.records.len(), 40);
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(result.output_len, 32 * 32);
        assert!(result.sigma_total > 0.0);
        assert!(result.is_complete());
        assert_eq!(result.telemetry.completed, 40);
        assert_eq!(result.telemetry.replayed, 0);
        assert_eq!(result.telemetry.latency.count(), 40);
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let base = small_campaign(DeviceConfig::kepler_k40());
        let one = base.clone().with_workers(1).run().unwrap();
        let four = base.with_workers(4).run().unwrap();
        assert_eq!(one.records, four.records);
    }

    #[test]
    fn campaign_observes_all_outcome_kinds_eventually() {
        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            300,
            11,
        )
        .with_workers(4);
        let result = c.run().unwrap();
        let tags: std::collections::HashSet<_> =
            result.records.iter().map(|r| r.outcome.tag()).collect();
        assert!(tags.contains("SDC"), "tags: {tags:?}");
        assert!(
            tags.contains("CRASH") || tags.contains("HANG"),
            "tags: {tags:?}"
        );
        assert!(tags.contains("MASKED"), "tags: {tags:?}");
    }

    #[test]
    fn logical_coordinates_used_for_lavamd() {
        let c = Campaign::new(
            DeviceConfig::xeon_phi_3120a(),
            KernelSpec::LavaMd {
                grid: 3,
                particles: 6,
            },
            60,
            3,
        )
        .with_workers(2);
        let result = c.run().unwrap();
        for r in &result.records {
            if let InjectionOutcome::Sdc(d) = &r.outcome {
                // Logical shape is the 3x3x3 box grid.
                assert!(
                    d.criticality.incorrect_elements >= 1,
                    "SDC must have mismatches"
                );
            }
        }
    }

    #[test]
    fn a_deadline_does_not_disturb_a_healthy_campaign() {
        let base = small_campaign(DeviceConfig::kepler_k40());
        let plain = base.clone().run().unwrap();
        let watched = base.with_deadline(Duration::from_secs(60)).run().unwrap();
        assert_eq!(plain.records, watched.records);
        assert_eq!(watched.telemetry.watchdog_hangs, 0);
    }

    #[test]
    fn budget_produces_a_resumable_partial_result() {
        let c = small_campaign(DeviceConfig::kepler_k40());
        let partial = c
            .run_with(&RunOptions {
                budget: Some(10),
                ..RunOptions::default()
            })
            .unwrap();
        assert_eq!(partial.records.len(), 10);
        assert!(!partial.is_complete());
        let full = c.run().unwrap();
        // The partial run's records are a subset of the full run's.
        for r in &partial.records {
            assert_eq!(r, &full.records[r.index]);
        }
    }
}
