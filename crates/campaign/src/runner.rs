//! The campaign runner: golden run, cross sections, parallel injection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::engine::Engine;
use radcrit_accel::error::AccelError;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_core::mismatch::Mismatch;
use radcrit_core::report::ErrorReport;
use radcrit_faults::sampler::{FaultSampler, InjectionPlan};
use radcrit_kernels::Workload;

use crate::config::Campaign;
use crate::outcome::{InjectionOutcome, InjectionRecord, SdcDetail};
use crate::summary::CampaignSummary;

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The campaign that was run.
    pub campaign: Campaign,
    /// Golden execution profile.
    pub profile: ExecutionProfile,
    /// Total cross-section in byte-equivalents (drives the FIT scale).
    pub sigma_total: f64,
    /// Raw output length in elements.
    pub output_len: usize,
    /// One record per injection, in index order.
    pub records: Vec<InjectionRecord>,
}

impl CampaignResult {
    /// Builds the aggregate summary (FIT break-downs, scatter series,
    /// outcome counts).
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary::from_result(self)
    }
}

impl Campaign {
    /// Runs the campaign: one golden execution, then `injections`
    /// fault-injected executions distributed over worker threads.
    ///
    /// Results are deterministic for a given `(campaign, seed)` pair
    /// regardless of the worker count: injection `i` always uses its own
    /// seeded RNG stream.
    ///
    /// # Errors
    ///
    /// Propagates kernel construction and execution errors.
    pub fn run(&self) -> Result<CampaignResult, AccelError> {
        let engine = Engine::new(self.device.clone());

        // Golden execution: output, profile, cross sections.
        let mut golden_kernel = self.kernel.build(self.seed)?;
        let golden = engine.golden(golden_kernel.as_mut())?;
        let sampler = FaultSampler::new(&self.device, &golden.profile);
        let sigma_total = sampler.table().total();
        let golden_output = golden.output;

        let next = AtomicUsize::new(0);
        let failures: Mutex<Option<AccelError>> = Mutex::new(None);
        let records: Mutex<Vec<InjectionRecord>> = Mutex::new(Vec::with_capacity(self.injections));

        let workers = self.effective_workers().min(self.injections.max(1));
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| {
                    let mut kernel = match self.kernel.build(self.seed) {
                        Ok(k) => k,
                        Err(e) => {
                            *failures.lock().expect("poisoned") = Some(e);
                            return;
                        }
                    };
                    let engine = Engine::new(self.device.clone());
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= self.injections {
                            break;
                        }
                        match self.run_one(
                            i,
                            &engine,
                            kernel.as_mut(),
                            &sampler,
                            &golden_output,
                        ) {
                            Ok(record) => local.push(record),
                            Err(e) => {
                                *failures.lock().expect("poisoned") = Some(e);
                                return;
                            }
                        }
                    }
                    records.lock().expect("poisoned").extend(local);
                });
            }
        })
        .expect("campaign worker panicked");

        if let Some(e) = failures.into_inner().expect("poisoned") {
            return Err(e);
        }
        let mut records = records.into_inner().expect("poisoned");
        records.sort_by_key(|r| r.index);

        Ok(CampaignResult {
            campaign: self.clone(),
            profile: golden.profile,
            sigma_total,
            output_len: golden_output.len(),
            records,
        })
    }

    fn run_one(
        &self,
        index: usize,
        engine: &Engine,
        kernel: &mut (dyn Workload + Send),
        sampler: &FaultSampler,
        golden: &[f64],
    ) -> Result<InjectionRecord, AccelError> {
        // A per-injection RNG stream: reproducible independent of worker
        // scheduling.
        let stream = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64);
        let mut rng = StdRng::seed_from_u64(stream);

        let plan = sampler.sample(&mut rng);
        match plan {
            InjectionPlan::Crash => Ok(InjectionRecord {
                index,
                site: "fatal".into(),
                at_tile: None,
                delivered: true,
                outcome: InjectionOutcome::Crash,
            }),
            InjectionPlan::Hang => Ok(InjectionRecord {
                index,
                site: "fatal".into(),
                at_tile: None,
                delivered: true,
                outcome: InjectionOutcome::Hang,
            }),
            InjectionPlan::Strike(spec) => {
                let run = engine.run(kernel, &spec, &mut rng)?;
                let report = compare_with_logical_coords(golden, &run.output, kernel);
                let outcome = if report.is_sdc() {
                    let criticality = report.criticality(&self.tolerance, &self.classifier);
                    InjectionOutcome::Sdc(SdcDetail {
                        criticality,
                        output_len: golden.len(),
                    })
                } else {
                    InjectionOutcome::Masked
                };
                Ok(InjectionRecord {
                    index,
                    site: spec.target.site_name().to_owned(),
                    at_tile: Some(spec.at_tile),
                    delivered: run.strike_delivered,
                    outcome,
                })
            }
        }
    }
}

/// Compares outputs element-wise, mapping each mismatch to the kernel's
/// *logical* coordinate space (e.g. LavaMD's box grid), which is what the
/// paper's spatial-locality metric operates on.
pub fn compare_with_logical_coords(
    golden: &[f64],
    observed: &[f64],
    kernel: &(dyn Workload + Send),
) -> ErrorReport {
    let mut mismatches = Vec::new();
    for (i, (&g, &o)) in golden.iter().zip(observed.iter()).enumerate() {
        let matches = (g == o) || (g.is_nan() && o.is_nan());
        if !matches {
            mismatches.push(Mismatch::new(kernel.error_coord(i), o, g));
        }
    }
    ErrorReport::new(kernel.logical_shape(), mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use radcrit_accel::config::DeviceConfig;

    fn small_campaign(device: DeviceConfig) -> Campaign {
        Campaign::new(device, KernelSpec::Dgemm { n: 32 }, 40, 7).with_workers(2)
    }

    #[test]
    fn campaign_produces_one_record_per_injection() {
        let result = small_campaign(DeviceConfig::kepler_k40()).run().unwrap();
        assert_eq!(result.records.len(), 40);
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(result.output_len, 32 * 32);
        assert!(result.sigma_total > 0.0);
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let base = small_campaign(DeviceConfig::kepler_k40());
        let one = base.clone().with_workers(1).run().unwrap();
        let four = base.with_workers(4).run().unwrap();
        assert_eq!(one.records, four.records);
    }

    #[test]
    fn campaign_observes_all_outcome_kinds_eventually() {
        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            300,
            11,
        )
        .with_workers(4);
        let result = c.run().unwrap();
        let tags: std::collections::HashSet<_> =
            result.records.iter().map(|r| r.outcome.tag()).collect();
        assert!(tags.contains("SDC"), "tags: {tags:?}");
        assert!(tags.contains("CRASH") || tags.contains("HANG"), "tags: {tags:?}");
        assert!(tags.contains("MASKED"), "tags: {tags:?}");
    }

    #[test]
    fn logical_coordinates_used_for_lavamd() {
        let c = Campaign::new(
            DeviceConfig::xeon_phi_3120a(),
            KernelSpec::LavaMd { grid: 3, particles: 6 },
            60,
            3,
        )
        .with_workers(2);
        let result = c.run().unwrap();
        for r in &result.records {
            if let InjectionOutcome::Sdc(d) = &r.outcome {
                // Logical shape is the 3x3x3 box grid.
                assert!(
                    d.criticality.incorrect_elements >= 1,
                    "SDC must have mismatches"
                );
            }
        }
    }
}
