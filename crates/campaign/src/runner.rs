//! The campaign runner: golden run, cross sections, parallel injection —
//! hardened with a hang watchdog, panic capture, streaming checkpoints
//! and run telemetry.
//!
//! ## Execution model
//!
//! Worker threads claim injection indices from a shared cursor and send
//! finished [`InjectionRecord`]s over a bounded channel to the collector
//! (the calling thread), which appends them to the optional JSONL
//! checkpoint, feeds the [`Telemetry`] accumulator, and prints the
//! periodic progress line. Injection `i` always uses its own seeded RNG
//! stream, so records are identical for any worker count — which is what
//! lets [`Campaign::resume`] replay a killed campaign's checkpoint and
//! finish with a bit-identical summary.
//!
//! ## Failure containment
//!
//! * A panic inside an injection is caught ([`std::panic::catch_unwind`])
//!   and surfaces as [`AccelError::WorkerPanic`] instead of aborting.
//! * The first worker error wins and stops further dispatch; later
//!   errors are dropped rather than overwriting it.
//! * With [`Campaign::with_deadline`] armed, an injection still running
//!   past the deadline is recorded as [`InjectionOutcome::Hang`]
//!   (site `"watchdog"`), its worker is abandoned, and a replacement
//!   worker keeps the campaign going. An abandoned worker that
//!   eventually wakes up discards its stale result via a generation
//!   check, so the synthesized record is never duplicated.
//!
//! ## Observability
//!
//! With [`RunOptions::events_out`] set, every injection contributes a
//! block of structured events — lifecycle spans, the sampled strike, its
//! resolution against live machine state, the output diff, and a closing
//! `provenance` record joining all three. Events carry only *logical*
//! data (indices, sites, bits, classes — never wall-clock), and the
//! [`radcrit_obs::EventWriter`] reorders worker-completion-order blocks
//! back into injection-index order, so a fixed-seed campaign writes a
//! byte-identical stream regardless of worker count. On resume, indices
//! already present in the stream are skipped and checkpoint-replayed
//! indices missing from it get a synthetic `replay` marker — the stream
//! never duplicates and never loses an index across kill/resume cycles.
//! Wall-clock quantities (per-phase engine timings, injection latency,
//! outcome counters) go to the [`radcrit_obs::MetricsRegistry`] instead
//! and are written to [`RunOptions::metrics_out`] as JSON plus a
//! Prometheus text rendering.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::engine::{Engine, RunScratch, StrikeResolution, WarmState};
use radcrit_accel::error::AccelError;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_accel::snapshot::{SnapshotPolicy, SnapshotSet};
use radcrit_accel::trace::ExecutionTrace;
use radcrit_core::dirty::DirtyRegion;
use radcrit_core::locality::SpatialClass;
use radcrit_core::mismatch::Mismatch;
use radcrit_core::report::ErrorReport;
use radcrit_faults::sampler::{FaultSampler, InjectionPlan};
use radcrit_kernels::Workload;
use radcrit_obs::profile::{self as phase_profile, PhaseId, ProfileCollector};
use radcrit_obs::{
    AnalyticSample, CriticalityAggregator, Event as ObsEvent, EventBuffer, EventWriter, FieldValue,
    MetricsRegistry, ProvenanceRecord, Span, TraceContext, TraceRecorder,
};

use crate::checkpoint::CheckpointWriter;
use crate::config::Campaign;
use crate::golden::{GoldenCache, GoldenEntry, GoldenKey};
use crate::outcome::{InjectionOutcome, InjectionRecord, SdcDetail};
use crate::summary::CampaignSummary;
use crate::telemetry::{Telemetry, TelemetrySnapshot};

/// The site name of hang records synthesized by the watchdog.
pub const WATCHDOG_SITE: &str = "watchdog";

/// Per-invocation knobs of [`Campaign::run_with`] — how a run executes,
/// as opposed to the scientific configuration living on [`Campaign`].
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stream finished records to this JSONL checkpoint file.
    pub checkpoint: Option<PathBuf>,
    /// Replay completed indices from an existing checkpoint before
    /// running (no-op when the file does not exist yet).
    pub resume: bool,
    /// Print a progress line to stderr at this interval.
    pub progress: Option<Duration>,
    /// Stop after producing this many new records, leaving the campaign
    /// resumable — primarily a deterministic stand-in for "killed
    /// mid-run" in tests and a way to slice very long campaigns.
    pub budget: Option<usize>,
    /// Write a one-line JSON metrics snapshot here at end of run, plus a
    /// Prometheus text rendering at the same path with its extension
    /// replaced by `.prom`.
    pub metrics_out: Option<PathBuf>,
    /// Stream structured JSONL events here, in injection-index order.
    pub events_out: Option<PathBuf>,
    /// Detail-event sampling stride: lifecycle detail events (spans,
    /// strike, resolution, diff) are collected for injections whose
    /// index is a multiple of this stride; `0` and `1` both mean every
    /// injection. The `provenance` event is emitted for every injection
    /// regardless, so the stream always covers all indices.
    pub events_sample: u64,
    /// Share golden executions across runs through this cache: a hit
    /// skips the golden phase entirely (the most expensive part of a
    /// short campaign), a miss computes and publishes it. Hit/miss
    /// counts surface as `radcrit_golden_cache_{hits,misses}_total`
    /// when metrics are enabled. See [`crate::golden`].
    pub golden_cache: Option<Arc<GoldenCache>>,
    /// Cooperative cancellation: once this flag turns `true` the run
    /// stops dispatching new injections and returns a resumable partial
    /// [`CampaignResult`], exactly like budget exhaustion.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Record run metrics into this shared external registry (e.g. a
    /// daemon-wide one) instead of a fresh private registry. Implies
    /// metrics collection even without [`RunOptions::metrics_out`].
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Tiles between golden-prefix snapshots for differential injection
    /// execution; `0` derives the stride from the snapshot byte budget.
    /// See [`radcrit_accel::snapshot::SnapshotPolicy`].
    pub snapshot_stride: usize,
    /// Byte budget for one kernel's snapshot set; `0` means
    /// [`radcrit_accel::DEFAULT_SNAPSHOT_BYTES`].
    pub snapshot_max_bytes: usize,
    /// Escape hatch: force every injection to re-execute the kernel from
    /// tile 0 exactly as before differential execution existed — no
    /// golden-prefix snapshots are captured, resumed, or cached, and the
    /// output diff scans the whole buffer. Science is bit-identical
    /// either way; this exists to measure the speedup and to rule the
    /// optimization out when debugging.
    pub full_execution: bool,
    /// Write a Chrome trace-event JSON timeline of the run's phases
    /// (golden execution, per-injection umbrella, engine execution,
    /// output comparison) here at end of run — loadable in
    /// `chrome://tracing` / Perfetto. Wall-clock data: lives beside the
    /// metrics, never in the deterministic event stream.
    pub trace_out: Option<PathBuf>,
    /// Disable the prefix-sharing batch scheduler: run differential
    /// injections in plan order, restoring a snapshot per injection.
    /// Outcomes, events and summary are bit-identical either way; this
    /// exists to measure the batching speedup and to rule the scheduler
    /// out when debugging. Ignored under [`RunOptions::full_execution`]
    /// (a full-execution run has no snapshots to batch over).
    pub no_batch: bool,
    /// Write the merged phase-profile tree here as one-line JSON at end
    /// of run (see [`radcrit_obs::profile`]). Setting this enables the
    /// hierarchical profiler on every worker; leaving it (and
    /// [`RunOptions::profile`]) unset keeps the profiler zero-cost.
    /// Wall-clock data: lives beside the metrics and trace, never in
    /// the deterministic event stream.
    pub profile_out: Option<PathBuf>,
    /// Merge phase profiles into this shared external collector (e.g. a
    /// daemon-wide one). Implies profiling even without
    /// [`RunOptions::profile_out`].
    pub profile: Option<Arc<ProfileCollector>>,
    /// Run only injection indices in `start..end` of the campaign's
    /// `0..injections` range — one shard of a federated campaign. The
    /// golden execution, sampler table and per-index RNG streams are
    /// those of the *whole* campaign (a shard's records are bit-identical
    /// to the same indices of a one-shot run), and the `run_begin`
    /// header still declares the full campaign size so shard event
    /// streams fold into one aggregate with the campaign's context.
    /// `None` runs the whole range.
    pub shard: Option<(usize, usize)>,
    /// Pin SIMD dispatch to the scalar reference executor for the whole
    /// run (the `--scalar` CLI flag / job-spec `force_scalar`). Science
    /// is bit-identical either way — the scalar path is the identity
    /// reference the vectorized paths are property-tested against; this
    /// exists to measure the SIMD speedup and to rule vectorization out
    /// when debugging. The pin is process-wide while the run lasts, so
    /// worker threads inherit it.
    pub force_scalar: bool,
    /// Distributed-trace context (campaign id, shard ordinal, parent
    /// span) stamped onto every recorded span and the trace metadata —
    /// set by a daemon running one shard of a federated campaign so the
    /// coordinator can merge worker traces into one fleet timeline.
    /// `None` leaves the emitted trace byte-identical to before the
    /// context existed.
    pub trace_context: Option<TraceContext>,
    /// Measure trace timestamps from this shared instant instead of the
    /// recorder's creation time, so all of a daemon's job traces live on
    /// one process-wide timeline the coordinator can rebase.
    pub trace_epoch: Option<Instant>,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignResult {
    /// The campaign that was run.
    pub campaign: Campaign,
    /// Golden execution profile.
    pub profile: ExecutionProfile,
    /// Total cross-section in byte-equivalents (drives the FIT scale).
    pub sigma_total: f64,
    /// Raw output length in elements.
    pub output_len: usize,
    /// One record per injection, in index order (fewer than
    /// `campaign.injections` when a budget cut the run short).
    pub records: Vec<InjectionRecord>,
    /// How the run went: throughput, latency, watchdog activity.
    pub telemetry: TelemetrySnapshot,
    /// The shard range this run covered ([`RunOptions::shard`]), when it
    /// was a shard of a federated campaign.
    pub shard: Option<(usize, usize)>,
}

impl CampaignResult {
    /// Builds the aggregate summary (FIT break-downs, scatter series,
    /// outcome counts).
    pub fn summary(&self) -> CampaignSummary {
        CampaignSummary::from_result(self)
    }

    /// Whether every injection the run was asked for has a record — all
    /// of `0..injections`, or the shard range for a shard run.
    pub fn is_complete(&self) -> bool {
        let asked = match self.shard {
            Some((start, end)) => end - start,
            None => self.campaign.injections,
        };
        self.records.len() == asked
    }
}

/// State shared between the collector and the worker threads.
struct Shared {
    campaign: Campaign,
    sampler: FaultSampler,
    golden: Vec<f64>,
    /// Golden-prefix snapshots injections resume from; `None` under
    /// [`RunOptions::full_execution`].
    snapshots: Option<Arc<SnapshotSet>>,
    /// Indices still to run (already filtered against the checkpoint).
    pending: Vec<usize>,
    /// Cursor into `pending`.
    next: AtomicUsize,
    /// Set on the first error; workers stop claiming new indices.
    stop: AtomicBool,
    /// Metrics registry shared with worker engines, when enabled.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Detail-event sampling stride; `None` disables event collection.
    events_sample: Option<u64>,
    /// Phase-timeline recorder, when [`RunOptions::trace_out`] is set.
    trace: Option<Arc<TraceRecorder>>,
    /// Bucket accounting of the batch scheduler; `Some` exactly when
    /// `pending` was sorted into snapshot buckets.
    buckets: Option<BucketCounters>,
    /// Phase-profile merge point, when profiling is enabled. Workers
    /// enable their thread-local accumulator on entry and drain into
    /// this collector once, at exit.
    profile: Option<Arc<ProfileCollector>>,
}

/// Live counters of the batch scheduler, shared between workers (who
/// bump them) and the collector (whose progress line reports them).
#[derive(Default)]
struct BucketCounters {
    /// Warm snapshot restores — one per (worker, bucket) pair.
    restores: AtomicU64,
    /// Forked injection executions off a warm bucket.
    forks: AtomicU64,
}

/// One warm bucket owned by a worker: golden machine state restored from
/// the bucket's snapshot and advanced to the last fork's strike tile,
/// plus the bucket's precomputed golden suffix spans (the compare-setup
/// half of the amortization).
struct WarmBucket {
    state: WarmState,
    /// Golden output-store spans from the bucket's resume tile on.
    spans: Vec<(usize, usize)>,
    forks: u64,
    started: Instant,
}

/// Batch-scheduler context threaded through one worker's injections.
struct BatchCtx<'a> {
    /// `Some` when the batch scheduler is on (so `pending` is in bucket
    /// order and strikes with a usable snapshot fork off warm state).
    counters: Option<&'a BucketCounters>,
    metrics: Option<&'a MetricsRegistry>,
    warm: Option<WarmBucket>,
}

/// Ends a bucket: records its wall-clock span on the worker's timeline
/// and hands the warm state back for allocation reuse by the next
/// bucket's restore.
fn close_bucket(bucket: WarmBucket, trace: Option<&TraceRecorder>, tid: u64) -> WarmState {
    if let Some(tr) = trace {
        tr.record(
            "bucket",
            tid,
            bucket.started,
            &[
                ("resume", bucket.state.resume_tile() as u64),
                ("forks", bucket.forks),
            ],
        );
    }
    bucket.state
}

/// The per-injection RNG stream seed — a fixed function of `(campaign
/// seed, index)`, so records are reproducible independent of worker
/// scheduling and of the batch scheduler's execution order.
fn stream_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index as u64)
}

/// The progress line's `(restores, forks)` pair, when batching is on.
fn bucket_stats(shared: &Shared) -> Option<(u64, u64)> {
    shared.buckets.as_ref().map(|b| {
        (
            b.restores.load(Ordering::Relaxed),
            b.forks.load(Ordering::Relaxed),
        )
    })
}

/// One worker's watchdog slot. The generation counter arbitrates between
/// a worker finishing late and the watchdog having already given up on
/// it: whoever still holds the generation owns the injection's record.
struct Slot {
    generation: u64,
    /// The injection being executed and when it started.
    current: Option<(usize, Instant)>,
    retired: bool,
}

enum Event {
    Done {
        record: InjectionRecord,
        latency: Duration,
        /// The injection's structured events (empty when disabled).
        events: Vec<ObsEvent>,
    },
    Failed {
        error: AccelError,
    },
    Exited,
}

/// Per-injection observability context handed down to
/// [`Campaign::run_one`]: the event sink plus whether this injection is
/// on the detail-sampling stride.
struct ObsCtx<'a> {
    buf: &'a mut EventBuffer,
    detail: bool,
    /// Phase-timeline recorder (wall-clock, never in the event stream).
    trace: Option<&'a TraceRecorder>,
    /// This worker's timeline lane.
    tid: u64,
}

impl Campaign {
    /// Runs the campaign: one golden execution, then `injections`
    /// fault-injected executions distributed over worker threads.
    ///
    /// Results are deterministic for a given `(campaign, seed)` pair
    /// regardless of the worker count: injection `i` always uses its own
    /// seeded RNG stream.
    ///
    /// # Errors
    ///
    /// Propagates kernel construction and execution errors; a panicking
    /// injection returns [`AccelError::WorkerPanic`].
    pub fn run(&self) -> Result<CampaignResult, AccelError> {
        self.run_with(&RunOptions::default())
    }

    /// Resumes a campaign from the JSONL checkpoint at `path`: completed
    /// indices are replayed from the file, the rest are run, and new
    /// records are appended to the same file. A missing file starts a
    /// fresh checkpointed run, so calling this in a retry loop is safe.
    ///
    /// # Errors
    ///
    /// [`AccelError::Corrupt`] when the checkpoint belongs to a
    /// different campaign or is damaged beyond its final line; plus
    /// everything [`Campaign::run`] can return.
    pub fn resume<P: AsRef<Path>>(&self, path: P) -> Result<CampaignResult, AccelError> {
        self.run_with(&RunOptions {
            checkpoint: Some(path.as_ref().to_owned()),
            resume: true,
            ..RunOptions::default()
        })
    }

    /// [`Campaign::run`] with explicit [`RunOptions`].
    ///
    /// # Errors
    ///
    /// As [`Campaign::run`], plus [`AccelError::Corrupt`] for checkpoint
    /// I/O and validation failures.
    pub fn run_with(&self, options: &RunOptions) -> Result<CampaignResult, AccelError> {
        // Shard bounds are validated before any expensive work: an
        // empty or out-of-range shard is a caller bug, not a campaign.
        let (shard_start, shard_end) = match options.shard {
            Some((start, end)) => {
                if start >= end || end > self.injections {
                    return Err(AccelError::Corrupt(format!(
                        "shard {start}..{end} out of range for {} injections",
                        self.injections
                    )));
                }
                (start, end)
            }
            None => (0, self.injections),
        };
        // The scalar pin must precede everything that touches an
        // executor-dispatched path (golden execution included). The
        // override is process-wide, so worker threads inherit it.
        let _scalar_pin = radcrit_core::exec::scalar_scope_if(options.force_scalar);
        let metrics = options.metrics.clone().or_else(|| {
            options
                .metrics_out
                .as_ref()
                .map(|_| Arc::new(MetricsRegistry::new()))
        });
        if let Some(m) = &metrics {
            m.gauge_set(
                "radcrit_simd_isa",
                &[("isa", radcrit_core::exec::active().name())],
                1.0,
            );
        }
        let mut engine = Engine::new(self.device.clone());
        if let Some(m) = &metrics {
            engine = engine.with_metrics(Arc::clone(m));
        }
        // Phase profiling: per-thread accumulators merged into one
        // collector. The collector thread (this one) profiles the golden
        // phase and checkpoint appends; workers profile execution and
        // compare. Disabled, every scope is a flag check.
        let profiler = options.profile.clone().or_else(|| {
            options
                .profile_out
                .as_ref()
                .map(|_| Arc::new(ProfileCollector::new()))
        });
        if profiler.is_some() {
            phase_profile::enable_thread();
        }

        // Golden execution: output, profile, cross sections — and, when
        // differential execution is on (the default), the golden-prefix
        // snapshot set injections resume from. With a shared cache
        // attached, runs agreeing on (kernel, device, seed) reuse one
        // golden execution instead of recomputing it; cached entries
        // carry their snapshot set, so later jobs resume from snapshots
        // they never captured.
        let differential = !options.full_execution;
        let policy = SnapshotPolicy {
            stride: options.snapshot_stride,
            max_bytes: options.snapshot_max_bytes,
        };
        // Golden phase product: output, profile and (differential mode
        // only) the snapshot set injections resume from.
        type GoldenProduct = (Vec<f64>, ExecutionProfile, Option<Arc<SnapshotSet>>);
        let compute_golden = |engine: &Engine,
                              kernel: &mut (dyn Workload + Send)|
         -> Result<GoldenProduct, AccelError> {
            if differential {
                let (golden, set) = engine.golden_snapshotted(kernel, &policy)?;
                Ok((golden.output, golden.profile, Some(Arc::new(set))))
            } else {
                let golden = engine.golden(kernel)?;
                Ok((golden.output, golden.profile, None))
            }
        };
        let trace = options.trace_out.as_ref().map(|_| {
            let rec = match options.trace_epoch {
                Some(epoch) => TraceRecorder::with_epoch(epoch),
                None => TraceRecorder::new(),
            };
            if let Some(ctx) = &options.trace_context {
                rec.set_context(ctx.clone());
            }
            Arc::new(rec)
        });
        let golden_started = Instant::now();
        let golden_scope = phase_profile::phase(PhaseId::Golden);
        let mut golden_kernel = self.kernel.build(self.seed)?;
        let (golden_output, golden_profile, snapshots) = match &options.golden_cache {
            Some(cache) => {
                let key = GoldenKey::for_campaign(self);
                // A hit computed without snapshots cannot serve a
                // differential run; refresh it (the recompute is exactly
                // what the cache would have saved, so mirror it as a
                // miss).
                let usable = cache
                    .get(&key)
                    .filter(|hit| !differential || hit.snapshots.is_some());
                if let Some(hit) = usable {
                    if let Some(m) = &metrics {
                        m.counter_add("radcrit_golden_cache_hits_total", &[], 1);
                    }
                    (
                        hit.output.clone(),
                        hit.profile.clone(),
                        hit.snapshots.clone(),
                    )
                } else {
                    if let Some(m) = &metrics {
                        m.counter_add("radcrit_golden_cache_misses_total", &[], 1);
                    }
                    let (output, profile, snapshots) =
                        compute_golden(&engine, golden_kernel.as_mut())?;
                    let entry = cache.insert(
                        key,
                        GoldenEntry {
                            output,
                            profile,
                            snapshots,
                        },
                    );
                    (
                        entry.output.clone(),
                        entry.profile.clone(),
                        entry.snapshots.clone(),
                    )
                }
            }
            None => compute_golden(&engine, golden_kernel.as_mut())?,
        };
        drop(golden_scope);
        if let Some(tr) = &trace {
            tr.record("golden", 0, golden_started, &[]);
        }
        let sampler = FaultSampler::new(&self.device, &golden_profile);
        let sigma_total = sampler.table().total();
        // The live analytics fold: the same aggregator that powers the
        // daemon's analytics endpoints also feeds the progress line, so
        // there is exactly one accumulation path from outcome to FIT.
        let mut analytics = CriticalityAggregator::with_context(
            self.kernel.name(),
            &self.kernel.input_label(),
            &self.device.kind().to_string(),
            self.injections as u64,
            sigma_total,
        );

        // Checkpoint: replay what a previous run already finished.
        let mut writer = None;
        let mut records: Vec<InjectionRecord> = Vec::new();
        if let Some(path) = &options.checkpoint {
            if options.resume {
                let (w, replayed) = CheckpointWriter::resume(path, self)?;
                writer = Some(w);
                records = replayed;
            } else {
                writer = Some(CheckpointWriter::create(path, self)?);
            }
        }
        let done: HashSet<usize> = records.iter().map(|r| r.index).collect();
        let mut pending: Vec<usize> = (shard_start..shard_end)
            .filter(|i| !done.contains(i))
            .collect();
        let target = options
            .budget
            .map_or(pending.len(), |b| b.min(pending.len()));
        pending.truncate(target);

        // Prefix-sharing batch scheduler: sort the remaining plan into
        // buckets keyed by resume snapshot, then strike tile, so one
        // warm restore serves a whole bucket of forks. Each index's plan
        // is pre-sampled here with its own RNG stream — exactly the draw
        // the executing worker repeats — so sorting changes *execution
        // order only*: record content, the event stream and the summary
        // stay bit-identical (the event writer reorders by index, the
        // checkpoint replay tolerates any completion order). Fatal plans
        // and strikes before the first snapshot have no bucket and keep
        // index order at the end of the plan. Budget truncation happens
        // first, so a budgeted run completes the same index subset
        // batched or not.
        let batched =
            differential && !options.no_batch && snapshots.as_ref().is_some_and(|s| !s.is_empty());
        if batched {
            let snaps = snapshots.as_ref().expect("batched implies snapshots");
            pending.sort_by_cached_key(|&index| {
                let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, index));
                match sampler.sample(&mut rng) {
                    InjectionPlan::Strike(spec) => match snaps.resume_tile(spec.at_tile) {
                        Some(resume) => (0u8, resume, spec.at_tile, index),
                        None => (1, 0, 0, index),
                    },
                    _ => (1, 0, 0, index),
                }
            });
        }

        // Event stream: fresh runs start with a `run_begin` header;
        // resumed runs reopen the file, truncate a torn tail, and learn
        // which injection indices the stream already covers.
        let mut events: Option<(EventWriter, PathBuf)> = None;
        let mut events_have: HashSet<u64> = HashSet::new();
        if let Some(path) = &options.events_out {
            let sample = options.events_sample.max(1);
            if options.resume {
                let (w, have) =
                    EventWriter::resume_range(path, shard_start as u64, shard_end as u64, sample)
                        .map_err(|e| events_corrupt(path, e))?;
                events_have = have;
                events = Some((w, path.clone()));
            } else {
                let mut w =
                    EventWriter::create_range(path, shard_start as u64, shard_end as u64, sample)
                        .map_err(|e| events_corrupt(path, e))?;
                w.emit_top(&run_begin_event(self, golden_kernel.as_ref(), sigma_total))
                    .map_err(|e| events_corrupt(path, e))?;
                events = Some((w, path.clone()));
            }
        }
        // Checkpoint-replayed indices whose events never reached the
        // stream (the checkpoint flushes per record, the event writer
        // buffers — a kill can separate them) get a synthetic `replay`
        // marker so the stream still covers every finished index.
        if let Some((w, path)) = events.as_mut() {
            for r in &records {
                if !events_have.contains(&(r.index as u64)) {
                    w.submit(r.index as u64, &[replay_event(r)])
                        .map_err(|e| events_corrupt(path, e))?;
                }
            }
        }

        let mut telemetry = Telemetry::new();
        telemetry.note_replayed(records.len());
        for r in &records {
            analytics.fold_sample(&analytic_sample(r));
        }
        if let Some(m) = &metrics {
            m.counter_add("radcrit_campaign_replayed_total", &[], records.len() as u64);
        }

        let workers = self.effective_workers().min(target.max(1));
        let shared = Arc::new(Shared {
            campaign: self.clone(),
            sampler,
            golden: golden_output.clone(),
            snapshots,
            pending,
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            metrics: metrics.clone(),
            events_sample: options
                .events_out
                .as_ref()
                .map(|_| options.events_sample.max(1)),
            trace: trace.clone(),
            buckets: batched.then(BucketCounters::default),
            profile: profiler.clone(),
        });

        // The collector keeps its own sender alive so the watchdog can
        // hand it to replacement workers; termination is tracked via the
        // `active` count rather than channel disconnection.
        let (tx, rx) = mpsc::sync_channel::<Event>(workers * 2 + 4);
        let mut slots: Vec<Arc<Mutex<Slot>>> = Vec::new();
        let mut active = 0usize;
        // Worker timeline ids: 0 is the collector's lane, workers (and
        // watchdog replacements) get 1, 2, … in spawn order.
        let mut next_tid = 1u64;
        if target > 0 {
            for _ in 0..workers {
                slots.push(spawn_worker(&shared, &tx, next_tid));
                next_tid += 1;
                active += 1;
            }
        }

        // The collector tick bounds both watchdog reaction time and
        // progress-line cadence.
        let mut tick = Duration::from_millis(200);
        if let Some(deadline) = self.deadline {
            tick = tick.min(deadline / 4);
        }
        if let Some(progress) = options.progress {
            tick = tick.min(progress);
        }
        let tick = tick.max(Duration::from_millis(5));

        let mut produced = 0usize;
        let mut first_error: Option<AccelError> = None;
        let mut last_progress = Instant::now();

        while active > 0 && produced < target {
            if let Some(cancel) = &options.cancel {
                if cancel.load(Ordering::SeqCst) {
                    // Stop dispatching; what was not collected is not
                    // checkpointed either, so a later resume replays it.
                    shared.stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
            match rx.recv_timeout(tick) {
                Ok(Event::Done {
                    record,
                    latency,
                    events: block,
                }) => {
                    telemetry.record(&record.outcome, latency, false);
                    analytics.fold_sample(&analytic_sample(&record));
                    if let Some(m) = &metrics {
                        m.counter_add(
                            "radcrit_campaign_outcomes_total",
                            &[("outcome", record.outcome.tag())],
                            1,
                        );
                        m.observe_duration("radcrit_injection_latency", &[], latency);
                    }
                    if let Some(w) = writer.as_mut() {
                        let _scope = phase_profile::phase(PhaseId::Checkpoint);
                        if let Err(e) = w.append(&record) {
                            shared.stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                    if let Some((w, path)) = events.as_mut() {
                        // Indices the stream already covers (events ahead
                        // of the checkpoint after a kill) are skipped —
                        // never duplicated.
                        if !events_have.contains(&(record.index as u64)) {
                            if let Err(e) = w.submit(record.index as u64, &block) {
                                shared.stop.store(true, Ordering::SeqCst);
                                return Err(events_corrupt(path, e));
                            }
                        }
                    }
                    records.push(record);
                    produced += 1;
                }
                Ok(Event::Failed { error }) => {
                    // First error wins; later ones are victims of the
                    // same shutdown, not the cause.
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                    shared.stop.store(true, Ordering::SeqCst);
                }
                Ok(Event::Exited) => active -= 1,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }

            if let Some(deadline) = self.deadline {
                let mut hung_indices = Vec::new();
                for slot in &slots {
                    let mut s = slot.lock().expect("slot lock");
                    if let Some((index, started)) = s.current {
                        if started.elapsed() >= deadline {
                            s.generation += 1;
                            s.current = None;
                            s.retired = true;
                            hung_indices.push(index);
                        }
                    }
                }
                for index in hung_indices {
                    active -= 1;
                    let record = InjectionRecord {
                        index,
                        site: WATCHDOG_SITE.into(),
                        at_tile: None,
                        delivered: true,
                        outcome: InjectionOutcome::Hang,
                    };
                    telemetry.record(&record.outcome, deadline, true);
                    analytics.fold_sample(&analytic_sample(&record));
                    if let Some(m) = &metrics {
                        m.counter_add(
                            "radcrit_campaign_outcomes_total",
                            &[("outcome", record.outcome.tag())],
                            1,
                        );
                        m.counter_add("radcrit_campaign_watchdog_hangs_total", &[], 1);
                        m.observe_duration("radcrit_injection_latency", &[], deadline);
                    }
                    if let Some(w) = writer.as_mut() {
                        let _scope = phase_profile::phase(PhaseId::Checkpoint);
                        if let Err(e) = w.append(&record) {
                            shared.stop.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                    if let Some((w, path)) = events.as_mut() {
                        // The hung worker never submitted a block (its
                        // generation was retired), so the watchdog owns
                        // this index's provenance.
                        if !events_have.contains(&(index as u64)) {
                            let prov = watchdog_provenance(index);
                            if let Err(e) = w.submit(index as u64, &[prov.to_event()]) {
                                shared.stop.store(true, Ordering::SeqCst);
                                return Err(events_corrupt(path, e));
                            }
                        }
                    }
                    records.push(record);
                    produced += 1;
                    if produced < target && !shared.stop.load(Ordering::SeqCst) {
                        // Keep the pool at strength: the hung worker is
                        // abandoned, not joined.
                        slots.push(spawn_worker(&shared, &tx, next_tid));
                        next_tid += 1;
                        active += 1;
                    }
                }
                slots.retain(|s| !s.lock().expect("slot lock").retired);
            }

            if let Some(interval) = options.progress {
                if last_progress.elapsed() >= interval {
                    eprintln!(
                        "{}",
                        telemetry.snapshot().progress_line(
                            target,
                            Some(&analytics),
                            bucket_stats(&shared)
                        )
                    );
                    last_progress = Instant::now();
                }
            }
        }
        shared.stop.store(true, Ordering::SeqCst);

        // Profiling: workers drain their accumulators into the collector
        // right before their `Exited` event, so wait for the stragglers
        // (bounded — a worker stuck in a hung kernel is abandoned, its
        // thread-local profile with it).
        if profiler.is_some() {
            while active > 0 {
                match rx.recv_timeout(Duration::from_secs(5)) {
                    Ok(Event::Exited) => active -= 1,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }

        if let Some(e) = first_error {
            return Err(e);
        }
        if options.progress.is_some() {
            eprintln!(
                "{}",
                telemetry
                    .snapshot()
                    .progress_line(target, Some(&analytics), bucket_stats(&shared))
            );
        }
        records.sort_by_key(|r| r.index);

        if let Some((w, path)) = events.as_mut() {
            // Flush gapped blocks first (a budget stop leaves holes), so
            // run_end is the stream's final line.
            w.finish().map_err(|e| events_corrupt(path, e))?;
            w.emit_top(&run_end_event(&telemetry))
                .map_err(|e| events_corrupt(path, e))?;
            w.finish().map_err(|e| events_corrupt(path, e))?;
        }
        if let (Some(tr), Some(path)) = (&trace, &options.trace_out) {
            let json = tr.to_chrome_json(&trace_metadata(
                self,
                &golden_profile,
                sigma_total,
                records.len(),
            ));
            std::fs::write(path, json)
                .map_err(|e| AccelError::Corrupt(format!("trace {}: {e}", path.display())))?;
            // Capped drops are operational signal, not just trace
            // metadata: surface them on /metrics too.
            if let Some(m) = &metrics {
                tr.export_dropped(m);
            }
        }
        if let Some(pc) = &profiler {
            pc.merge(&phase_profile::drain_thread());
            if let Some(path) = &options.profile_out {
                std::fs::write(path, pc.snapshot().to_json())
                    .map_err(|e| AccelError::Corrupt(format!("profile {}: {e}", path.display())))?;
            }
        }
        if let (Some(m), Some(path)) = (&metrics, &options.metrics_out) {
            let snap = m.snapshot();
            std::fs::write(path, format!("{}\n", snap.to_json()))
                .map_err(|e| AccelError::Corrupt(format!("metrics {}: {e}", path.display())))?;
            let prom = path.with_extension("prom");
            std::fs::write(&prom, snap.to_prometheus())
                .map_err(|e| AccelError::Corrupt(format!("metrics {}: {e}", prom.display())))?;
        }

        Ok(CampaignResult {
            campaign: self.clone(),
            profile: golden_profile,
            sigma_total,
            output_len: golden_output.len(),
            records,
            telemetry: telemetry.snapshot(),
            shard: options.shard,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        index: usize,
        engine: &Engine,
        kernel: &mut (dyn Workload + Send),
        sampler: &FaultSampler,
        golden: &[f64],
        snapshots: Option<&SnapshotSet>,
        scratch: &mut RunScratch,
        obs: &mut ObsCtx<'_>,
        batch: &mut BatchCtx<'_>,
    ) -> Result<InjectionRecord, AccelError> {
        // A per-injection RNG stream: reproducible independent of worker
        // scheduling.
        let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, index));

        let span = obs.detail.then(|| Span::enter(obs.buf, "injection"));
        let started = Instant::now();
        let result = self.run_one_inner(
            index, engine, kernel, sampler, golden, snapshots, scratch, obs, batch, &mut rng,
        );
        if let Some(tr) = obs.trace {
            tr.record("injection", obs.tid, started, &[("index", index as u64)]);
        }
        if let Some(span) = span {
            span.exit(obs.buf);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_one_inner(
        &self,
        index: usize,
        engine: &Engine,
        kernel: &mut (dyn Workload + Send),
        sampler: &FaultSampler,
        golden: &[f64],
        snapshots: Option<&SnapshotSet>,
        scratch: &mut RunScratch,
        obs: &mut ObsCtx<'_>,
        batch: &mut BatchCtx<'_>,
        rng: &mut StdRng,
    ) -> Result<InjectionRecord, AccelError> {
        let plan = sampler.sample(rng);
        let (record, prov) = match plan {
            InjectionPlan::Crash | InjectionPlan::Hang => {
                let outcome = if matches!(plan, InjectionPlan::Crash) {
                    InjectionOutcome::Crash
                } else {
                    InjectionOutcome::Hang
                };
                if obs.detail {
                    obs.buf.emit("fatal").str("mode", outcome.tag());
                }
                let prov = ProvenanceRecord {
                    index: index as u64,
                    site: "fatal".to_owned(),
                    at_tile: None,
                    victim_tile: None,
                    unit: None,
                    bit: None,
                    delivered: true,
                    touched_tiles: Vec::new(),
                    outcome: outcome.tag().to_owned(),
                    mismatches: 0,
                    class: SpatialClass::None,
                    mre: None,
                    critical: false,
                    fclass: None,
                };
                let record = InjectionRecord {
                    index,
                    site: "fatal".into(),
                    at_tile: None,
                    delivered: true,
                    outcome,
                };
                (record, prov)
            }
            InjectionPlan::Strike(spec) => {
                if obs.detail {
                    obs.buf
                        .emit("strike")
                        .str("site", spec.target.site_name())
                        .u64("at", spec.at_tile as u64)
                        .opt_u64("bit", spec.target.bit_index().map(u64::from))
                        .opt_u64("op", spec.target.op_index());
                }
                // The traced run consumes the RNG stream identically to
                // the untraced one, so records match either way; the
                // trace is only pulled when provenance needs it. With
                // snapshots attached the engine resumes from the nearest
                // golden-prefix snapshot at or before the strike tile —
                // bit-identical to a full run by construction. Under the
                // batch scheduler the plan is in bucket order, so strikes
                // with a usable snapshot fork off this worker's warm
                // bucket state instead of restoring per injection.
                let execute_started = Instant::now();
                let bucket = match (batch.counters, snapshots) {
                    (Some(counters), Some(snaps)) => snaps
                        .resume_tile(spec.at_tile)
                        .map(|resume| (counters, snaps, resume)),
                    _ => None,
                };
                let (run, trace) = if let Some((counters, snaps, resume)) = bucket {
                    // A bucket is stale when it resumes from a different
                    // snapshot or its golden front has already advanced
                    // past this strike (possible when workers interleave
                    // buckets off the shared cursor).
                    let stale = batch.warm.as_ref().is_none_or(|b| {
                        b.state.resume_tile() != resume || b.state.next_tile() > spec.at_tile
                    });
                    if stale {
                        let _scope = phase_profile::phase(PhaseId::BucketRestore);
                        let reuse = batch
                            .warm
                            .take()
                            .map(|b| close_bucket(b, obs.trace, obs.tid));
                        let state = engine
                            .warm_restore(kernel, snaps, spec.at_tile, scratch, reuse)?
                            .expect("resume_tile implies a usable snapshot");
                        counters.restores.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = batch.metrics {
                            m.counter_add("radcrit_bucket_restores_total", &[], 1);
                        }
                        batch.warm = Some(WarmBucket {
                            spans: snaps.golden_spans_from(resume).collect(),
                            state,
                            forks: 0,
                            started: Instant::now(),
                        });
                    }
                    let bucket = batch.warm.as_mut().expect("bucket was just ensured");
                    let advanced = {
                        let _scope = phase_profile::phase(PhaseId::WarmAdvance);
                        engine.warm_advance(kernel, &mut bucket.state, spec.at_tile)?
                    };
                    counters.forks.fetch_add(1, Ordering::Relaxed);
                    bucket.forks += 1;
                    if let Some(m) = batch.metrics {
                        m.counter_add("radcrit_bucket_forks_total", &[], 1);
                        m.counter_add("radcrit_bucket_advance_tiles_total", &[], advanced as u64);
                    }
                    let _scope = phase_profile::phase(PhaseId::Fork);
                    if obs.buf.is_enabled() {
                        let (run, trace) = engine.run_forked_traced(
                            kernel,
                            &spec,
                            rng,
                            &bucket.state,
                            &bucket.spans,
                            scratch,
                        )?;
                        (run, Some(trace))
                    } else {
                        (
                            engine.run_forked(
                                kernel,
                                &spec,
                                rng,
                                &bucket.state,
                                &bucket.spans,
                                scratch,
                            )?,
                            None,
                        )
                    }
                } else if obs.buf.is_enabled() {
                    let (run, trace) =
                        engine.run_injection_traced(kernel, &spec, rng, snapshots, scratch)?;
                    (run, Some(trace))
                } else {
                    (
                        engine.run_injection(kernel, &spec, rng, snapshots, scratch)?,
                        None,
                    )
                };
                if let Some(tr) = obs.trace {
                    tr.record(
                        "execute",
                        obs.tid,
                        execute_started,
                        &[("index", index as u64), ("at", spec.at_tile as u64)],
                    );
                }
                let resolution = run.resolutions.first().copied();
                if obs.detail {
                    if let Some(r) = resolution {
                        obs.buf
                            .emit("resolution")
                            .bool("delivered", r.delivered)
                            .opt_u64("victim", r.victim_tile.map(|v| v as u64))
                            .opt_u64("unit", r.unit.map(|u| u as u64))
                            .opt_u64("redirect", r.redirect_dest.map(|d| d as u64));
                    }
                }

                // A resumed run knows which output elements *can*
                // differ from golden (its dirty region); everything
                // else is untouched golden-suffix state, so the diff
                // only scans the dirty ranges.
                let compare_started = Instant::now();
                let compare_scope = phase_profile::phase(PhaseId::Compare);
                let report = if run.golden_equivalent {
                    // The engine proved the strike died unobserved and
                    // exited early: the completed run's output would be
                    // bit-equal to golden, and the returned buffer may
                    // hold stale bytes past the exit tile, so the diff
                    // is both unnecessary and wrong to perform.
                    ErrorReport::new(kernel.logical_shape(), Vec::new())
                } else {
                    match &run.dirty {
                        Some(dirty) => {
                            compare_with_logical_coords_sparse(golden, &run.output, kernel, dirty)
                        }
                        None => compare_with_logical_coords(golden, &run.output, kernel),
                    }
                };
                drop(compare_scope);
                let mismatches = report.incorrect_elements() as u64;
                let (outcome, class, mre, critical, fclass) = if report.is_sdc() {
                    let criticality = report.criticality(&self.tolerance, &self.classifier);
                    let class = criticality.locality;
                    let mre = criticality.mean_relative_error;
                    let critical = criticality.is_critical();
                    let fclass = critical.then_some(criticality.filtered_locality);
                    (
                        InjectionOutcome::Sdc(SdcDetail {
                            criticality,
                            output_len: golden.len(),
                        }),
                        class,
                        mre,
                        critical,
                        fclass,
                    )
                } else {
                    (
                        InjectionOutcome::Masked,
                        SpatialClass::None,
                        None,
                        false,
                        None,
                    )
                };
                if let Some(tr) = obs.trace {
                    tr.record(
                        "compare",
                        obs.tid,
                        compare_started,
                        &[("index", index as u64), ("mismatches", mismatches)],
                    );
                }
                if obs.detail {
                    let b = obs
                        .buf
                        .emit("diff")
                        .u64("mismatches", mismatches)
                        .str("class", &class.to_string());
                    match mre {
                        Some(v) => b.f64("mre", v),
                        None => b,
                    };
                }

                let touched_tiles = match (&resolution, &trace) {
                    (Some(r), Some(t)) => touched_tiles(r, t),
                    _ => Vec::new(),
                };
                let prov = ProvenanceRecord {
                    index: index as u64,
                    site: spec.target.site_name().to_owned(),
                    at_tile: Some(spec.at_tile as u64),
                    victim_tile: resolution.and_then(|r| r.victim_tile).map(|v| v as u64),
                    unit: resolution.and_then(|r| r.unit).map(|u| u as u64),
                    bit: spec.target.bit_index().map(u64::from),
                    delivered: run.strike_delivered,
                    touched_tiles,
                    outcome: outcome.tag().to_owned(),
                    mismatches,
                    class,
                    mre,
                    critical,
                    fclass,
                };
                let record = InjectionRecord {
                    index,
                    site: spec.target.site_name().to_owned(),
                    at_tile: Some(spec.at_tile),
                    delivered: run.strike_delivered,
                    outcome,
                };
                (record, prov)
            }
        };
        obs.buf.push(prov.to_event());
        Ok(record)
    }
}

fn spawn_worker(shared: &Arc<Shared>, tx: &SyncSender<Event>, tid: u64) -> Arc<Mutex<Slot>> {
    let slot = Arc::new(Mutex::new(Slot {
        generation: 0,
        current: None,
        retired: false,
    }));
    let shared = Arc::clone(shared);
    let slot_for_worker = Arc::clone(&slot);
    let tx = tx.clone();
    thread::spawn(move || worker_loop(shared, slot_for_worker, tx, tid));
    slot
}

/// Merges this worker's thread-local profile into the shared collector
/// when the worker exits — by any path, including the early returns a
/// retired slot takes (the watchdog abandoned us; our timings are still
/// real work worth counting).
struct ProfileDrain(Option<Arc<ProfileCollector>>);

impl Drop for ProfileDrain {
    fn drop(&mut self) {
        if let Some(pc) = &self.0 {
            pc.merge(&phase_profile::drain_thread());
        }
    }
}

fn worker_loop(shared: Arc<Shared>, slot: Arc<Mutex<Slot>>, tx: SyncSender<Event>, tid: u64) {
    if shared.profile.is_some() {
        phase_profile::enable_thread();
    }
    let _profile_drain = ProfileDrain(shared.profile.clone());
    let mut kernel = match shared.campaign.kernel.build(shared.campaign.seed) {
        Ok(k) => k,
        Err(e) => {
            shared.stop.store(true, Ordering::SeqCst);
            let _ = tx.send(Event::Failed { error: e });
            let _ = tx.send(Event::Exited);
            return;
        }
    };
    let mut engine = Engine::new(shared.campaign.device.clone());
    if let Some(m) = &shared.metrics {
        engine = engine.with_metrics(Arc::clone(m));
    }
    // Per-worker scratch: the kernel's setup runs once and later
    // injections restore device memory in place instead of re-running
    // it and reallocating every buffer.
    let mut scratch = RunScratch::new();
    // Batch-scheduler context: this worker's warm bucket (if any) plus
    // the run-wide bucket counters.
    let mut batch = BatchCtx {
        counters: shared.buckets.as_ref(),
        metrics: shared.metrics.as_deref(),
        warm: None,
    };

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let cursor = shared.next.fetch_add(1, Ordering::SeqCst);
        let Some(&index) = shared.pending.get(cursor) else {
            break;
        };

        let my_generation = {
            let mut s = slot.lock().expect("slot lock");
            if s.retired {
                return;
            }
            s.current = Some((index, Instant::now()));
            s.generation
        };

        let mut buf = match shared.events_sample {
            Some(_) => EventBuffer::for_injection(index as u64),
            None => EventBuffer::disabled(),
        };
        let detail = shared
            .events_sample
            .is_some_and(|s| (index as u64).is_multiple_of(s));

        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.campaign.run_one(
                index,
                &engine,
                kernel.as_mut(),
                &shared.sampler,
                &shared.golden,
                shared.snapshots.as_deref(),
                &mut scratch,
                &mut ObsCtx {
                    buf: &mut buf,
                    detail,
                    trace: shared.trace.as_deref(),
                    tid,
                },
                &mut batch,
            )
        }));
        let latency = started.elapsed();
        let events = buf.take();

        // Never send while holding the slot lock: the collector both
        // drains the channel and takes this lock in its watchdog scan.
        let still_owner = {
            let mut s = slot.lock().expect("slot lock");
            if s.generation == my_generation {
                s.current = None;
                true
            } else {
                false
            }
        };
        if !still_owner {
            // The watchdog recorded this injection as a hang and moved
            // on; our late result would be a duplicate.
            return;
        }

        match outcome {
            Ok(Ok(record)) => {
                if tx
                    .send(Event::Done {
                        record,
                        latency,
                        events,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Err(error)) => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = tx.send(Event::Failed { error });
                break;
            }
            Err(payload) => {
                shared.stop.store(true, Ordering::SeqCst);
                let _ = tx.send(Event::Failed {
                    error: AccelError::WorkerPanic(panic_message(payload)),
                });
                break;
            }
        }
    }
    if let Some(b) = batch.warm.take() {
        close_bucket(b, shared.trace.as_deref(), tid);
    }
    // Merge before `Exited`: the collector snapshots the profile as soon
    // as the last worker is accounted for.
    drop(_profile_drain);
    let _ = tx.send(Event::Exited);
}

fn events_corrupt(path: &Path, e: impl std::fmt::Display) -> AccelError {
    AccelError::Corrupt(format!("event stream {}: {e}", path.display()))
}

/// The stream's header: campaign identity plus the kernel's geometry
/// (via [`Workload::obs_fields`]) and the total cross-section, so a
/// stream fold can reproduce the summary's FIT scale without access to
/// the fault-site table.
fn run_begin_event(campaign: &Campaign, kernel: &(dyn Workload + Send), sigma: f64) -> ObsEvent {
    let mut fields = vec![
        (
            "device".to_owned(),
            FieldValue::Str(campaign.device.kind().to_string()),
        ),
        (
            "injections".to_owned(),
            FieldValue::U64(campaign.injections as u64),
        ),
        ("seed".to_owned(), FieldValue::U64(campaign.seed)),
        ("sigma".to_owned(), FieldValue::F64(sigma)),
    ];
    fields.extend(kernel.obs_fields());
    ObsEvent {
        kind: "run_begin".to_owned(),
        index: None,
        fields,
    }
}

/// The analytic essence of one finished record — the exact sample the
/// [`CriticalityAggregator`] folds, shared between the runner's live
/// fold and the enriched `replay` marker so both paths carry the same
/// criticality detail as a `provenance` event.
fn analytic_sample(r: &InjectionRecord) -> AnalyticSample {
    let (mismatches, class, mre, critical, fclass) = match &r.outcome {
        InjectionOutcome::Sdc(d) => {
            let critical = d.criticality.is_critical();
            (
                d.criticality.incorrect_elements as u64,
                d.criticality.locality,
                d.criticality.mean_relative_error,
                critical,
                critical.then_some(d.criticality.filtered_locality),
            )
        }
        _ => (0, SpatialClass::None, None, false, None),
    };
    AnalyticSample {
        index: r.index as u64,
        site: r.site.clone(),
        outcome: r.outcome.tag().to_owned(),
        mismatches,
        class,
        mre,
        critical,
        fclass,
    }
}

/// Synthetic marker for an index replayed from the checkpoint whose
/// original events were lost with the killed run's write buffer. The
/// marker carries the record's full analytic fields, so a stream fold
/// across a kill → resume cycle still reproduces the summary exactly.
fn replay_event(r: &InjectionRecord) -> ObsEvent {
    let s = analytic_sample(r);
    let mut fields = vec![
        ("site".to_owned(), FieldValue::Str(s.site)),
        ("outcome".to_owned(), FieldValue::Str(s.outcome)),
        ("delivered".to_owned(), FieldValue::Bool(r.delivered)),
        ("mismatches".to_owned(), FieldValue::U64(s.mismatches)),
        ("class".to_owned(), FieldValue::Str(s.class.to_string())),
    ];
    if let Some(mre) = s.mre {
        fields.push(("mre".to_owned(), FieldValue::F64(mre)));
    }
    if s.critical {
        fields.push(("critical".to_owned(), FieldValue::Bool(true)));
    }
    if let Some(fclass) = s.fclass {
        fields.push(("fclass".to_owned(), FieldValue::Str(fclass.to_string())));
    }
    ObsEvent {
        kind: "replay".to_owned(),
        index: Some(r.index as u64),
        fields,
    }
}

/// Top-level metadata of a Chrome trace: campaign identity plus the
/// golden [`ExecutionProfile`]'s headline figures, pre-rendered as JSON
/// values. The committed-sample trace test asserts these against a
/// fresh deterministic run.
fn trace_metadata(
    campaign: &Campaign,
    profile: &ExecutionProfile,
    sigma_total: f64,
    records: usize,
) -> Vec<(&'static str, String)> {
    vec![
        (
            "kernel",
            format!("\"{}\"", radcrit_obs::json::escape(campaign.kernel.name())),
        ),
        (
            "input",
            format!(
                "\"{}\"",
                radcrit_obs::json::escape(&campaign.kernel.input_label())
            ),
        ),
        (
            "device",
            format!(
                "\"{}\"",
                radcrit_obs::json::escape(&campaign.device.kind().to_string())
            ),
        ),
        ("injections", records.to_string()),
        ("seed", campaign.seed.to_string()),
        ("sigma_total", radcrit_obs::json::fmt_f64(sigma_total)),
        ("tiles", profile.tiles.to_string()),
        ("threads_per_tile", profile.threads_per_tile.to_string()),
        (
            "instantiated_threads",
            profile.instantiated_threads.to_string(),
        ),
        ("total_ops", profile.total_ops.to_string()),
        ("loads", profile.loads.to_string()),
        ("stores", profile.stores.to_string()),
    ]
}

/// The stream's trailer: this run's outcome counts (logical data only —
/// deterministic for a fixed seed and worker-independent).
fn run_end_event(telemetry: &Telemetry) -> ObsEvent {
    let s = telemetry.snapshot();
    ObsEvent {
        kind: "run_end".to_owned(),
        index: None,
        fields: vec![
            ("produced".to_owned(), FieldValue::U64(s.completed as u64)),
            ("masked".to_owned(), FieldValue::U64(s.masked as u64)),
            ("sdc".to_owned(), FieldValue::U64(s.sdc as u64)),
            ("crash".to_owned(), FieldValue::U64(s.crash as u64)),
            ("hang".to_owned(), FieldValue::U64(s.hang as u64)),
        ],
    }
}

/// Provenance of a watchdog-synthesized hang: no strike details exist
/// because the injection never finished.
fn watchdog_provenance(index: usize) -> ProvenanceRecord {
    ProvenanceRecord {
        index: index as u64,
        site: WATCHDOG_SITE.to_owned(),
        at_tile: None,
        victim_tile: None,
        unit: None,
        bit: None,
        delivered: true,
        touched_tiles: Vec::new(),
        outcome: InjectionOutcome::Hang.tag().to_owned(),
        mismatches: 0,
        class: SpatialClass::None,
        mre: None,
        critical: false,
        fclass: None,
    }
}

/// Cap on the `touched` tile list of a provenance event, bounding event
/// line size on large L2-visibility fan-outs.
const TOUCHED_TILES_CAP: usize = 64;

/// Joins a strike resolution to the tiles that touched struck state
/// afterwards, using the execution trace: shared-L2 corruption is
/// visible to every later tile with L2 traffic, L1 lines and unit
/// dispatch state only to later tiles on the struck unit, and register
/// or pipeline strikes only to their victim tile.
fn touched_tiles(res: &StrikeResolution, trace: &ExecutionTrace) -> Vec<u64> {
    if !res.delivered {
        return Vec::new();
    }
    let mut tiles: Vec<u64> = match res.site {
        "l2" => trace
            .tiles()
            .iter()
            .filter(|t| t.pos >= res.at_tile && t.l2_hits + t.l2_misses > 0)
            .map(|t| t.pos as u64)
            .collect(),
        "l1" | "unit_garble" => trace
            .tiles()
            .iter()
            .filter(|t| t.pos >= res.at_tile && Some(t.unit) == res.unit)
            .map(|t| t.pos as u64)
            .collect(),
        "scheduler" => {
            let mut v: Vec<u64> = res.victim_tile.into_iter().map(|t| t as u64).collect();
            v.extend(res.redirect_dest.map(|d| d as u64));
            v
        }
        _ => res.victim_tile.into_iter().map(|t| t as u64).collect(),
    };
    tiles.truncate(TOUCHED_TILES_CAP);
    tiles
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Compares outputs element-wise, mapping each mismatch to the kernel's
/// *logical* coordinate space (e.g. LavaMD's box grid), which is what the
/// paper's spatial-locality metric operates on.
pub fn compare_with_logical_coords(
    golden: &[f64],
    observed: &[f64],
    kernel: &(dyn Workload + Send),
) -> ErrorReport {
    let mut mismatches = Vec::new();
    for (i, (&g, &o)) in golden.iter().zip(observed.iter()).enumerate() {
        let matches = (g == o) || (g.is_nan() && o.is_nan());
        if !matches {
            mismatches.push(Mismatch::new(kernel.error_coord(i), o, g));
        }
    }
    ErrorReport::new(kernel.logical_shape(), mismatches)
}

/// [`compare_with_logical_coords`] restricted to a dirty region: only
/// elements inside `dirty` are compared. Produces the identical
/// [`ErrorReport`] whenever `dirty` covers every element that differs
/// from golden — which a resumed run's region does by construction
/// (golden-suffix stores plus the faulty run's own stores and
/// writebacks).
pub fn compare_with_logical_coords_sparse(
    golden: &[f64],
    observed: &[f64],
    kernel: &(dyn Workload + Send),
    dirty: &DirtyRegion,
) -> ErrorReport {
    let len = golden.len().min(observed.len());
    let mut mismatches = Vec::new();
    for &(start, end) in dirty.ranges() {
        for i in start..end.min(len) {
            let (g, o) = (golden[i], observed[i]);
            let matches = (g == o) || (g.is_nan() && o.is_nan());
            if !matches {
                mismatches.push(Mismatch::new(kernel.error_coord(i), o, g));
            }
        }
    }
    ErrorReport::new(kernel.logical_shape(), mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use radcrit_accel::config::DeviceConfig;

    fn small_campaign(device: DeviceConfig) -> Campaign {
        Campaign::new(device, KernelSpec::Dgemm { n: 32 }, 40, 7).with_workers(2)
    }

    #[test]
    fn campaign_produces_one_record_per_injection() {
        let result = small_campaign(DeviceConfig::kepler_k40()).run().unwrap();
        assert_eq!(result.records.len(), 40);
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(result.output_len, 32 * 32);
        assert!(result.sigma_total > 0.0);
        assert!(result.is_complete());
        assert_eq!(result.telemetry.completed, 40);
        assert_eq!(result.telemetry.replayed, 0);
        assert_eq!(result.telemetry.latency.count(), 40);
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let base = small_campaign(DeviceConfig::kepler_k40());
        let one = base.clone().with_workers(1).run().unwrap();
        let four = base.with_workers(4).run().unwrap();
        assert_eq!(one.records, four.records);
    }

    #[test]
    fn campaign_observes_all_outcome_kinds_eventually() {
        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            300,
            11,
        )
        .with_workers(4);
        let result = c.run().unwrap();
        let tags: std::collections::HashSet<_> =
            result.records.iter().map(|r| r.outcome.tag()).collect();
        assert!(tags.contains("SDC"), "tags: {tags:?}");
        assert!(
            tags.contains("CRASH") || tags.contains("HANG"),
            "tags: {tags:?}"
        );
        assert!(tags.contains("MASKED"), "tags: {tags:?}");
    }

    #[test]
    fn logical_coordinates_used_for_lavamd() {
        let c = Campaign::new(
            DeviceConfig::xeon_phi_3120a(),
            KernelSpec::LavaMd {
                grid: 3,
                particles: 6,
            },
            60,
            3,
        )
        .with_workers(2);
        let result = c.run().unwrap();
        for r in &result.records {
            if let InjectionOutcome::Sdc(d) = &r.outcome {
                // Logical shape is the 3x3x3 box grid.
                assert!(
                    d.criticality.incorrect_elements >= 1,
                    "SDC must have mismatches"
                );
            }
        }
    }

    #[test]
    fn a_deadline_does_not_disturb_a_healthy_campaign() {
        let base = small_campaign(DeviceConfig::kepler_k40());
        let plain = base.clone().run().unwrap();
        let watched = base.with_deadline(Duration::from_secs(60)).run().unwrap();
        assert_eq!(plain.records, watched.records);
        assert_eq!(watched.telemetry.watchdog_hangs, 0);
    }

    #[test]
    fn budget_produces_a_resumable_partial_result() {
        let c = small_campaign(DeviceConfig::kepler_k40());
        let partial = c
            .run_with(&RunOptions {
                budget: Some(10),
                ..RunOptions::default()
            })
            .unwrap();
        assert_eq!(partial.records.len(), 10);
        assert!(!partial.is_complete());
        let full = c.run().unwrap();
        // The partial run's records are a subset of the full run's.
        for r in &partial.records {
            assert_eq!(r, &full.records[r.index]);
        }
    }
}
