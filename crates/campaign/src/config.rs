//! Campaign configuration: which kernel, which device, how many
//! injections.

use std::time::Duration;

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::error::AccelError;
use radcrit_core::filter::ToleranceFilter;
use radcrit_core::locality::LocalityClassifier;
use radcrit_kernels::dgemm::Dgemm;
use radcrit_kernels::hotspot::HotSpot;
use radcrit_kernels::lavamd::LavaMd;
use radcrit_kernels::pathological::{Failure, Pathological};
use radcrit_kernels::shallow::ShallowWater;
use radcrit_kernels::Workload;
use serde::{Deserialize, Serialize};

/// Which kernel a campaign runs, with its input size. Mirrors Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelSpec {
    /// DGEMM with a square matrix of the given side.
    Dgemm {
        /// Matrix side (multiple of 16).
        n: usize,
    },
    /// LavaMD over a `grid³` box space.
    LavaMd {
        /// Boxes per dimension.
        grid: usize,
        /// Particles per box (192 on the paper's K40, 100 on its Phi).
        particles: usize,
    },
    /// The HotSpot 2-D stencil.
    HotSpot {
        /// Grid rows (multiple of 8).
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Stencil iterations.
        iterations: usize,
    },
    /// The CLAMR-equivalent shallow-water dam break.
    Shallow {
        /// Grid rows (multiple of 8).
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Time steps.
        steps: usize,
    },
    /// The diagnostic kernel that hangs or panics after `after`
    /// executions of one instance — used to exercise the runner's
    /// watchdog and panic capture, never part of the paper matrix.
    Pathological {
        /// Output elements.
        n: usize,
        /// Healthy executions per instance before the failure mode.
        after: usize,
        /// Hang or panic.
        mode: Failure,
    },
}

impl KernelSpec {
    /// Instantiates the kernel with deterministic inputs from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's configuration validation.
    pub fn build(&self, seed: u64) -> Result<Box<dyn Workload + Send>, AccelError> {
        Ok(match *self {
            KernelSpec::Dgemm { n } => Box::new(Dgemm::new(n, seed)?),
            KernelSpec::LavaMd { grid, particles } => Box::new(LavaMd::new(grid, particles, seed)?),
            KernelSpec::HotSpot {
                rows,
                cols,
                iterations,
            } => Box::new(HotSpot::new(rows, cols, iterations, seed)?),
            KernelSpec::Shallow { rows, cols, steps } => {
                Box::new(ShallowWater::new(rows, cols, steps)?)
            }
            KernelSpec::Pathological { n, after, mode } => {
                Box::new(Pathological::new(n, after, mode)?)
            }
        })
    }

    /// The kernel's name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelSpec::Dgemm { .. } => "dgemm",
            KernelSpec::LavaMd { .. } => "lavamd",
            KernelSpec::HotSpot { .. } => "hotspot",
            KernelSpec::Shallow { .. } => "clamr",
            KernelSpec::Pathological { .. } => "pathological",
        }
    }

    /// A short input-size label (the x-axis labels of Figs. 3 and 5).
    pub fn input_label(&self) -> String {
        match *self {
            KernelSpec::Dgemm { n } => format!("{n}x{n}"),
            KernelSpec::LavaMd { grid, .. } => format!("{grid}"),
            KernelSpec::HotSpot { rows, cols, .. } => format!("{rows}x{cols}"),
            KernelSpec::Shallow { rows, cols, .. } => format!("{rows}x{cols}"),
            KernelSpec::Pathological { n, .. } => format!("{n}"),
        }
    }
}

/// One injection campaign: device + kernel + budget + analysis knobs.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The simulated device.
    pub device: DeviceConfig,
    /// The kernel and input size.
    pub kernel: KernelSpec,
    /// Number of injected executions.
    pub injections: usize,
    /// Base seed: inputs and injection randomness derive from it, so a
    /// campaign is reproducible regardless of worker count.
    pub seed: u64,
    /// The relative-error tolerance (2 % in the paper).
    pub tolerance: ToleranceFilter,
    /// The spatial-locality classifier.
    pub classifier: LocalityClassifier,
    /// Worker threads (0 ⇒ one per available core).
    pub workers: usize,
    /// Per-injection watchdog deadline: an injection still running after
    /// this long is recorded as [`crate::outcome::InjectionOutcome::Hang`]
    /// and its worker replaced. `None` disables the watchdog.
    pub deadline: Option<Duration>,
}

impl Campaign {
    /// Creates a campaign with the paper's analysis defaults (2 % filter,
    /// default classifier) and automatic worker count.
    pub fn new(device: DeviceConfig, kernel: KernelSpec, injections: usize, seed: u64) -> Self {
        Campaign {
            device,
            kernel,
            injections,
            seed,
            tolerance: ToleranceFilter::paper_default(),
            classifier: LocalityClassifier::default(),
            workers: 0,
            deadline: None,
        }
    }

    /// Sets the tolerance filter.
    pub fn with_tolerance(mut self, tolerance: ToleranceFilter) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Arms the per-injection hang watchdog with `deadline`.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_their_kernels() {
        assert_eq!(
            KernelSpec::Dgemm { n: 32 }.build(1).unwrap().name(),
            "dgemm"
        );
        assert_eq!(
            KernelSpec::LavaMd {
                grid: 2,
                particles: 4
            }
            .build(1)
            .unwrap()
            .name(),
            "lavamd"
        );
        assert_eq!(
            KernelSpec::HotSpot {
                rows: 8,
                cols: 8,
                iterations: 2
            }
            .build(1)
            .unwrap()
            .name(),
            "hotspot"
        );
        assert_eq!(
            KernelSpec::Shallow {
                rows: 16,
                cols: 16,
                steps: 2
            }
            .build(1)
            .unwrap()
            .name(),
            "shallow"
        );
        assert_eq!(
            KernelSpec::Pathological {
                n: 8,
                after: 1,
                mode: Failure::Hang
            }
            .build(1)
            .unwrap()
            .name(),
            "pathological"
        );
    }

    #[test]
    fn bad_specs_propagate_errors() {
        assert!(KernelSpec::Dgemm { n: 17 }.build(1).is_err());
        assert!(KernelSpec::LavaMd {
            grid: 0,
            particles: 4
        }
        .build(1)
        .is_err());
        assert!(KernelSpec::Pathological {
            n: 8,
            after: 0,
            mode: Failure::Panic
        }
        .build(1)
        .is_err());
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(KernelSpec::Dgemm { n: 1024 }.input_label(), "1024x1024");
        assert_eq!(
            KernelSpec::LavaMd {
                grid: 13,
                particles: 100
            }
            .input_label(),
            "13"
        );
    }

    #[test]
    fn campaign_defaults() {
        let c = Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            10,
            1,
        );
        assert_eq!(c.tolerance.threshold_pct(), 2.0);
        assert!(c.effective_workers() >= 1);
        assert_eq!(c.deadline, None, "watchdog is opt-in");
        let c = c.with_workers(3);
        assert_eq!(c.effective_workers(), 3);
        let c = c.with_deadline(Duration::from_millis(250));
        assert_eq!(c.deadline, Some(Duration::from_millis(250)));
    }
}
