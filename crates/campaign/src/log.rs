//! Event logs and CSV export.
//!
//! The paper publishes its corrupted outputs "in a publicly accessible
//! repository so to allow users to apply different filters" (§III,
//! the UFRGS-CAROL `HPCA2017-log-data` repository). This module mirrors
//! that practice: one human-readable event line per injection, plus a
//! machine-readable CSV with every metric, so third parties can re-filter
//! the campaign with their own thresholds.

use std::io::{self, Write};

use crate::outcome::{InjectionOutcome, InjectionRecord};
use crate::runner::CampaignResult;

/// Formats one record as a CAROL-style log line.
///
/// ```text
/// #SDC kernel:dgemm device:K40 input:256x256 site:l2 tile:37 delivered:1
///      incorrect:12 mre:43.10 locality:line filt_incorrect:12 filt_mre:43.10
///      filt_locality:line
/// ```
pub fn event_line(result: &CampaignResult, record: &InjectionRecord) -> String {
    let head = format!(
        "#{} kernel:{} device:{} input:{} site:{} tile:{} delivered:{}",
        record.outcome.tag(),
        result.campaign.kernel.name(),
        result.campaign.device.kind(),
        result.campaign.kernel.input_label(),
        record.site,
        record
            .at_tile
            .map_or_else(|| "-".to_owned(), |t| t.to_string()),
        u8::from(record.delivered),
    );
    match &record.outcome {
        InjectionOutcome::Sdc(d) => {
            let c = &d.criticality;
            format!(
                "{head} incorrect:{} mre:{} locality:{} filt_incorrect:{} filt_mre:{} filt_locality:{}",
                c.incorrect_elements,
                fmt_pct(c.mean_relative_error),
                c.locality,
                c.filtered_incorrect_elements,
                fmt_pct(c.filtered_mean_relative_error),
                c.filtered_locality,
            )
        }
        _ => head,
    }
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.4}"),
        Some(_) => "inf".to_owned(),
        None => "-".to_owned(),
    }
}

/// Writes the full campaign log (header + one event line per record).
///
/// # Errors
///
/// Propagates I/O failures of `w` (a `&mut Vec<u8>` or any `Write` can
/// be passed).
pub fn write_log<W: Write>(result: &CampaignResult, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "#HEADER kernel:{} device:{} input:{} injections:{} sigma:{:.3e}",
        result.campaign.kernel.name(),
        result.campaign.device.kind(),
        result.campaign.kernel.input_label(),
        result.records.len(),
        result.sigma_total,
    )?;
    for record in &result.records {
        writeln!(w, "{}", event_line(result, record))?;
    }
    Ok(())
}

/// Writes the campaign as CSV with one row per injection.
///
/// # Errors
///
/// Propagates I/O failures of `w`.
pub fn write_csv<W: Write>(result: &CampaignResult, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "index,outcome,site,at_tile,delivered,incorrect,mre,locality,\
         filt_incorrect,filt_mre,filt_locality"
    )?;
    for r in &result.records {
        let (incorrect, mre, loc, fi, fmre, floc) = match &r.outcome {
            InjectionOutcome::Sdc(d) => {
                let c = &d.criticality;
                (
                    c.incorrect_elements.to_string(),
                    fmt_pct(c.mean_relative_error),
                    c.locality.to_string(),
                    c.filtered_incorrect_elements.to_string(),
                    fmt_pct(c.filtered_mean_relative_error),
                    c.filtered_locality.to_string(),
                )
            }
            _ => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{}",
            r.index,
            r.outcome.tag(),
            r.site,
            r.at_tile.map_or_else(String::new, |t| t.to_string()),
            u8::from(r.delivered),
            incorrect,
            mre,
            loc,
            fi,
            fmre,
            floc,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Campaign, KernelSpec};
    use radcrit_accel::config::DeviceConfig;

    fn result() -> CampaignResult {
        Campaign::new(
            DeviceConfig::kepler_k40(),
            KernelSpec::Dgemm { n: 32 },
            60,
            5,
        )
        .with_workers(2)
        .run()
        .unwrap()
    }

    #[test]
    fn log_has_header_and_one_line_per_record() {
        let r = result();
        let mut buf = Vec::new();
        write_log(&r, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("#HEADER"));
        assert_eq!(lines.len(), 1 + r.records.len());
        assert!(text.contains("kernel:dgemm"));
    }

    #[test]
    fn sdc_lines_carry_all_metrics() {
        let r = result();
        let sdc_line = r
            .records
            .iter()
            .find(|rec| rec.outcome.is_sdc())
            .map(|rec| event_line(&r, rec));
        if let Some(line) = sdc_line {
            for key in ["incorrect:", "mre:", "locality:", "filt_incorrect:"] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
    }

    #[test]
    fn csv_is_rectangular() {
        let r = result();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), header_cols, "ragged row: {line}");
        }
    }
}
