//! Parameter sweeps: run a matrix of campaigns and analyze trends.
//!
//! The paper's headline architecture findings are *trends across input
//! sizes* — DGEMM FIT growing 7× on the K40 while staying flat on the
//! Phi (§V-A), LavaMD's gentler 30 % steps (§V-B). A [`Sweep`] runs a
//! list of presets (optionally sharing one thread pool sequentially, as
//! each campaign already parallelizes internally) and exposes those
//! trends directly.

use radcrit_accel::error::AccelError;

use crate::presets::Preset;
use crate::summary::CampaignSummary;

/// A list of campaigns to run as one experiment.
#[derive(Debug, Clone)]
pub struct Sweep {
    presets: Vec<Preset>,
    seed: u64,
}

impl Sweep {
    /// Creates a sweep over `presets` with a common base seed.
    pub fn new(presets: Vec<Preset>, seed: u64) -> Self {
        Sweep { presets, seed }
    }

    /// The presets in order.
    pub fn presets(&self) -> &[Preset] {
        &self.presets
    }

    /// Runs every campaign in order and collects the summaries.
    ///
    /// # Errors
    ///
    /// Propagates the first campaign failure.
    pub fn run(&self) -> Result<SweepResult, AccelError> {
        let mut summaries = Vec::with_capacity(self.presets.len());
        for p in &self.presets {
            summaries.push(p.campaign(self.seed).run()?.summary());
        }
        Ok(SweepResult { summaries })
    }
}

/// The collected summaries of a sweep, in preset order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    summaries: Vec<CampaignSummary>,
}

impl SweepResult {
    /// All summaries.
    pub fn summaries(&self) -> &[CampaignSummary] {
        &self.summaries
    }

    /// Summaries restricted to one kernel name.
    pub fn for_kernel(&self, kernel: &str) -> Vec<&CampaignSummary> {
        self.summaries.iter().filter(|s| s.kernel == kernel).collect()
    }

    /// Summaries restricted to one device name.
    pub fn for_device(&self, device: &str) -> Vec<&CampaignSummary> {
        self.summaries.iter().filter(|s| s.device == device).collect()
    }

    /// FIT growth over a subset: last total over first total, or `None`
    /// when fewer than two entries match or the first is zero.
    pub fn fit_growth(&self, kernel: &str, device: &str) -> Option<f64> {
        let subset: Vec<&CampaignSummary> = self
            .summaries
            .iter()
            .filter(|s| s.kernel == kernel && s.device == device)
            .collect();
        let first = subset.first()?.fit_all_total();
        let last = subset.last()?.fit_all_total();
        if subset.len() < 2 || first <= 0.0 {
            None
        } else {
            Some(last / first)
        }
    }

    /// The series of (input label, total FIT in a.u.) for one
    /// kernel/device — a figure-3-style line.
    pub fn fit_series(&self, kernel: &str, device: &str) -> Vec<(String, f64)> {
        self.summaries
            .iter()
            .filter(|s| s.kernel == kernel && s.device == device)
            .map(|s| (s.input.clone(), s.fit_all_total()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use crate::presets::Preset;
    use radcrit_accel::config::DeviceConfig;

    fn tiny_sweep() -> Sweep {
        let device = DeviceConfig::kepler_k40().scaled(8).unwrap();
        let presets = vec![
            Preset {
                device: device.clone(),
                kernel: KernelSpec::Dgemm { n: 32 },
                injections: 60,
            },
            Preset {
                device: device.clone(),
                kernel: KernelSpec::Dgemm { n: 64 },
                injections: 40,
            },
            Preset {
                device,
                kernel: KernelSpec::HotSpot { rows: 16, cols: 16, iterations: 4 },
                injections: 30,
            },
        ];
        Sweep::new(presets, 5)
    }

    #[test]
    fn sweep_collects_in_order() {
        let r = tiny_sweep().run().unwrap();
        assert_eq!(r.summaries().len(), 3);
        assert_eq!(r.summaries()[0].input, "32x32");
        assert_eq!(r.summaries()[1].input, "64x64");
        assert_eq!(r.summaries()[2].kernel, "hotspot");
    }

    #[test]
    fn selectors_filter() {
        let r = tiny_sweep().run().unwrap();
        assert_eq!(r.for_kernel("dgemm").len(), 2);
        assert_eq!(r.for_kernel("hotspot").len(), 1);
        assert_eq!(r.for_device("K40").len(), 3);
        assert_eq!(r.for_device("Xeon Phi").len(), 0);
    }

    #[test]
    fn growth_and_series() {
        let r = tiny_sweep().run().unwrap();
        let g = r.fit_growth("dgemm", "K40").expect("two sizes present");
        assert!(g > 0.0);
        let series = r.fit_series("dgemm", "K40");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "32x32");
        assert!(r.fit_growth("hotspot", "K40").is_none(), "one entry only");
        assert!(r.fit_growth("dgemm", "Xeon Phi").is_none());
    }
}
