//! Parameter sweeps: run a matrix of campaigns and analyze trends.
//!
//! The paper's headline architecture findings are *trends across input
//! sizes* — DGEMM FIT growing 7× on the K40 while staying flat on the
//! Phi (§V-A), LavaMD's gentler 30 % steps (§V-B). A [`Sweep`] runs a
//! list of presets (optionally sharing one thread pool sequentially, as
//! each campaign already parallelizes internally) and exposes those
//! trends directly.

use std::sync::Arc;

use radcrit_accel::error::AccelError;

use crate::golden::{GoldenCache, GoldenCacheStats};
use crate::presets::Preset;
use crate::runner::RunOptions;
use crate::summary::CampaignSummary;
use crate::telemetry::TelemetrySnapshot;

/// A list of campaigns to run as one experiment.
#[derive(Debug, Clone)]
pub struct Sweep {
    presets: Vec<Preset>,
    seed: u64,
}

impl Sweep {
    /// Creates a sweep over `presets` with a common base seed.
    pub fn new(presets: Vec<Preset>, seed: u64) -> Self {
        Sweep { presets, seed }
    }

    /// The presets in order.
    pub fn presets(&self) -> &[Preset] {
        &self.presets
    }

    /// Runs every campaign in order and collects the summaries.
    ///
    /// # Errors
    ///
    /// Propagates the first campaign failure.
    pub fn run(&self) -> Result<SweepResult, AccelError> {
        self.run_with(&RunOptions::default())
    }

    /// [`Sweep::run`] with explicit per-campaign [`RunOptions`].
    ///
    /// A `checkpoint` path is interpreted as a *directory*: each preset
    /// checkpoints to its own `NN-kernel-input.jsonl` file inside it, so
    /// a killed sweep resumes campaign-by-campaign.
    ///
    /// Golden executions are memoized across the sweep's campaigns: a
    /// [`GoldenCache`] (the caller's via [`RunOptions::golden_cache`], or
    /// a sweep-private one) lets presets sharing (kernel, input, device,
    /// scale, seed) reuse one golden run, and the cache's hit/miss delta
    /// for this invocation lands in [`SweepResult::golden_cache`].
    ///
    /// # Errors
    ///
    /// Propagates the first campaign failure, and
    /// [`AccelError::Corrupt`] when the checkpoint directory cannot be
    /// created.
    pub fn run_with(&self, options: &RunOptions) -> Result<SweepResult, AccelError> {
        if let Some(dir) = &options.checkpoint {
            std::fs::create_dir_all(dir).map_err(|e| {
                AccelError::Corrupt(format!("checkpoint directory {}: {e}", dir.display()))
            })?;
        }
        let cache = options
            .golden_cache
            .clone()
            .unwrap_or_else(GoldenCache::shared_default);
        let stats_before = cache.stats();
        let mut summaries = Vec::with_capacity(self.presets.len());
        let mut telemetry = Vec::with_capacity(self.presets.len());
        for (i, p) in self.presets.iter().enumerate() {
            let mut opts = options.clone();
            opts.golden_cache = Some(Arc::clone(&cache));
            opts.checkpoint = options.checkpoint.as_ref().map(|dir| {
                dir.join(format!(
                    "{i:02}-{}-{}.jsonl",
                    p.kernel.name(),
                    p.kernel.input_label()
                ))
            });
            let result = p.campaign(self.seed).run_with(&opts)?;
            telemetry.push(result.telemetry.clone());
            summaries.push(result.summary());
        }
        Ok(SweepResult {
            summaries,
            telemetry,
            golden_cache: cache.stats().since(&stats_before),
        })
    }
}

/// The collected summaries of a sweep, in preset order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    summaries: Vec<CampaignSummary>,
    telemetry: Vec<TelemetrySnapshot>,
    golden_cache: GoldenCacheStats,
}

impl SweepResult {
    /// All summaries.
    pub fn summaries(&self) -> &[CampaignSummary] {
        &self.summaries
    }

    /// Run telemetry per campaign, in preset order.
    pub fn telemetry(&self) -> &[TelemetrySnapshot] {
        &self.telemetry
    }

    /// How this sweep used the golden cache: hits are golden executions
    /// the sweep skipped because an earlier campaign (or another job on
    /// a shared cache) already computed them.
    pub fn golden_cache(&self) -> &GoldenCacheStats {
        &self.golden_cache
    }

    /// Total injections per second across the sweep's campaigns
    /// (replayed checkpoint records excluded).
    pub fn aggregate_throughput(&self) -> f64 {
        let completed: usize = self.telemetry.iter().map(|t| t.completed).sum();
        let secs: f64 = self.telemetry.iter().map(|t| t.elapsed.as_secs_f64()).sum();
        if secs <= 0.0 {
            0.0
        } else {
            completed as f64 / secs
        }
    }

    /// Summaries restricted to one kernel name.
    pub fn for_kernel(&self, kernel: &str) -> Vec<&CampaignSummary> {
        self.summaries
            .iter()
            .filter(|s| s.kernel == kernel)
            .collect()
    }

    /// Summaries restricted to one device name.
    pub fn for_device(&self, device: &str) -> Vec<&CampaignSummary> {
        self.summaries
            .iter()
            .filter(|s| s.device == device)
            .collect()
    }

    /// FIT growth over a subset: last total over first total, or `None`
    /// when fewer than two entries match or the first is zero.
    pub fn fit_growth(&self, kernel: &str, device: &str) -> Option<f64> {
        let subset: Vec<&CampaignSummary> = self
            .summaries
            .iter()
            .filter(|s| s.kernel == kernel && s.device == device)
            .collect();
        let first = subset.first()?.fit_all_total();
        let last = subset.last()?.fit_all_total();
        if subset.len() < 2 || first <= 0.0 {
            None
        } else {
            Some(last / first)
        }
    }

    /// The series of (input label, total FIT in a.u.) for one
    /// kernel/device — a figure-3-style line.
    pub fn fit_series(&self, kernel: &str, device: &str) -> Vec<(String, f64)> {
        self.summaries
            .iter()
            .filter(|s| s.kernel == kernel && s.device == device)
            .map(|s| (s.input.clone(), s.fit_all_total()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelSpec;
    use crate::presets::Preset;
    use radcrit_accel::config::DeviceConfig;

    fn tiny_sweep() -> Sweep {
        let device = DeviceConfig::kepler_k40().scaled(8).unwrap();
        let presets = vec![
            Preset {
                device: device.clone(),
                kernel: KernelSpec::Dgemm { n: 32 },
                injections: 60,
            },
            Preset {
                device: device.clone(),
                kernel: KernelSpec::Dgemm { n: 64 },
                injections: 40,
            },
            Preset {
                device,
                kernel: KernelSpec::HotSpot {
                    rows: 16,
                    cols: 16,
                    iterations: 4,
                },
                injections: 30,
            },
        ];
        Sweep::new(presets, 5)
    }

    #[test]
    fn sweep_collects_in_order() {
        let r = tiny_sweep().run().unwrap();
        assert_eq!(r.summaries().len(), 3);
        assert_eq!(r.summaries()[0].input, "32x32");
        assert_eq!(r.summaries()[1].input, "64x64");
        assert_eq!(r.summaries()[2].kernel, "hotspot");
    }

    #[test]
    fn selectors_filter() {
        let r = tiny_sweep().run().unwrap();
        assert_eq!(r.for_kernel("dgemm").len(), 2);
        assert_eq!(r.for_kernel("hotspot").len(), 1);
        assert_eq!(r.for_device("K40").len(), 3);
        assert_eq!(r.for_device("Xeon Phi").len(), 0);
    }

    #[test]
    fn sweep_collects_telemetry_per_campaign() {
        let r = tiny_sweep().run().unwrap();
        assert_eq!(r.telemetry().len(), 3);
        assert!(r.telemetry().iter().all(|t| t.completed > 0));
        assert!(r.aggregate_throughput() > 0.0);
    }

    #[test]
    fn sweep_checkpoints_into_a_directory_and_resumes() {
        let dir = std::env::temp_dir().join(format!("radcrit-sweep-ckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let sweep = tiny_sweep();
        let opts = RunOptions {
            checkpoint: Some(dir.clone()),
            resume: true,
            ..RunOptions::default()
        };
        let first = sweep.run_with(&opts).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 3);
        // A second pass replays every record from the checkpoints.
        let second = sweep.run_with(&opts).unwrap();
        assert_eq!(first.summaries(), second.summaries());
        assert!(second.telemetry().iter().all(|t| t.completed == 0));
        assert!(second.telemetry().iter().all(|t| t.replayed > 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_memoizes_shared_golden_runs_without_changing_science() {
        // Two presets share (kernel, input, device, seed): the second
        // must hit the sweep's golden cache, and the memoized summaries
        // must match campaigns run without any cache.
        let device = DeviceConfig::kepler_k40().scaled(8).unwrap();
        let shared = Preset {
            device: device.clone(),
            kernel: KernelSpec::Dgemm { n: 32 },
            injections: 20,
        };
        let other = Preset {
            device,
            kernel: KernelSpec::Dgemm { n: 64 },
            injections: 10,
        };
        let sweep = Sweep::new(vec![shared.clone(), other, shared], 5);
        let r = sweep.run().unwrap();
        let stats = r.golden_cache();
        assert!(stats.hits >= 1, "duplicated preset must hit: {stats:?}");
        assert_eq!(stats.misses, 2, "two distinct golden runs: {stats:?}");

        for (i, p) in sweep.presets().iter().enumerate() {
            let direct = p.campaign(5).run().unwrap().summary();
            assert_eq!(
                &direct,
                &r.summaries()[i],
                "memoization must not change preset {i}"
            );
        }
    }

    #[test]
    fn growth_and_series() {
        let r = tiny_sweep().run().unwrap();
        let g = r.fit_growth("dgemm", "K40").expect("two sizes present");
        assert!(g > 0.0);
        let series = r.fit_series("dgemm", "K40");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "32x32");
        assert!(r.fit_growth("hotspot", "K40").is_none(), "one entry only");
        assert!(r.fit_growth("dgemm", "Xeon Phi").is_none());
    }
}
