//! End-to-end tests for the observability layer: byte-identical event
//! streams, the golden event-sequence fixture, kill → resume index
//! invariants, metrics export, and the provenance breakdown behind
//! `obs-report`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};
use radcrit_obs::event::parse_event_line;
use radcrit_obs::{json, ProvenanceBreakdown};

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("radcrit-obs-{tag}-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn dgemm_campaign(injections: usize, seed: u64, workers: usize) -> Campaign {
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        injections,
        seed,
    )
    .with_workers(workers)
}

fn events_options(events: &Path) -> RunOptions {
    RunOptions {
        events_out: Some(events.to_path_buf()),
        events_sample: 1,
        ..RunOptions::default()
    }
}

#[test]
fn fixed_seed_event_streams_are_byte_identical() {
    // Same campaign, twice, with different worker counts: the writer
    // reorders completion-order blocks into index order and events carry
    // no wall-clock data, so the streams must match byte for byte.
    let a = temp_path("identical-a");
    let b = temp_path("identical-b");
    dgemm_campaign(24, 7, 1)
        .run_with(&events_options(&a))
        .unwrap();
    dgemm_campaign(24, 7, 3)
        .run_with(&events_options(&b))
        .unwrap();
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a, bytes_b, "event streams must be byte-identical");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn golden_event_sequence_stays_deterministic() {
    // A fixed-seed 8-injection campaign must emit exactly the event
    // sequence blessed into the golden file. Regenerate after an
    // intentional format change with:
    //     RADCRIT_BLESS=1 cargo test -p radcrit-campaign --test obs
    let out = temp_path("golden");
    dgemm_campaign(8, 11, 2)
        .run_with(&events_options(&out))
        .unwrap();
    let produced = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_file(&out).ok();

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/events_dgemm_seed11.jsonl");
    if std::env::var_os("RADCRIT_BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &produced).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with RADCRIT_BLESS=1 to create it",
            golden_path.display()
        )
    });
    assert_eq!(
        produced, golden,
        "event stream drifted from the golden fixture; if the change is \
         intentional, regenerate with RADCRIT_BLESS=1"
    );
}

#[test]
fn profiled_run_event_stream_is_byte_identical_to_the_golden_fixture() {
    // The phase profiler is wall-clock-only observability: running the
    // blessed 8-injection campaign with profiling on must reproduce the
    // committed golden event stream byte for byte — and the profile
    // itself must land beside it.
    let out = temp_path("profiled-golden");
    let profile = std::env::temp_dir().join(format!(
        "radcrit-obs-profiled-golden-{}.json",
        std::process::id()
    ));
    let mut options = events_options(&out);
    options.profile_out = Some(profile.clone());
    dgemm_campaign(8, 11, 2).run_with(&options).unwrap();
    let produced = std::fs::read_to_string(&out).unwrap();
    std::fs::remove_file(&out).ok();

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/events_dgemm_seed11.jsonl");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        produced, golden,
        "enabling the profiler must not change a single event byte"
    );

    let tree =
        radcrit_obs::ProfileTree::from_json(&std::fs::read_to_string(&profile).unwrap()).unwrap();
    assert!(!tree.is_empty(), "profile_out must hold a non-empty tree");
    std::fs::remove_file(&profile).ok();
}

#[test]
fn killed_run_resumes_without_duplicating_or_dropping_event_indices() {
    let total = 60;
    let campaign = dgemm_campaign(total, 7, 2);
    let checkpoint = temp_path("resume-ckpt");
    let events = temp_path("resume-events");

    // "Kill" after 25 records, then resume against the same files.
    campaign
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    let resumed = campaign
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            resume: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert!(resumed.is_complete());

    // Every injection index must own exactly one terminal event — either
    // its provenance record or a replay marker — and the stream must be
    // framed by run_begin/run_end.
    let text = std::fs::read_to_string(&events).unwrap();
    let lines: Vec<_> = text.lines().collect();
    assert_eq!(
        lines.first().map(|l| l.contains("\"e\":\"run_begin\"")),
        Some(true)
    );
    assert!(lines.last().unwrap().contains("\"e\":\"run_end\""));
    let mut terminal: HashMap<u64, Vec<String>> = HashMap::new();
    for line in &lines {
        let event = parse_event_line(line).unwrap();
        if event.kind == "provenance" || event.kind == "replay" {
            terminal
                .entry(event.index.expect("terminal event without index"))
                .or_default()
                .push(event.kind.clone());
        }
    }
    for index in 0..total as u64 {
        let kinds = terminal
            .get(&index)
            .unwrap_or_else(|| panic!("index {index} missing from the event stream"));
        assert_eq!(
            kinds.len(),
            1,
            "index {index} must appear exactly once, got {kinds:?}"
        );
    }
    assert_eq!(terminal.len(), total, "no stray indices");

    std::fs::remove_file(&checkpoint).ok();
    std::fs::remove_file(&events).ok();
}

#[test]
fn observability_does_not_perturb_records_and_metrics_are_parseable() {
    let campaign = dgemm_campaign(24, 7, 2);
    let plain = campaign.run().unwrap();

    let metrics =
        std::env::temp_dir().join(format!("radcrit-obs-metrics-{}.json", std::process::id()));
    let events = temp_path("passthrough");
    let observed = campaign
        .run_with(&RunOptions {
            metrics_out: Some(metrics.clone()),
            events_out: Some(events.clone()),
            events_sample: 4,
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(
        plain.records, observed.records,
        "tracing must not change the science"
    );

    // The JSON snapshot is one parseable line with the campaign counters.
    let snapshot = std::fs::read_to_string(&metrics).unwrap();
    let parsed = json::parse_line(snapshot.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap();
    let counters = json::as_obj(json::get(top, "counters").unwrap()).unwrap();
    assert!(
        counters
            .iter()
            .any(|(k, _)| k.starts_with("radcrit_campaign_outcomes_total")),
        "outcome counters missing from {snapshot}"
    );

    // The Prometheus rendering sits next to it and scrapes as text.
    let prom = std::fs::read_to_string(metrics.with_extension("prom")).unwrap();
    assert!(prom.contains("# TYPE"), "{prom}");
    assert!(prom.contains("radcrit_injection_latency_bucket"), "{prom}");
    assert!(prom.contains("le=\"+Inf\""), "{prom}");

    // Sampling stride 4 still yields a provenance event per injection.
    let breakdown = ProvenanceBreakdown::from_events_path(&events).unwrap();
    let runs: u64 = breakdown.sites().values().map(|s| s.runs).sum();
    assert_eq!(runs, 24);

    std::fs::remove_file(&metrics).ok();
    std::fs::remove_file(metrics.with_extension("prom")).ok();
    std::fs::remove_file(&events).ok();
}

#[test]
fn provenance_breakdown_attributes_spatial_classes_to_sites() {
    // The acceptance bar for `obs-report`: a DGEMM campaign must
    // attribute at least two distinct spatial classes to concrete fault
    // sites.
    let events = temp_path("report");
    dgemm_campaign(120, 7, 2)
        .run_with(&events_options(&events))
        .unwrap();
    let breakdown = ProvenanceBreakdown::from_events_path(&events).unwrap();
    assert!(
        breakdown.sites().len() >= 2,
        "expected several fault sites, got {:?}",
        breakdown.sites().keys().collect::<Vec<_>>()
    );
    let classes = breakdown.class_totals();
    assert!(
        classes.len() >= 2,
        "expected >=2 spatial classes, got {classes:?}"
    );
    // Every class total is attributable to at least one concrete site.
    for class in classes.keys() {
        assert!(
            breakdown
                .sites()
                .iter()
                .any(|(site, s)| !site.is_empty() && s.classes.contains_key(class)),
            "class {class} not attributed to any site"
        );
    }
    let table = breakdown.render();
    assert!(table.contains("site"), "{table}");
    std::fs::remove_file(&events).ok();
}
