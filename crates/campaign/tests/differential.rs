//! Differential injection execution must be invisible to the science:
//! a run resumed from a golden-prefix snapshot is **bit-identical** to a
//! full run — output, strike resolutions, and execution profile — for
//! every strike target, on both paper devices, across the paper
//! kernels; the dirty-region sparse diff produces the identical
//! [`ErrorReport`]; and a kill → resume campaign with snapshots enabled
//! still reconstructs the uninterrupted summary bit for bit.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::engine::Engine;
use radcrit_accel::snapshot::SnapshotPolicy;
use radcrit_accel::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
use radcrit_campaign::runner::{compare_with_logical_coords, compare_with_logical_coords_sparse};
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};

/// Every [`StrikeTarget`] variant, including each scheduler effect.
fn all_targets() -> Vec<StrikeTarget> {
    vec![
        StrikeTarget::L2 { mask: 1 << 61 },
        StrikeTarget::L1 { mask: 1 << 52 },
        StrikeTarget::RegisterFile {
            mask: 1 << 63,
            op_index: 3,
        },
        StrikeTarget::VectorRegister {
            mask: 1 << 40,
            lanes: 8,
            op_index: 1,
        },
        StrikeTarget::Fpu {
            mask: 1 << 62,
            op_index: 2,
        },
        StrikeTarget::Sfu {
            scale: 4.0,
            op_index: 0,
        },
        StrikeTarget::CoreControl {
            elems: 4,
            store_index: 1,
        },
        StrikeTarget::UnitGarble,
        StrikeTarget::Scheduler(SchedulerEffect::SkipTile),
        StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
        StrikeTarget::Scheduler(SchedulerEffect::GarbleTile),
    ]
}

fn devices() -> Vec<DeviceConfig> {
    vec![DeviceConfig::kepler_k40(), DeviceConfig::xeon_phi_3120a()]
}

fn kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec::Dgemm { n: 32 },
        KernelSpec::HotSpot {
            rows: 16,
            cols: 16,
            iterations: 4,
        },
        KernelSpec::LavaMd {
            grid: 3,
            particles: 4,
        },
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Mismatches keyed for bit-exact comparison (`Mismatch` holds `f64`s,
/// and a NaN read would defeat plain `PartialEq` even when the reports
/// agree bit for bit).
fn mismatch_bits(report: &radcrit_core::report::ErrorReport) -> Vec<([usize; 3], u64, u64)> {
    report
        .mismatches()
        .iter()
        .map(|m| (m.coord(), m.expected().to_bits(), m.read().to_bits()))
        .collect()
}

/// The tentpole invariant: for every strike target on every device and
/// kernel, resuming from a golden-prefix snapshot yields the same
/// `RunOutcome` a full run produces — outputs compared bit for bit (so
/// NaNs count), resolutions and profile by structural equality — and
/// the dirty region drives a sparse diff equal to the full diff.
#[test]
fn resumed_runs_are_bit_identical_to_full_runs_everywhere() {
    for device in devices() {
        for spec in kernels() {
            let engine = Engine::new(device.clone());
            let mut kernel = spec.build(7).expect("kernel builds");
            let policy = SnapshotPolicy {
                stride: 2,
                max_bytes: 0,
            };
            let (golden, snaps) = engine
                .golden_snapshotted(kernel.as_mut(), &policy)
                .expect("golden run");
            assert!(
                !snaps.is_empty(),
                "{spec:?} on {:?} captured no snapshots",
                device.kind()
            );
            let tiles = kernel.tile_count();
            for (t, target) in all_targets().into_iter().enumerate() {
                for at_tile in [0, tiles / 2, tiles - 1] {
                    let strike = StrikeSpec::new(at_tile, target);
                    let seed = 1000 + t as u64;
                    let mut rng_full = StdRng::seed_from_u64(seed);
                    let full = engine
                        .run(kernel.as_mut(), &strike, &mut rng_full)
                        .expect("full run");
                    let mut rng_diff = StdRng::seed_from_u64(seed);
                    let diff = engine
                        .run_from(kernel.as_mut(), &strike, &mut rng_diff, &snaps)
                        .expect("resumed run");
                    let ctx = format!(
                        "{spec:?} on {:?}, {target:?} at tile {at_tile}",
                        device.kind()
                    );
                    assert_eq!(bits(&full.output), bits(&diff.output), "output: {ctx}");
                    assert_eq!(full.resolutions, diff.resolutions, "resolutions: {ctx}");
                    assert_eq!(full.profile, diff.profile, "profile: {ctx}");
                    assert_eq!(
                        full.strike_delivered, diff.strike_delivered,
                        "delivery: {ctx}"
                    );

                    let dirty = diff.dirty.as_ref().expect("resumed run has a dirty region");
                    let sparse = compare_with_logical_coords_sparse(
                        &golden.output,
                        &diff.output,
                        kernel.as_ref(),
                        dirty,
                    );
                    let dense =
                        compare_with_logical_coords(&golden.output, &full.output, kernel.as_ref());
                    assert_eq!(
                        mismatch_bits(&sparse),
                        mismatch_bits(&dense),
                        "sparse vs dense diff: {ctx}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized corner of the same invariant: arbitrary strike tiles,
    /// RNG seeds, masks and op indices on DGEMM/K40.
    #[test]
    fn resumed_dgemm_runs_are_bit_identical(
        at_tile in 0usize..4,
        seed in 0u64..1 << 32,
        bit in 0u32..64,
        op_index in 0u64..600,
        target_kind in 0usize..4,
    ) {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut kernel = KernelSpec::Dgemm { n: 32 }.build(seed).expect("kernel builds");
        let (_, snaps) = engine
            .golden_snapshotted(kernel.as_mut(), &SnapshotPolicy::default())
            .expect("golden run");
        let mask = 1u64 << bit;
        let target = match target_kind {
            0 => StrikeTarget::L2 { mask },
            1 => StrikeTarget::RegisterFile { mask, op_index },
            2 => StrikeTarget::Fpu { mask, op_index },
            _ => StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
        };
        let strike = StrikeSpec::new(at_tile, target);
        let mut rng_full = StdRng::seed_from_u64(seed);
        let full = engine.run(kernel.as_mut(), &strike, &mut rng_full).expect("full run");
        let mut rng_diff = StdRng::seed_from_u64(seed);
        let diff = engine
            .run_from(kernel.as_mut(), &strike, &mut rng_diff, &snaps)
            .expect("resumed run");
        prop_assert_eq!(bits(&full.output), bits(&diff.output));
        prop_assert_eq!(full.resolutions, diff.resolutions);
        prop_assert_eq!(full.profile, diff.profile);
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "radcrit-differential-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// Kill → resume with snapshots enabled (the default): the checkpointed
/// summary stays bit-identical to an uninterrupted differential run,
/// and both match a run with differential execution forced off.
#[test]
fn killed_differential_campaign_resumes_to_an_identical_summary() {
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        60,
        7,
    )
    .with_workers(2);

    let uninterrupted = campaign.run().unwrap();
    let full_exec = campaign
        .run_with(&RunOptions {
            full_execution: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(
        uninterrupted.records, full_exec.records,
        "differential execution changed the science"
    );

    let path = temp_path("kill-resume");
    let partial = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(partial.records.len(), 25);
    assert!(!partial.is_complete());

    let resumed = campaign.resume(&path).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.records, uninterrupted.records);
    assert_eq!(resumed.summary(), uninterrupted.summary());
    std::fs::remove_file(&path).ok();
}
