//! Differential injection execution must be invisible to the science:
//! a run resumed from a golden-prefix snapshot is **bit-identical** to a
//! full run — output, strike resolutions, and execution profile — for
//! every strike target, on both paper devices, across the paper
//! kernels; the dirty-region sparse diff produces the identical
//! [`ErrorReport`]; and a kill → resume campaign with snapshots enabled
//! still reconstructs the uninterrupted summary bit for bit.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::engine::Engine;
use radcrit_accel::snapshot::SnapshotPolicy;
use radcrit_accel::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};
use radcrit_campaign::runner::{compare_with_logical_coords, compare_with_logical_coords_sparse};
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};

/// Every [`StrikeTarget`] variant, including each scheduler effect.
fn all_targets() -> Vec<StrikeTarget> {
    vec![
        StrikeTarget::L2 { mask: 1 << 61 },
        StrikeTarget::L1 { mask: 1 << 52 },
        StrikeTarget::RegisterFile {
            mask: 1 << 63,
            op_index: 3,
        },
        StrikeTarget::VectorRegister {
            mask: 1 << 40,
            lanes: 8,
            op_index: 1,
        },
        StrikeTarget::Fpu {
            mask: 1 << 62,
            op_index: 2,
        },
        StrikeTarget::Sfu {
            scale: 4.0,
            op_index: 0,
        },
        StrikeTarget::CoreControl {
            elems: 4,
            store_index: 1,
        },
        StrikeTarget::UnitGarble,
        StrikeTarget::Scheduler(SchedulerEffect::SkipTile),
        StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
        StrikeTarget::Scheduler(SchedulerEffect::GarbleTile),
    ]
}

fn devices() -> Vec<DeviceConfig> {
    vec![DeviceConfig::kepler_k40(), DeviceConfig::xeon_phi_3120a()]
}

fn kernels() -> Vec<KernelSpec> {
    vec![
        KernelSpec::Dgemm { n: 32 },
        KernelSpec::HotSpot {
            rows: 16,
            cols: 16,
            iterations: 4,
        },
        KernelSpec::LavaMd {
            grid: 3,
            particles: 4,
        },
    ]
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Mismatches keyed for bit-exact comparison (`Mismatch` holds `f64`s,
/// and a NaN read would defeat plain `PartialEq` even when the reports
/// agree bit for bit).
fn mismatch_bits(report: &radcrit_core::report::ErrorReport) -> Vec<([usize; 3], u64, u64)> {
    report
        .mismatches()
        .iter()
        .map(|m| (m.coord(), m.expected().to_bits(), m.read().to_bits()))
        .collect()
}

/// The tentpole invariant: for every strike target on every device and
/// kernel, resuming from a golden-prefix snapshot yields the same
/// `RunOutcome` a full run produces — outputs compared bit for bit (so
/// NaNs count), resolutions and profile by structural equality — and
/// the dirty region drives a sparse diff equal to the full diff.
#[test]
fn resumed_runs_are_bit_identical_to_full_runs_everywhere() {
    for device in devices() {
        for spec in kernels() {
            let engine = Engine::new(device.clone());
            let mut kernel = spec.build(7).expect("kernel builds");
            let policy = SnapshotPolicy {
                stride: 2,
                max_bytes: 0,
            };
            let (golden, snaps) = engine
                .golden_snapshotted(kernel.as_mut(), &policy)
                .expect("golden run");
            assert!(
                !snaps.is_empty(),
                "{spec:?} on {:?} captured no snapshots",
                device.kind()
            );
            let tiles = kernel.tile_count();
            for (t, target) in all_targets().into_iter().enumerate() {
                for at_tile in [0, tiles / 2, tiles - 1] {
                    let strike = StrikeSpec::new(at_tile, target);
                    let seed = 1000 + t as u64;
                    let mut rng_full = StdRng::seed_from_u64(seed);
                    let full = engine
                        .run(kernel.as_mut(), &strike, &mut rng_full)
                        .expect("full run");
                    let mut rng_diff = StdRng::seed_from_u64(seed);
                    let diff = engine
                        .run_from(kernel.as_mut(), &strike, &mut rng_diff, &snaps)
                        .expect("resumed run");
                    let ctx = format!(
                        "{spec:?} on {:?}, {target:?} at tile {at_tile}",
                        device.kind()
                    );
                    assert_eq!(bits(&full.output), bits(&diff.output), "output: {ctx}");
                    assert_eq!(full.resolutions, diff.resolutions, "resolutions: {ctx}");
                    assert_eq!(full.profile, diff.profile, "profile: {ctx}");
                    assert_eq!(
                        full.strike_delivered, diff.strike_delivered,
                        "delivery: {ctx}"
                    );

                    let dirty = diff.dirty.as_ref().expect("resumed run has a dirty region");
                    let sparse = compare_with_logical_coords_sparse(
                        &golden.output,
                        &diff.output,
                        kernel.as_ref(),
                        dirty,
                    );
                    let dense =
                        compare_with_logical_coords(&golden.output, &full.output, kernel.as_ref());
                    assert_eq!(
                        mismatch_bits(&sparse),
                        mismatch_bits(&dense),
                        "sparse vs dense diff: {ctx}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized corner of the same invariant: arbitrary strike tiles,
    /// RNG seeds, masks and op indices on DGEMM/K40.
    #[test]
    fn resumed_dgemm_runs_are_bit_identical(
        at_tile in 0usize..4,
        seed in 0u64..1 << 32,
        bit in 0u32..64,
        op_index in 0u64..600,
        target_kind in 0usize..4,
    ) {
        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut kernel = KernelSpec::Dgemm { n: 32 }.build(seed).expect("kernel builds");
        let (_, snaps) = engine
            .golden_snapshotted(kernel.as_mut(), &SnapshotPolicy::default())
            .expect("golden run");
        let mask = 1u64 << bit;
        let target = match target_kind {
            0 => StrikeTarget::L2 { mask },
            1 => StrikeTarget::RegisterFile { mask, op_index },
            2 => StrikeTarget::Fpu { mask, op_index },
            _ => StrikeTarget::Scheduler(SchedulerEffect::RedirectTile),
        };
        let strike = StrikeSpec::new(at_tile, target);
        let mut rng_full = StdRng::seed_from_u64(seed);
        let full = engine.run(kernel.as_mut(), &strike, &mut rng_full).expect("full run");
        let mut rng_diff = StdRng::seed_from_u64(seed);
        let diff = engine
            .run_from(kernel.as_mut(), &strike, &mut rng_diff, &snaps)
            .expect("resumed run");
        prop_assert_eq!(bits(&full.output), bits(&diff.output));
        prop_assert_eq!(full.resolutions, diff.resolutions);
        prop_assert_eq!(full.profile, diff.profile);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The batch scheduler's compare-setup reuse: one bucket's
    /// precomputed dirty-region union (the forked run's own store log ∪
    /// the bucket's golden suffix spans) must make the sparse compare
    /// equivalent to a full-buffer compare for *every* injection in the
    /// bucket — random masks, sites and op indices.
    #[test]
    fn bucket_dirty_union_makes_sparse_compare_exhaustive(
        seed in 0u64..1 << 32,
        bit in 0u32..64,
        target_kind in 0usize..3,
    ) {
        use radcrit_accel::engine::RunScratch;
        use radcrit_core::compare::{compare_slices, compare_slices_sparse};

        let engine = Engine::new(DeviceConfig::kepler_k40());
        let mut kernel = KernelSpec::Dgemm { n: 32 }.build(7).expect("kernel builds");
        let policy = SnapshotPolicy { stride: 2, max_bytes: 0 };
        let (golden, snaps) = engine
            .golden_snapshotted(kernel.as_mut(), &policy)
            .expect("golden run");
        let tiles = kernel.tile_count();
        // One bucket: every strike tile sharing the snapshot nearest the
        // middle of the run, executed fork-by-fork off one warm restore
        // exactly as the runner does.
        let resume = snaps.resume_tile(tiles / 2).expect("snapshot exists");
        let spans: Vec<(usize, usize)> = snaps.golden_spans_from(resume).collect();
        let mut scratch = RunScratch::new();
        let mut warm = engine
            .warm_restore(kernel.as_mut(), &snaps, tiles / 2, &mut scratch, None)
            .expect("restore")
            .expect("dgemm is resumable");
        let mask = 1u64 << bit;
        for at_tile in resume..tiles {
            let target = match target_kind {
                0 => StrikeTarget::L2 { mask },
                1 => StrikeTarget::Fpu { mask, op_index: seed % 200 },
                _ => StrikeTarget::RegisterFile { mask, op_index: seed % 97 },
            };
            let strike = StrikeSpec::new(at_tile, target);
            engine
                .warm_advance(kernel.as_mut(), &mut warm, at_tile)
                .expect("advance");
            let mut rng = StdRng::seed_from_u64(seed ^ at_tile as u64);
            let fork = engine
                .run_forked(kernel.as_mut(), &strike, &mut rng, &warm, &spans, &mut scratch)
                .expect("forked run");
            let dirty = fork.dirty.as_ref().expect("forked run has a dirty region");
            let shape = kernel.logical_shape();
            let dense = compare_slices(&golden.output, &fork.output, shape).expect("dense");
            let sparse = compare_slices_sparse(&golden.output, &fork.output, shape, dirty)
                .expect("sparse");
            prop_assert_eq!(mismatch_bits(&sparse), mismatch_bits(&dense));
        }
    }
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "radcrit-differential-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// Kill → resume with snapshots enabled (the default): the checkpointed
/// summary stays bit-identical to an uninterrupted differential run,
/// and both match a run with differential execution forced off.
#[test]
fn killed_differential_campaign_resumes_to_an_identical_summary() {
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        60,
        7,
    )
    .with_workers(2);

    let uninterrupted = campaign.run().unwrap();
    let full_exec = campaign
        .run_with(&RunOptions {
            full_execution: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(
        uninterrupted.records, full_exec.records,
        "differential execution changed the science"
    );

    let path = temp_path("kill-resume");
    let partial = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(partial.records.len(), 25);
    assert!(!partial.is_complete());

    let resumed = campaign.resume(&path).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.records, uninterrupted.records);
    assert_eq!(resumed.summary(), uninterrupted.summary());
    std::fs::remove_file(&path).ok();
}

/// The batch scheduler is invisible to the science: records, the event
/// stream's bytes, and the summary are bit-identical to the unbatched
/// differential path and to full execution, across all three kernels.
#[test]
fn batched_campaigns_are_bit_identical_to_unbatched_across_kernels() {
    for spec in kernels() {
        let campaign = Campaign::new(DeviceConfig::kepler_k40(), spec, 50, 7).with_workers(3);
        let run = |no_batch: bool, full_execution: bool, tag: &str| {
            let events = temp_path(&format!("batch-events-{tag}"));
            let result = campaign
                .run_with(&RunOptions {
                    no_batch,
                    full_execution,
                    events_out: Some(events.clone()),
                    events_sample: 1,
                    ..RunOptions::default()
                })
                .unwrap();
            let stream = std::fs::read(&events).unwrap();
            std::fs::remove_file(&events).ok();
            (result, stream)
        };
        let (batched, batched_events) = run(false, false, "on");
        let (unbatched, unbatched_events) = run(true, false, "off");
        let (full, full_events) = run(false, true, "full");
        assert_eq!(batched.records, unbatched.records, "{spec:?} records");
        assert_eq!(batched.records, full.records, "{spec:?} records vs full");
        assert_eq!(batched_events, unbatched_events, "{spec:?} event stream");
        assert_eq!(batched_events, full_events, "{spec:?} events vs full");
        assert_eq!(batched.summary(), unbatched.summary(), "{spec:?} summary");
        assert_eq!(
            batched.summary(),
            full.summary(),
            "{spec:?} summary vs full"
        );
    }
}

/// The SIMD execution core is invisible to the science: a campaign run
/// with dispatch pinned to the scalar reference (`--scalar`) produces
/// records, event-stream bytes, and a summary bit-identical to the
/// default vectorized run, across all kernels — including a resumed
/// run whose checkpoint was written by the *other* executor.
#[test]
fn scalar_pinned_campaigns_are_bit_identical_to_vectorized() {
    for spec in kernels() {
        let campaign = Campaign::new(DeviceConfig::kepler_k40(), spec, 50, 7).with_workers(3);
        let run = |force_scalar: bool, tag: &str| {
            let events = temp_path(&format!("scalar-events-{tag}"));
            let result = campaign
                .run_with(&RunOptions {
                    force_scalar,
                    events_out: Some(events.clone()),
                    events_sample: 1,
                    ..RunOptions::default()
                })
                .unwrap();
            let stream = std::fs::read(&events).unwrap();
            std::fs::remove_file(&events).ok();
            (result, stream)
        };
        let (vectorized, vec_events) = run(false, "off");
        let (pinned, pin_events) = run(true, "on");
        assert_eq!(vectorized.records, pinned.records, "{spec:?} records");
        assert_eq!(vec_events, pin_events, "{spec:?} event stream");
        assert_eq!(vectorized.summary(), pinned.summary(), "{spec:?} summary");
        assert_eq!(
            vectorized.summary().to_json(),
            pinned.summary().to_json(),
            "{spec:?} summary JSON bytes"
        );
    }
}

/// A campaign killed mid-run under one executor and resumed under the
/// other reconstructs the uninterrupted summary: checkpoints are
/// ISA-portable.
#[test]
fn checkpoint_resumes_across_executors() {
    let spec = KernelSpec::Dgemm { n: 48 };
    let campaign = Campaign::new(DeviceConfig::kepler_k40(), spec, 40, 11).with_workers(2);
    let reference = campaign
        .run_with(&RunOptions {
            force_scalar: true,
            ..RunOptions::default()
        })
        .unwrap();
    let path = temp_path("cross-isa-resume");
    let partial = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            budget: Some(17),
            ..RunOptions::default()
        })
        .unwrap();
    assert!(!partial.is_complete());
    let resumed = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            resume: true,
            force_scalar: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.records, reference.records);
    assert_eq!(resumed.summary(), reference.summary());
    std::fs::remove_file(&path).ok();
}

/// Under the batch scheduler the checkpoint records completion out of
/// plan order; kill → resume must still reconstruct the uninterrupted
/// (and unbatched) summary bit for bit.
#[test]
fn killed_batched_campaign_resumes_out_of_plan_order_to_an_identical_summary() {
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        60,
        7,
    );

    let uninterrupted = campaign.clone().with_workers(2).run().unwrap();
    let unbatched = campaign
        .clone()
        .with_workers(2)
        .run_with(&RunOptions {
            no_batch: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(
        uninterrupted.records, unbatched.records,
        "the batch scheduler changed the science"
    );

    let path = temp_path("batched-kill-resume");
    // One worker makes the checkpoint's line order deterministic: the
    // bucket-sorted execution order. Budget truncation happens before
    // the sort, so the completed *set* is still {0..25} — identical to
    // an unbatched budget stop — while the *order* the checkpoint
    // records completion in genuinely leaves plan order.
    let partial = campaign
        .clone()
        .with_workers(1)
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(partial.records.len(), 25);
    let completed: Vec<usize> = partial.records.iter().map(|r| r.index).collect();
    assert_eq!(
        completed,
        (0..25).collect::<Vec<_>>(),
        "a batched budget stop must complete the same index subset as an unbatched one"
    );
    let checkpoint_order: Vec<u64> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("{\"i\":")?;
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .collect();
    assert_eq!(checkpoint_order.len(), 25, "one line per completed index");
    let mut sorted = checkpoint_order.clone();
    sorted.sort_unstable();
    assert_ne!(
        checkpoint_order, sorted,
        "the checkpoint should record completion in bucket order, not plan order"
    );

    let resumed = campaign.with_workers(2).resume(&path).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.records, uninterrupted.records);
    assert_eq!(resumed.summary(), uninterrupted.summary());
    std::fs::remove_file(&path).ok();
}
