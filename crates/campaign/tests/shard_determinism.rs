//! Shard-range determinism: the invariant the federated fabric rests
//! on. A campaign split into K contiguous index ranges and run shard by
//! shard must (a) produce per-record results bit-identical to the same
//! indices of the one-shot run, and (b) fold — all shard event streams
//! into one `CriticalityAggregator` — to the byte-identical one-shot
//! `CampaignSummary`. Checked for K ∈ {1, 2, 3, 7} and, as a property,
//! for arbitrary contiguous partitions and fold orders.

use std::path::PathBuf;

use proptest::prelude::*;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, CampaignResult, CampaignSummary, KernelSpec, RunOptions};
use radcrit_obs::CriticalityAggregator;

const INJECTIONS: usize = 40;

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "radcrit-shard-det-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn campaign() -> Campaign {
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        INJECTIONS,
        23,
    )
    .with_workers(2)
}

/// Splits `0..n` into `k` contiguous near-equal ranges.
fn split(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    assert_eq!(start, n);
    ranges
}

/// The one-shot baseline, generated once per process: the full result
/// plus its event stream's lines.
fn baseline() -> &'static (CampaignResult, Vec<String>) {
    use std::sync::OnceLock;
    static BASE: OnceLock<(CampaignResult, Vec<String>)> = OnceLock::new();
    BASE.get_or_init(|| {
        let events = temp_path("baseline");
        let result = campaign()
            .run_with(&RunOptions {
                events_out: Some(events.clone()),
                events_sample: 1,
                ..RunOptions::default()
            })
            .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        std::fs::remove_file(&events).ok();
        (result, text.lines().map(str::to_owned).collect())
    })
}

/// Runs one shard with its own event stream, returning the result and
/// the stream's lines.
fn run_shard(range: (usize, usize), tag: &str) -> (CampaignResult, Vec<String>) {
    let events = temp_path(tag);
    let result = campaign()
        .run_with(&RunOptions {
            events_out: Some(events.clone()),
            events_sample: 1,
            shard: Some(range),
            ..RunOptions::default()
        })
        .unwrap();
    let text = std::fs::read_to_string(&events).unwrap();
    std::fs::remove_file(&events).ok();
    (result, text.lines().map(str::to_owned).collect())
}

/// Folds shard streams (in the given order) into one aggregate summary.
fn merged_summary(shards: &[Vec<String>]) -> CampaignSummary {
    let mut agg = CriticalityAggregator::new();
    for lines in shards {
        for line in lines {
            agg.fold_line(line).unwrap();
        }
    }
    CampaignSummary::from_analytics(&agg)
}

#[test]
fn k_way_sharded_runs_fold_to_the_one_shot_summary() {
    let (full, _) = baseline();
    let one_shot = full.summary().to_json();
    for k in [1usize, 2, 3, 7] {
        let mut shard_streams = Vec::new();
        for (s, range) in split(INJECTIONS, k).into_iter().enumerate() {
            let (result, lines) = run_shard(range, &format!("k{k}s{s}"));
            assert!(result.is_complete(), "shard {range:?} of K={k} incomplete");
            assert_eq!(
                result.records.len(),
                range.1 - range.0,
                "shard {range:?} record count"
            );
            // Per-record bit-identity against the one-shot run's slice.
            assert_eq!(
                result.records,
                full.records[range.0..range.1],
                "shard {range:?} records differ from the one-shot slice"
            );
            shard_streams.push(lines);
        }
        assert_eq!(
            merged_summary(&shard_streams).to_json(),
            one_shot,
            "K={k} sharded fold must equal the one-shot summary byte for byte"
        );
    }
}

#[test]
fn shard_runs_resume_through_the_checkpoint_path() {
    // The fabric's redispatch path: a shard budget-stopped mid-range
    // resumes (possibly on another host) via checkpoint + events files
    // and still completes to the exact slice.
    let (full, _) = baseline();
    let range = (10usize, 30usize);
    let checkpoint = temp_path("resume-ckpt");
    let events = temp_path("resume-events");
    let partial = campaign()
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            shard: Some(range),
            budget: Some(8),
            ..RunOptions::default()
        })
        .unwrap();
    assert!(!partial.is_complete());
    assert_eq!(partial.records.len(), 8);
    let resumed = campaign()
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            shard: Some(range),
            resume: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert!(resumed.is_complete(), "resumed shard must complete");
    assert_eq!(resumed.records, full.records[range.0..range.1]);
    std::fs::remove_file(&checkpoint).ok();
    std::fs::remove_file(&events).ok();
}

#[test]
fn out_of_range_shards_are_rejected() {
    for bad in [(5usize, 5usize), (30, 10), (0, INJECTIONS + 1)] {
        let err = campaign().run_with(&RunOptions {
            shard: Some(bad),
            ..RunOptions::default()
        });
        assert!(err.is_err(), "shard {bad:?} must be rejected");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any contiguous 3-way partition, folded in any of the 6 shard
    /// orders, reproduces the one-shot summary — the coordinator merges
    /// streams in arrival order, which the fold must not care about.
    #[test]
    fn arbitrary_partition_and_fold_order_reproduce_the_summary(
        a in 1usize..INJECTIONS - 1,
        b in 1usize..INJECTIONS - 1,
        perm in 0usize..6,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assume!(lo > 0 && hi < INJECTIONS && lo != hi);
        let ranges = [(0, lo), (lo, hi), (hi, INJECTIONS)];
        let (full, _) = baseline();
        let one_shot = full.summary().to_json();
        let streams: Vec<Vec<String>> = ranges
            .iter()
            .enumerate()
            .map(|(i, &r)| run_shard(r, &format!("prop{lo}-{hi}-{i}")).1)
            .collect();
        let orders = [
            [0usize, 1, 2], [0, 2, 1], [1, 0, 2],
            [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let order = orders[perm];
        let shuffled: Vec<Vec<String>> =
            order.iter().map(|&i| streams[i].clone()).collect();
        prop_assert_eq!(merged_summary(&shuffled).to_json(), one_shot);
    }
}
