//! End-to-end resilience tests for the hardened campaign runner: kill +
//! resume bit-identity, watchdog hang conversion, and typed panic
//! propagation.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::error::AccelError;
use radcrit_campaign::runner::WATCHDOG_SITE;
use radcrit_campaign::{Campaign, InjectionOutcome, KernelSpec, RunOptions};
use radcrit_kernels::pathological::Failure;

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "radcrit-resilience-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn dgemm_campaign() -> Campaign {
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        60,
        7,
    )
    .with_workers(2)
}

#[test]
fn killed_campaign_resumes_to_an_identical_summary() {
    let campaign = dgemm_campaign();
    let uninterrupted = campaign.run().unwrap();

    // "Kill" the campaign mid-run: the budget stops it after 25 records,
    // exactly as if the process had died there — the checkpoint is the
    // only survivor.
    let path = temp_path("resume");
    let partial = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            resume: false,
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(partial.records.len(), 25);
    assert!(!partial.is_complete());
    assert_eq!(partial.telemetry.completed, 25);

    let resumed = campaign.resume(&path).unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.telemetry.replayed, 25);
    assert_eq!(resumed.telemetry.completed, 60 - 25);
    assert_eq!(resumed.records, uninterrupted.records);
    assert_eq!(resumed.summary(), uninterrupted.summary());

    // Resuming a finished campaign replays everything and runs nothing.
    let replayed = campaign.resume(&path).unwrap();
    assert_eq!(replayed.telemetry.completed, 0);
    assert_eq!(replayed.telemetry.replayed, 60);
    assert_eq!(replayed.summary(), uninterrupted.summary());

    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_a_checkpoint_from_another_campaign() {
    let path = temp_path("mismatch");
    dgemm_campaign()
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            budget: Some(5),
            ..RunOptions::default()
        })
        .unwrap();
    let mut other = dgemm_campaign();
    other.seed = 8;
    let err = other.resume(&path).unwrap_err();
    assert!(matches!(err, AccelError::Corrupt(_)), "{err:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn hanging_injection_is_recorded_within_the_deadline() {
    let deadline = Duration::from_millis(200);
    // One worker, `after: 1`: its first injection executes normally, the
    // next one wedges inside `execute_tile` until the watchdog fires and
    // a replacement worker (fresh instance, fresh execution budget)
    // finishes the campaign.
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Pathological {
            n: 64,
            after: 1,
            mode: Failure::Hang,
        },
        4,
        2,
    )
    .with_workers(1)
    .with_deadline(deadline);

    let t0 = Instant::now();
    let result = campaign.run().unwrap();
    let elapsed = t0.elapsed();

    assert!(result.is_complete(), "campaign must finish despite hangs");
    let watchdog_hangs: Vec<_> = result
        .records
        .iter()
        .filter(|r| r.site == WATCHDOG_SITE)
        .collect();
    assert!(
        !watchdog_hangs.is_empty(),
        "at least one injection must have hung; records: {:?}",
        result.records
    );
    for r in &watchdog_hangs {
        assert_eq!(r.outcome, InjectionOutcome::Hang);
    }
    assert_eq!(
        result.telemetry.watchdog_hangs,
        watchdog_hangs.len(),
        "telemetry and records must agree"
    );
    // Wall time is bounded by one deadline per hang plus scheduling
    // slack — nowhere near the kernel's 20 s escape hatch.
    assert!(
        elapsed < Duration::from_secs(10),
        "watchdog must cut hangs off quickly, took {elapsed:?}"
    );
}

#[test]
fn panicking_injection_returns_a_typed_error() {
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Pathological {
            n: 64,
            after: 1,
            mode: Failure::Panic,
        },
        4,
        2,
    )
    .with_workers(1);

    let err = campaign.run().unwrap_err();
    match err {
        AccelError::WorkerPanic(msg) => {
            assert!(
                msg.contains("pathological kernel panicked"),
                "panic payload must be preserved: {msg}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

#[test]
fn first_error_wins_and_dispatch_stops() {
    // Four workers racing into a panicking kernel: whatever happens, the
    // reported error must be a WorkerPanic (never a poisoned-lock abort)
    // and the campaign must terminate.
    let campaign = Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Pathological {
            n: 64,
            after: 1,
            mode: Failure::Panic,
        },
        64,
        2,
    )
    .with_workers(4);

    let err = campaign.run().unwrap_err();
    assert!(matches!(err, AccelError::WorkerPanic(_)), "{err:?}");
}

#[test]
fn checkpointing_does_not_change_the_records() {
    let campaign = dgemm_campaign();
    let plain = campaign.run().unwrap();
    let path = temp_path("passthrough");
    let checkpointed = campaign
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(plain.records, checkpointed.records);
    // And the file round-trips to the same records.
    let read = radcrit_campaign::checkpoint::read_records(&path, &campaign).unwrap();
    let mut sorted = read;
    sorted.sort_by_key(|r| r.index);
    assert_eq!(sorted, plain.records);
    std::fs::remove_file(&path).ok();
}
