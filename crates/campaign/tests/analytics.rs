//! The analytics layer's hard invariants, end to end:
//!
//! * folding a finished campaign's event stream reproduces
//!   `CampaignSummary` byte for byte — including across kill → resume
//!   cycles, whose replayed indices fold from enriched `replay` markers;
//! * folding any prefix of a stream and then the whole stream again
//!   equals the one-shot fold (the SSE-resume / `Last-Event-ID` shape);
//! * `--trace-out` produces a Chrome trace whose phase structure matches
//!   the run's records and whose metadata matches its
//!   `ExecutionProfile` — asserted against the committed `TRACE_5.json`
//!   sample at the repo root.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, CampaignSummary, KernelSpec, RunOptions};
use radcrit_obs::{json, CriticalityAggregator};

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "radcrit-analytics-{tag}-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

fn dgemm_campaign(injections: usize, seed: u64, workers: usize) -> Campaign {
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        injections,
        seed,
    )
    .with_workers(workers)
}

fn fold_file(path: &Path) -> CriticalityAggregator {
    CriticalityAggregator::from_events_path(path).unwrap()
}

#[test]
fn folding_a_finished_stream_reproduces_the_summary_exactly() {
    let events = temp_path("invariant");
    let result = dgemm_campaign(80, 7, 3)
        .run_with(&RunOptions {
            events_out: Some(events.clone()),
            events_sample: 1,
            ..RunOptions::default()
        })
        .unwrap();
    let agg = fold_file(&events);
    assert!(agg.is_finished());
    assert_eq!(
        CampaignSummary::from_analytics(&agg).to_json(),
        result.summary().to_json(),
        "event-stream fold must reproduce the summary byte for byte"
    );
    std::fs::remove_file(&events).ok();
}

#[test]
fn golden_fixture_fold_matches_the_blessed_campaign_summary() {
    // The blessed 8-injection fixture is the stream of this exact
    // campaign; folding it must reproduce the summary the campaign
    // computes from its in-memory records.
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/events_dgemm_seed11.jsonl");
    let agg = fold_file(&golden_path);
    let result = dgemm_campaign(8, 11, 2).run().unwrap();
    assert_eq!(
        CampaignSummary::from_analytics(&agg).to_json(),
        result.summary().to_json()
    );
    assert_eq!(agg.injections(), 8);
    assert!(agg.is_finished());
}

#[test]
fn kill_resume_stream_still_folds_to_the_summary() {
    // A budget stop plus resume produces a stream mixing provenance
    // events, enriched replay markers and out-of-sorted-order tails —
    // the fold must not care.
    let campaign = dgemm_campaign(60, 7, 2);
    let checkpoint = temp_path("resume-ckpt");
    let events = temp_path("resume-events");
    campaign
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            budget: Some(25),
            ..RunOptions::default()
        })
        .unwrap();
    let resumed = campaign
        .run_with(&RunOptions {
            checkpoint: Some(checkpoint.clone()),
            events_out: Some(events.clone()),
            events_sample: 1,
            resume: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert!(resumed.is_complete());
    let agg = fold_file(&events);
    assert_eq!(
        CampaignSummary::from_analytics(&agg).to_json(),
        resumed.summary().to_json(),
        "kill → resume stream must fold to the same summary"
    );
    std::fs::remove_file(&checkpoint).ok();
    std::fs::remove_file(&events).ok();
}

/// One stream, generated once per process, shared by the property test.
fn shared_stream() -> &'static [String] {
    use std::sync::OnceLock;
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| {
        let events = temp_path("property-stream");
        dgemm_campaign(40, 13, 2)
            .run_with(&RunOptions {
                events_out: Some(events.clone()),
                events_sample: 1,
                ..RunOptions::default()
            })
            .unwrap();
        let text = std::fs::read_to_string(&events).unwrap();
        std::fs::remove_file(&events).ok();
        text.lines().map(str::to_owned).collect()
    })
}

proptest! {
    /// Folding lines[0..k] and then the whole stream from the start —
    /// exactly what an SSE client resuming via `Last-Event-ID`, or a
    /// kill → resume tail, produces — equals the one-shot fold, for
    /// every split point.
    #[test]
    fn prefix_then_resume_fold_equals_one_shot_fold(k in 0usize..200) {
        let lines = shared_stream();
        let split = k % (lines.len() + 1);

        let mut one_shot = CriticalityAggregator::new();
        for line in lines {
            one_shot.fold_line(line).unwrap();
        }

        let mut split_fold = CriticalityAggregator::new();
        for line in &lines[..split] {
            split_fold.fold_line(line).unwrap();
        }
        // Resume from the beginning: overlapping indices must be no-ops.
        for line in lines {
            split_fold.fold_line(line).unwrap();
        }
        prop_assert_eq!(&split_fold, &one_shot);
        prop_assert_eq!(split_fold.to_json(), one_shot.to_json());
    }
}

#[test]
fn trace_out_writes_a_phase_timeline_matching_the_run() {
    let trace_path = std::env::temp_dir().join(format!(
        "radcrit-analytics-trace-{}.json",
        std::process::id()
    ));
    std::fs::remove_file(&trace_path).ok();
    let result = dgemm_campaign(8, 11, 2)
        .run_with(&RunOptions {
            trace_out: Some(trace_path.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert_trace_matches(&text, &result);
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn committed_sample_trace_matches_a_fresh_deterministic_run() {
    // TRACE_5.json at the repo root is a committed `--trace-out` sample
    // of this exact campaign (dgemm n=32, 8 injections, seed 11). Its
    // wall-clock values are historical, but its *structure* — phase
    // span counts and ExecutionProfile metadata — must match what the
    // deterministic campaign produces today.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../TRACE_5.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed trace {}: {e}", path.display()));
    let result = dgemm_campaign(8, 11, 2).run().unwrap();
    assert_trace_matches(&text, &result);
}

/// Asserts a Chrome trace's structure against a fresh campaign result:
/// parseable JSON, ≥4 distinct phase names, per-phase span totals
/// derived from the records, and metadata equal to the run's
/// `ExecutionProfile`.
fn assert_trace_matches(text: &str, result: &radcrit_campaign::CampaignResult) {
    let parsed = json::parse_line(text.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap();
    let events = match json::get(top, "traceEvents").unwrap() {
        json::Json::Arr(a) => a,
        other => panic!("traceEvents is not an array: {other:?}"),
    };
    let mut by_name: std::collections::BTreeMap<String, usize> = Default::default();
    for e in events {
        let obj = json::as_obj(e).unwrap();
        *by_name
            .entry(json::get_str(obj, "name").unwrap().to_owned())
            .or_default() += 1;
        assert_eq!(json::get_str(obj, "ph"), Ok("X"), "complete spans only");
        assert!(json::get_usize(obj, "ts").is_ok());
        assert!(json::get_usize(obj, "dur").is_ok());
    }
    assert!(
        by_name.len() >= 4,
        "expected >=4 distinct phase names, got {by_name:?}"
    );

    // Per-phase totals follow the record structure: one golden span,
    // one injection umbrella per record, one execute + one compare span
    // per actual strike (fatal-plan injections never reach the engine).
    let strikes = result.records.iter().filter(|r| r.site != "fatal").count();
    assert_eq!(by_name["golden"], 1, "{by_name:?}");
    assert_eq!(by_name["injection"], result.records.len(), "{by_name:?}");
    assert_eq!(by_name["execute"], strikes, "{by_name:?}");
    assert_eq!(by_name["compare"], strikes, "{by_name:?}");

    // Metadata embeds the campaign identity and the golden profile.
    let meta = json::as_obj(json::get(top, "metadata").unwrap()).unwrap();
    assert_eq!(json::get_str(meta, "kernel"), Ok("dgemm"));
    assert_eq!(json::get_str(meta, "input"), Ok("32x32"));
    assert_eq!(
        json::get_usize(meta, "injections"),
        Ok(result.records.len())
    );
    assert_eq!(json::get_usize(meta, "tiles"), Ok(result.profile.tiles));
    assert_eq!(
        json::get_usize(meta, "total_ops"),
        Ok(result.profile.total_ops as usize)
    );
    assert_eq!(
        json::get_usize(meta, "loads"),
        Ok(result.profile.loads as usize)
    );
    assert_eq!(
        json::get_usize(meta, "stores"),
        Ok(result.profile.stores as usize)
    );
    assert_eq!(json::get_usize(meta, "dropped_spans"), Ok(0));
}
