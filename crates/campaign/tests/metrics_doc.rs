//! Runtime drift test for `docs/METRICS.md`: every metric a real
//! campaign actually registers must be documented. The obs-side test
//! pins the doc to `METRIC_REFERENCE`; this one pins it to the code
//! paths that call the registry, catching metrics registered under a
//! name the reference table never heard of.

use std::path::PathBuf;
use std::sync::Arc;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};
use radcrit_obs::metrics::help_for;
use radcrit_obs::MetricsRegistry;

#[test]
fn every_runtime_registered_metric_is_documented() {
    let doc_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/METRICS.md");
    let doc = std::fs::read_to_string(&doc_path)
        .unwrap_or_else(|e| panic!("docs/METRICS.md missing at {}: {e}", doc_path.display()));

    let metrics = Arc::new(MetricsRegistry::new());
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        16,
        7,
    )
    .with_workers(2)
    .run_with(&RunOptions {
        metrics: Some(Arc::clone(&metrics)),
        ..RunOptions::default()
    })
    .unwrap();

    let snap = metrics.snapshot();
    assert!(!snap.is_empty(), "campaign registered no metrics at all");
    let mut undocumented = Vec::new();
    for (key, _) in snap.iter() {
        if !doc.contains(&format!("`{}`", key.name)) {
            undocumented.push(key.name.clone());
        }
        // Belt and braces: the reference table must know it too, or the
        // Prometheus export would ship it without HELP text.
        assert!(
            help_for(&key.name).is_some(),
            "{} registered at runtime but absent from METRIC_REFERENCE",
            key.name
        );
    }
    undocumented.sort_unstable();
    undocumented.dedup();
    assert!(
        undocumented.is_empty(),
        "metrics registered by a live campaign but missing from docs/METRICS.md: \
         {undocumented:?}"
    );
}
