//! End-to-end tests of the hierarchical phase profiler: tree-sum
//! invariants of a freshly profiled campaign, phase counts against the
//! campaign's own counters, and the structural contract of the
//! committed `PROFILE_7.json` sample.

use std::path::PathBuf;
use std::sync::Arc;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};
use radcrit_obs::{MetricsRegistry, ProfileNode, ProfileTree};

fn dgemm_campaign(injections: usize, seed: u64, workers: usize) -> Campaign {
    Campaign::new(
        DeviceConfig::kepler_k40(),
        KernelSpec::Dgemm { n: 32 },
        injections,
        seed,
    )
    .with_workers(workers)
}

/// Asserts the arithmetic contract on every node: children cannot
/// out-sum their parent, and self time is exactly the unattributed
/// remainder. Returns the number of nodes visited.
fn assert_tree_sums(node: &ProfileNode, path: &str) -> usize {
    let here = format!("{path}/{}", node.phase);
    let child_total: u64 = node.children.iter().map(|c| c.total_ns).sum();
    assert!(
        child_total <= node.total_ns,
        "{here}: children total {child_total} ns exceeds parent total {} ns",
        node.total_ns
    );
    assert_eq!(
        node.self_ns,
        node.total_ns - child_total,
        "{here}: self time must be total minus children"
    );
    assert!(node.count > 0, "{here}: zero-count node exported");
    assert!(
        node.min_ns <= node.max_ns,
        "{here}: min {} > max {}",
        node.min_ns,
        node.max_ns
    );
    1 + node
        .children
        .iter()
        .map(|c| assert_tree_sums(c, &here))
        .sum::<usize>()
}

/// Total entry count of `phase` across every stack position.
fn phase_count(nodes: &[ProfileNode], phase: &str) -> u64 {
    nodes
        .iter()
        .map(|n| (if n.phase == phase { n.count } else { 0 }) + phase_count(&n.children, phase))
        .sum()
}

/// Finds a root node by phase name.
fn root<'t>(tree: &'t ProfileTree, phase: &str) -> Option<&'t ProfileNode> {
    tree.roots.iter().find(|r| r.phase == phase)
}

#[test]
fn profiled_campaign_satisfies_tree_invariants_and_count_cross_checks() {
    let profile_path = std::env::temp_dir().join(format!(
        "radcrit-profile-invariants-{}.json",
        std::process::id()
    ));
    std::fs::remove_file(&profile_path).ok();
    let metrics = Arc::new(MetricsRegistry::new());
    let campaign = dgemm_campaign(40, 11, 2);
    let result = campaign
        .run_with(&RunOptions {
            profile_out: Some(profile_path.clone()),
            metrics: Some(Arc::clone(&metrics)),
            ..RunOptions::default()
        })
        .unwrap();

    let text = std::fs::read_to_string(&profile_path).unwrap();
    std::fs::remove_file(&profile_path).ok();
    let tree = ProfileTree::from_json(&text).unwrap();

    // Main thread + both workers merged in.
    assert!(
        tree.threads >= 3,
        "expected >=3 threads, got {}",
        tree.threads
    );

    let visited: usize = tree.roots.iter().map(|r| assert_tree_sums(r, "")).sum();
    assert!(visited >= 5, "suspiciously small tree ({visited} nodes)");

    // The golden phase runs exactly once, on the collector thread, and
    // executes every golden tile under its scope.
    let golden = root(&tree, "golden").expect("golden root missing");
    assert_eq!(golden.count, 1);
    assert_eq!(
        phase_count(std::slice::from_ref(golden), "tile-execute"),
        result.profile.tiles as u64,
        "golden must execute each of the {} tiles once under its scope",
        result.profile.tiles
    );

    // Scheduler phases agree with the campaign's own counters.
    let snap = metrics.snapshot();
    let counter = |name: &str| snap.counter(name, &[]).unwrap_or(0);
    assert_eq!(
        phase_count(&tree.roots, "fork"),
        counter("radcrit_bucket_forks_total"),
        "every bucket fork must be a profiled fork scope"
    );
    assert_eq!(
        phase_count(&tree.roots, "bucket-restore"),
        counter("radcrit_bucket_restores_total"),
        "every bucket restore must be a profiled restore scope"
    );

    // Every strike (non-fatal plan) is compared against golden exactly
    // once; crash/hang plans never reach the diff.
    let strikes = result.records.iter().filter(|r| r.site != "fatal").count() as u64;
    assert_eq!(phase_count(&tree.roots, "compare"), strikes);

    // The memory path is instrumented: loads happen under fork scopes
    // (the batched execute path) and the load phase dominates raw call
    // counts, matching the ExecutionProfile's element traffic.
    assert!(phase_count(&tree.roots, "mem-load") > 0);
    assert!(phase_count(&tree.roots, "cache-access") > 0);

    // Collapsed export parses: every line is `stack self_us` with
    // semicolon-separated known frames.
    let collapsed = tree.to_collapsed();
    assert!(!collapsed.is_empty());
    for line in collapsed.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("line must end in a value");
        value.parse::<u64>().expect("value must be integer µs");
        assert!(!stack.is_empty());
    }
}

#[test]
fn committed_profile_sample_answers_where_the_time_goes() {
    // PROFILE_7.json (pre-SIMD-dispatch) and PROFILE_9.json (after the
    // load/cache/compare paths moved behind the runtime-ISA executor)
    // are committed DGEMM-256 samples (seed 11) captured via
    // `--profile-out` with RADCRIT_PROFILE_STRIDE=1. Wall-clock totals
    // vary per machine, so the test asserts structure: the invariants
    // hold, the expected phases are present, and the top self-time
    // phase is where the per-tile cost analysis put it. In PROFILE_7
    // that is `mem-load` (the ~35 µs/tile of row feeding). PROFILE_9's
    // bulk-copy fast path moved that time out of the row loads, so the
    // residual hotspot is `cache-access` — the LRU/tick bookkeeping
    // that stays sequential to keep eviction order bit-identical to
    // the scalar reference.
    committed_sample_checks("PROFILE_7.json", "mem-load");
    committed_sample_checks("PROFILE_9.json", "cache-access");
}

fn committed_sample_checks(sample: &str, top_phase: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{sample}"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed sample {} missing: {e}", path.display()));
    let tree = ProfileTree::from_json(&text).unwrap();

    assert!(tree.threads >= 1);
    tree.roots.iter().for_each(|r| {
        assert_tree_sums(r, "");
    });

    for phase in [
        "golden",
        "fork",
        "compare",
        "tile-execute",
        "mem-load",
        "mem-store",
        "cache-access",
    ] {
        assert!(
            phase_count(&tree.roots, phase) > 0,
            "committed sample {sample} lacks phase {phase}"
        );
    }

    // The headline answer: the sample was captured with
    // RADCRIT_PROFILE_STRIDE=1 (every memory call timed, overhead be
    // damned — it is an offline capture), so attribution is exhaustive
    // and the hottest self-time phase is mem-load: the tile-execute
    // inner loop spends its time feeding operands through the cache
    // model, not in the FMA arithmetic and not in the store path.
    let hot = tree.hot_phases(12);
    assert!(!hot.is_empty());
    assert_eq!(
        hot[0].0, top_phase,
        "expected {top_phase} to dominate self time in {sample}, got {hot:?}"
    );
    let self_ns = |phase: &str| {
        hot.iter()
            .find(|(p, _, _)| p == phase)
            .map(|&(_, ns, _)| ns)
            .unwrap_or(0)
    };
    assert!(
        self_ns("mem-load") + self_ns("cache-access") > 5 * self_ns("mem-store"),
        "the load/cache path must dominate stores in {sample}: {hot:?}"
    );
}
