//! Criterion benchmarks of ABFT DGEMM: checksum construction and the
//! detect/locate/correct pass — the linear-time property §III relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use radcrit_abft::AbftDgemm;
use radcrit_kernels::input::matrix_value;

fn inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut a = Vec::with_capacity(n * n);
    let mut b = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            a.push(matrix_value(1, i, j));
            b.push(matrix_value(2, i, j));
        }
    }
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += av * b[k * n + j];
            }
        }
    }
    (a, b, c)
}

fn bench_abft(c: &mut Criterion) {
    let mut group = c.benchmark_group("abft");
    for &n in &[64usize, 128, 256] {
        let (a, b, product) = inputs(n);
        group.bench_with_input(BenchmarkId::new("build_checksums", n), &n, |bch, _| {
            bch.iter(|| std::hint::black_box(AbftDgemm::from_inputs(&a, &b, n, 1e-9)));
        });
        let checker = AbftDgemm::from_inputs(&a, &b, n, 1e-9);
        group.bench_with_input(BenchmarkId::new("check_clean", n), &n, |bch, _| {
            bch.iter(|| {
                let mut m = product.clone();
                std::hint::black_box(checker.check(&mut m))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("check_and_correct_single", n),
            &n,
            |bch, _| {
                bch.iter(|| {
                    let mut m = product.clone();
                    m[n + 3] += 42.0;
                    std::hint::black_box(checker.check(&mut m))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_abft);
criterion_main!(benches);
