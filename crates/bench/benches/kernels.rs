//! Criterion benchmarks of golden kernel execution on both simulated
//! devices — the per-run cost that bounds campaign throughput for every
//! table and figure of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use radcrit_accel::engine::Engine;
use radcrit_campaign::config::KernelSpec;
use radcrit_campaign::presets;

fn bench_goldens(c: &mut Criterion) {
    let devices = [("k40", presets::k40()), ("phi", presets::xeon_phi())];
    let kernels = [
        ("dgemm_64", KernelSpec::Dgemm { n: 64 }),
        ("dgemm_128", KernelSpec::Dgemm { n: 128 }),
        (
            "lavamd_4x8",
            KernelSpec::LavaMd {
                grid: 4,
                particles: 8,
            },
        ),
        (
            "hotspot_64x64x8",
            KernelSpec::HotSpot {
                rows: 64,
                cols: 64,
                iterations: 8,
            },
        ),
        (
            "clamr_48x48x20",
            KernelSpec::Shallow {
                rows: 48,
                cols: 48,
                steps: 20,
            },
        ),
    ];

    let mut group = c.benchmark_group("golden");
    group.sample_size(10);
    for (dev_name, device) in &devices {
        let engine = Engine::new(device.clone());
        for (kernel_name, spec) in &kernels {
            group.bench_with_input(BenchmarkId::new(*kernel_name, dev_name), spec, |b, spec| {
                let mut kernel = spec.build(1).expect("valid kernel spec");
                b.iter(|| {
                    let out = engine.golden(kernel.as_mut()).expect("golden run");
                    std::hint::black_box(out.output.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_goldens);
criterion_main!(benches);
