//! Criterion benchmarks of the fault-injection path: site sampling and
//! the overhead of an injected execution over a golden one (the
//! instrumentation tax of the TileCtx op wrappers and the cache model's
//! corruption fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_accel::engine::Engine;
use radcrit_accel::strike::{StrikeSpec, StrikeTarget};
use radcrit_campaign::config::KernelSpec;
use radcrit_campaign::presets;
use radcrit_faults::sampler::FaultSampler;

fn bench_sampling(c: &mut Criterion) {
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let spec = KernelSpec::Dgemm { n: 64 };
    let mut kernel = spec.build(1).expect("valid kernel");
    let golden = engine.golden(kernel.as_mut()).expect("golden");
    let sampler = FaultSampler::new(&device, &golden.profile);

    c.bench_function("sample_injection_plan", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| std::hint::black_box(sampler.sample(&mut rng)));
    });
}

fn bench_injected_vs_golden(c: &mut Criterion) {
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let spec = KernelSpec::Dgemm { n: 64 };
    let mut kernel = spec.build(1).expect("valid kernel");

    let mut group = c.benchmark_group("dgemm64_run");
    group.sample_size(20);
    group.bench_function("golden", |b| {
        b.iter(|| {
            let out = engine.golden(kernel.as_mut()).expect("golden run");
            std::hint::black_box(out.output.len())
        });
    });
    group.bench_function("with_l2_strike", |b| {
        let strike = StrikeSpec::new(3, StrikeTarget::L2 { mask: 1 << 40 });
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let out = engine
                .run(kernel.as_mut(), &strike, &mut rng)
                .expect("faulty run");
            std::hint::black_box(out.output.len())
        });
    });
    group.bench_function("with_fpu_strike", |b| {
        let strike = StrikeSpec::new(
            3,
            StrikeTarget::Fpu {
                mask: 1 << 40,
                op_index: 1000,
            },
        );
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let out = engine
                .run(kernel.as_mut(), &strike, &mut rng)
                .expect("faulty run");
            std::hint::black_box(out.output.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_injected_vs_golden);
criterion_main!(benches);
