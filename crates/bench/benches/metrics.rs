//! Criterion benchmarks of the criticality metrics themselves: output
//! comparison, tolerance filtering and the spatial-locality classifier —
//! the per-injection analysis cost of every campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use radcrit_core::compare::compare_slices;
use radcrit_core::filter::ToleranceFilter;
use radcrit_core::locality::LocalityClassifier;
use radcrit_core::shape::OutputShape;
use radcrit_kernels::input::unit_value;

fn corrupted_pair(n: usize, corrupted: usize) -> (Vec<f64>, Vec<f64>) {
    let golden: Vec<f64> = (0..n).map(|i| unit_value(1, i as u64)).collect();
    let mut observed = golden.clone();
    for k in 0..corrupted {
        let idx = (k * 97) % n;
        observed[idx] *= 1.0 + 0.001 * (k % 50) as f64;
    }
    (golden, observed)
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare");
    for &n in &[4096usize, 65536, 262144] {
        let (golden, observed) = corrupted_pair(n, 100);
        let shape = OutputShape::d2(n / 64, 64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let report = compare_slices(&golden, &observed, shape).expect("matching lengths");
                std::hint::black_box(report.incorrect_elements())
            });
        });
    }
    group.finish();
}

fn bench_filter_and_classify(c: &mut Criterion) {
    let n = 65536;
    let shape = OutputShape::d2(256, 256);
    let mut group = c.benchmark_group("criticality");
    for &corrupted in &[10usize, 1000, 10000] {
        let (golden, observed) = corrupted_pair(n, corrupted);
        let report = compare_slices(&golden, &observed, shape).expect("matching lengths");
        let filter = ToleranceFilter::paper_default();
        let classifier = LocalityClassifier::default();
        group.bench_with_input(BenchmarkId::new("filter", corrupted), &corrupted, |b, _| {
            b.iter(|| std::hint::black_box(filter.apply(&report).incorrect_elements()))
        });
        group.bench_with_input(
            BenchmarkId::new("classify", corrupted),
            &corrupted,
            |b, _| b.iter(|| std::hint::black_box(classifier.classify(&report))),
        );
        group.bench_with_input(
            BenchmarkId::new("full_criticality", corrupted),
            &corrupted,
            |b, _| b.iter(|| std::hint::black_box(report.criticality(&filter, &classifier))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compare, bench_filter_and_classify);
criterion_main!(benches);
