//! Continuous performance history for `diff-bench`.
//!
//! Every `diff-bench` run appends one fingerprinted [`HistoryRow`] per
//! kernel to `BENCH_HISTORY.jsonl`: which host and commit produced the
//! number, the batched and full injection rates, and the top self-time
//! phases of the run's hierarchical profile — enough to answer "when
//! did DGEMM get slower, and which phase ate the time" by reading one
//! file, without rerunning anything.
//!
//! The harness also gates: [`check_regression`] compares a fresh rate
//! against the committed `BENCH_6.json` baseline and rejects drops
//! beyond [`REGRESSION_TOLERANCE`] (10 %), which `diff-bench` turns
//! into a non-zero exit for CI.

use std::path::Path;

use radcrit_obs::json::{self, Json};

/// Fractional slowdown versus the committed baseline that fails the
/// gate: a rate below `baseline * (1 - 0.10)` is a regression.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// One appended history record: a kernel's rates on a specific host and
/// commit, with the profile's top self-time phases.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Machine that produced the numbers (rates are host-comparable
    /// only within one host).
    pub host: String,
    /// Git commit the working tree was at (`unknown` outside a repo).
    pub commit: String,
    /// Kernel label, e.g. `dgemm-256x256`.
    pub kernel: String,
    /// SIMD executor the run dispatched to (`scalar`, `avx2`, `neon`).
    /// Rates are only comparable within one ISA; rows written before
    /// the column existed parse as `unknown`.
    pub isa: String,
    /// Batched differential injections per second (the headline rate).
    pub batch_inj_per_sec: f64,
    /// Full re-execution injections per second (the denominator of the
    /// speedup story).
    pub full_inj_per_sec: f64,
    /// Top self-time phases of the profiled rep, hottest first, as
    /// `(phase, self_ns)`. At most five.
    pub top_phases: Vec<(String, u64)>,
}

impl HistoryRow {
    /// Serializes the row as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let phases: Vec<String> = self
            .top_phases
            .iter()
            .map(|(name, self_ns)| {
                format!(
                    "{{\"phase\":\"{}\",\"self_ns\":{self_ns}}}",
                    json::escape(name)
                )
            })
            .collect();
        format!(
            "{{\"host\":\"{}\",\"commit\":\"{}\",\"kernel\":\"{}\",\"isa\":\"{}\",\
             \"batch_inj_per_sec\":{},\"full_inj_per_sec\":{},\"top_phases\":[{}]}}",
            json::escape(&self.host),
            json::escape(&self.commit),
            json::escape(&self.kernel),
            json::escape(&self.isa),
            json::fmt_f64(self.batch_inj_per_sec),
            json::fmt_f64(self.full_inj_per_sec),
            phases.join(",")
        )
    }

    /// Parses one JSONL line back into a row.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn parse_line(line: &str) -> Result<Self, String> {
        let v = json::parse_line(line)?;
        let obj = json::as_obj(&v)?;
        let mut top_phases = Vec::new();
        if let Ok(Json::Arr(items)) = json::get(obj, "top_phases") {
            for item in items {
                let p = json::as_obj(item)?;
                top_phases.push((
                    json::get_str(p, "phase")?.to_owned(),
                    json::get_usize(p, "self_ns")? as u64,
                ));
            }
        }
        Ok(HistoryRow {
            host: json::get_str(obj, "host")?.to_owned(),
            commit: json::get_str(obj, "commit")?.to_owned(),
            kernel: json::get_str(obj, "kernel")?.to_owned(),
            isa: json::get_str(obj, "isa")
                .map(str::to_owned)
                .unwrap_or_else(|_| "unknown".to_owned()),
            batch_inj_per_sec: json::get_f64(obj, "batch_inj_per_sec")?,
            full_inj_per_sec: json::get_f64(obj, "full_inj_per_sec")?,
            top_phases,
        })
    }
}

/// Appends `rows` to the history file (created when missing).
///
/// # Errors
///
/// A message wrapping the I/O failure.
pub fn append_rows(path: &Path, rows: &[HistoryRow]) -> Result<(), String> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    for row in rows {
        writeln!(f, "{}", row.to_json_line()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(())
}

/// Reads every parseable row of a history file (missing file → empty).
pub fn read_rows(path: &Path) -> Vec<HistoryRow> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| HistoryRow::parse_line(l).ok())
        .collect()
}

/// The host fingerprint: `$HOSTNAME`, else `/etc/hostname`, else
/// `unknown`. Never fails — a history row with an unknown host is
/// better than no row.
pub fn host_fingerprint() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_owned();
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        if !h.trim().is_empty() {
            return h.trim().to_owned();
        }
    }
    "unknown".to_owned()
}

/// The commit fingerprint: `git rev-parse --short HEAD` in the current
/// directory, else `unknown`.
pub fn commit_fingerprint() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Gates a fresh rate against a committed baseline rate: `Err` when the
/// fresh rate regressed by more than [`REGRESSION_TOLERANCE`].
///
/// # Errors
///
/// A human-readable message naming the kernel, both rates and the
/// shortfall.
pub fn check_regression(kernel: &str, fresh: f64, baseline: f64) -> Result<(), String> {
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if fresh < floor {
        return Err(format!(
            "{kernel}: {fresh:.1} inj/s regressed more than {:.0}% below the committed \
             baseline of {baseline:.1} inj/s (floor {floor:.1})",
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(())
}

/// The newest like-for-like history row for `kernel` on `isa` — the
/// alert engine's throughput baseline. Rows append in chronological
/// order, so the last match is the newest; rows from other ISAs (or
/// legacy rows whose ISA parsed as `unknown`) never match, keeping the
/// PR 9 per-ISA comparability rule intact.
pub fn latest_like_for_like<'a>(
    rows: &'a [HistoryRow],
    kernel: &str,
    isa: &str,
) -> Option<&'a HistoryRow> {
    rows.iter()
        .rev()
        .find(|r| r.kernel == kernel && r.isa == isa)
}

/// Extracts `(kernel, isa, batch_inj_per_sec)` triples from a committed
/// `BENCH_6.json`-format baseline (one kernel object per line, as
/// `diff-bench` writes it). Baselines written before the `isa` column
/// existed yield `None` for the ISA — they were measured with the
/// host's native vectorized executor, so callers should only gate
/// against them when the fresh run is not pinned to scalar. Missing
/// file → empty.
pub fn baseline_batch_rates(path: &Path) -> Vec<(String, Option<String>, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    text.lines()
        .filter_map(|line| {
            let line = line.trim().trim_end_matches(',');
            if !line.contains("\"kernel\"") || !line.contains("\"batch_inj_per_sec\"") {
                return None;
            }
            let v = json::parse_line(line).ok()?;
            let obj = json::as_obj(&v).ok()?;
            Some((
                json::get_str(obj, "kernel").ok()?.to_owned(),
                json::get_str(obj, "isa").ok().map(str::to_owned),
                json::get_f64(obj, "batch_inj_per_sec").ok()?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kernel: &str, batch: f64) -> HistoryRow {
        HistoryRow {
            host: "ci-runner".into(),
            commit: "abc1234".into(),
            kernel: kernel.into(),
            isa: "avx2".into(),
            batch_inj_per_sec: batch,
            full_inj_per_sec: batch / 3.0,
            top_phases: vec![
                ("mem-load".into(), 420_000),
                ("tile-execute".into(), 99_000),
            ],
        }
    }

    #[test]
    fn rows_round_trip_through_jsonl() {
        let r = row("dgemm-256x256", 238.67);
        let parsed = HistoryRow::parse_line(&r.to_json_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn rows_without_an_isa_column_still_parse() {
        // History files predating the isa column must keep reading; the
        // missing provenance is recorded as "unknown", not an error.
        let legacy = "{\"host\":\"h\",\"commit\":\"c\",\"kernel\":\"dgemm-256x256\",\
                      \"batch_inj_per_sec\":240.5,\"full_inj_per_sec\":80.1,\"top_phases\":[]}";
        let parsed = HistoryRow::parse_line(legacy).unwrap();
        assert_eq!(parsed.isa, "unknown");
        assert_eq!(parsed.kernel, "dgemm-256x256");
    }

    #[test]
    fn append_and_read_preserve_order_and_content() {
        let path = std::env::temp_dir().join(format!(
            "radcrit-bench-history-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        append_rows(&path, &[row("dgemm-256x256", 240.0)]).unwrap();
        append_rows(&path, &[row("lavamd-5", 680.0)]).unwrap();
        let rows = read_rows(&path);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kernel, "dgemm-256x256");
        assert_eq!(rows[1].kernel, "lavamd-5");
        assert_eq!(rows[0].top_phases[0].0, "mem-load");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_ten_percent_regression_fails_the_gate() {
        // Exactly at the floor passes; beyond it fails — the committed
        // baseline is the contract, not a suggestion.
        assert!(check_regression("dgemm-256x256", 90.0, 100.0).is_ok());
        let verdict = check_regression("dgemm-256x256", 89.9, 100.0);
        let msg = verdict.expect_err("a >10% drop must fail");
        assert!(msg.contains("dgemm-256x256"), "{msg}");
        assert!(msg.contains("baseline of 100.0"), "{msg}");
    }

    #[test]
    fn faster_rates_always_pass() {
        assert!(check_regression("dgemm-256x256", 400.0, 100.0).is_ok());
    }

    #[test]
    fn baseline_rates_parse_the_committed_bench_format() {
        let path = std::env::temp_dir().join(format!(
            "radcrit-bench-baseline-{}.json",
            std::process::id()
        ));
        std::fs::write(
            &path,
            concat!(
                "{\n  \"bench\": \"x\",\n  \"kernels\": [\n",
                "    {\"kernel\": \"dgemm-256x256\", \"batch_inj_per_sec\": 238.67, \"x\": 1},\n",
                "    {\"kernel\": \"lavamd-5\", \"isa\": \"scalar\", ",
                "\"batch_inj_per_sec\": 682.25, \"x\": 1}\n",
                "  ]\n}\n"
            ),
        )
        .unwrap();
        let rates = baseline_batch_rates(&path);
        assert_eq!(
            rates,
            vec![
                ("dgemm-256x256".to_owned(), None, 238.67),
                ("lavamd-5".to_owned(), Some("scalar".to_owned()), 682.25)
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alert_baseline_lookup_picks_the_newest_like_for_like_isa_row() {
        let mut old_avx2 = row("dgemm-256x256", 200.0);
        old_avx2.commit = "old0000".into();
        let scalar = HistoryRow {
            isa: "scalar".into(),
            ..row("dgemm-256x256", 40.0)
        };
        let legacy = HistoryRow {
            isa: "unknown".into(),
            ..row("dgemm-256x256", 999.0)
        };
        let new_avx2 = row("dgemm-256x256", 260.0);
        let other_kernel = row("lavamd-5", 700.0);
        let rows = vec![
            old_avx2,
            scalar.clone(),
            legacy,
            new_avx2.clone(),
            other_kernel,
        ];

        // The newest avx2 dgemm row wins — not the older avx2 row, not
        // the scalar row, not the faster legacy unknown-ISA row.
        let hit = latest_like_for_like(&rows, "dgemm-256x256", "avx2").unwrap();
        assert_eq!(hit.batch_inj_per_sec, 260.0);
        assert_eq!(hit.commit, "abc1234");
        // Like-for-like means ISA-exact.
        let hit = latest_like_for_like(&rows, "dgemm-256x256", "scalar").unwrap();
        assert_eq!(hit.batch_inj_per_sec, 40.0);
        assert!(latest_like_for_like(&rows, "dgemm-256x256", "neon").is_none());
        assert!(latest_like_for_like(&rows, "hotspot-64x64x8", "avx2").is_none());

        // The committed BENCH_HISTORY.jsonl itself must satisfy the
        // lookup: the repo root carries at least one avx2 dgemm row,
        // and the lookup resolves to the newest one in file order.
        let committed = read_rows(Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_HISTORY.jsonl"
        )));
        let baseline = latest_like_for_like(&committed, "dgemm-256x256", "avx2")
            .expect("committed history must hold an avx2 dgemm-256x256 row");
        assert!(baseline.batch_inj_per_sec > 0.0);
        let newest_pos = committed
            .iter()
            .rposition(|r| r.kernel == "dgemm-256x256" && r.isa == "avx2")
            .unwrap();
        assert_eq!(&committed[newest_pos], baseline);
    }

    #[test]
    fn fingerprints_are_nonempty() {
        assert!(!host_fingerprint().is_empty());
        assert!(!commit_fingerprint().is_empty());
    }
}
