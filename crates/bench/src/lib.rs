//! # radcrit-bench
//!
//! Rendering and shape-checking helpers for the reproduction harness.
//! The `repro` binary regenerates every table and figure of the paper
//! from fresh campaigns; this library turns campaign summaries into the
//! textual tables/series the paper reports and checks the qualitative
//! expectations ("who wins, by roughly what factor") recorded in
//! `DESIGN.md` §4.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod history;

use radcrit_campaign::summary::{CampaignSummary, ScatterPoint};
use radcrit_core::fit::FitBreakdown;
use radcrit_core::locality::SpatialClass;

/// Formats an aligned text table.
///
/// # Examples
///
/// ```
/// let t = radcrit_bench::table(
///     &["kernel", "bound"],
///     &[vec!["DGEMM".into(), "CPU".into()]],
/// );
/// assert!(t.contains("DGEMM"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:<w$} |", cell, w = widths[i]));
        }
        line
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a FIT break-down (one bar of Figs. 3/5/7) as one table row:
/// total plus per-class values in a.u.
pub fn fit_row(label: &str, b: &FitBreakdown, scale: f64) -> Vec<String> {
    let mut row = vec![
        label.to_owned(),
        format!("{:.2}", b.total().value() * scale),
    ];
    for class in SpatialClass::PLOTTED {
        row.push(format!("{:.2}", b.rate(class).value() * scale));
    }
    row
}

/// Header matching [`fit_row`].
pub fn fit_header() -> Vec<&'static str> {
    vec![
        "input", "total", "cubic", "square", "line", "single", "random",
    ]
}

/// Renders a scatter series (Figs. 2/4/6/8) as an ASCII density grid:
/// x = incorrect elements (log-ish bins), y = mean relative error capped
/// at `y_cap` percent.
pub fn scatter_grid(points: &[ScatterPoint], y_cap: f64, width: usize, height: usize) -> String {
    if points.is_empty() {
        return "(no faulty executions)\n".to_owned();
    }
    let x_max = points
        .iter()
        .map(|p| p.incorrect_elements)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let mut grid = vec![vec![0usize; width]; height];
    for p in points {
        let x = ((p.incorrect_elements as f64).ln_1p() / x_max.ln_1p() * (width - 1) as f64).round()
            as usize;
        let y_val = p.mean_relative_error.min(y_cap);
        let y = (y_val / y_cap * (height - 1) as f64).round() as usize;
        grid[height - 1 - y.min(height - 1)][x.min(width - 1)] += 1;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "mean relative error (capped {y_cap}%) vs incorrect elements (log scale, max {x_max})\n"
    ));
    for (r, row) in grid.iter().enumerate() {
        let y_label = y_cap * (height - 1 - r) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>10.1}% |"));
        for &c in row {
            out.push(match c {
                0 => ' ',
                1 => '.',
                2..=4 => 'o',
                _ => '#',
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>12}+{}\n", "", "-".repeat(width)));
    out
}

/// A textual summary of the §III metrics over a campaign's scatter.
pub fn scatter_stats(s: &CampaignSummary) -> String {
    let mres: Vec<f64> = s
        .scatter
        .iter()
        .map(|p| p.mean_relative_error)
        .filter(|v| v.is_finite())
        .collect();
    let elems: Vec<f64> = s
        .scatter
        .iter()
        .map(|p| p.incorrect_elements as f64)
        .collect();
    let q = |v: &[f64], p: f64| radcrit_core::stats::quantile(v, p).unwrap_or(0.0);
    let pct = |v: f64| -> String {
        if v >= 1.0e4 {
            format!("{v:.1e}%")
        } else {
            format!("{v:.2}%")
        }
    };
    format!(
        "SDCs: {} | incorrect elements p50/p90/max: {:.0}/{:.0}/{:.0} | \
         MRE p50/p90: {}/{} | <=10% MRE: {:.0}% | filtered out at {}%: {:.0}%",
        s.sdc,
        q(&elems, 0.5),
        q(&elems, 0.9),
        elems.iter().cloned().fold(0.0, f64::max),
        pct(q(&mres, 0.5)),
        pct(q(&mres, 0.9)),
        s.fraction_mre_at_most(10.0) * 100.0,
        radcrit_core::filter::ToleranceFilter::PAPER_THRESHOLD_PCT,
        s.filtered_out_fraction() * 100.0,
    )
}

/// One qualitative expectation from the paper, checked against measured
/// values; collected into the harness's PASS/FAIL shape report.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What the paper claims.
    pub claim: String,
    /// The measured value rendered for the report.
    pub measured: String,
    /// Whether the reproduction matches the claim's direction/range.
    pub pass: bool,
}

impl ShapeCheck {
    /// Creates a check.
    pub fn new(claim: impl Into<String>, measured: impl Into<String>, pass: bool) -> Self {
        ShapeCheck {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        }
    }

    /// Renders as a one-line report entry.
    pub fn line(&self) -> String {
        format!(
            "[{}] {} (measured: {})",
            if self.pass { "PASS" } else { "MISS" },
            self.claim,
            self.measured
        )
    }
}

/// Renders a block of shape checks with a tally.
pub fn shape_report(title: &str, checks: &[ShapeCheck]) -> String {
    let mut out = format!("-- shape checks: {title} --\n");
    for c in checks {
        out.push_str(&c.line());
        out.push('\n');
    }
    let passed = checks.iter().filter(|c| c.pass).count();
    out.push_str(&format!(
        "{} of {} shape checks hold\n",
        passed,
        checks.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = table(
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["z".into(), "wwwww".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{t}");
    }

    #[test]
    fn fit_row_matches_header_width() {
        let b = FitBreakdown::new();
        assert_eq!(fit_row("x", &b, 1.0).len(), fit_header().len());
    }

    #[test]
    fn scatter_grid_handles_empty_and_nonempty() {
        assert!(scatter_grid(&[], 100.0, 10, 5).contains("no faulty"));
        let pts = vec![
            ScatterPoint {
                incorrect_elements: 1,
                mean_relative_error: 5.0,
            },
            ScatterPoint {
                incorrect_elements: 100,
                mean_relative_error: 95.0,
            },
        ];
        let g = scatter_grid(&pts, 100.0, 20, 8);
        assert!(g.contains('.') || g.contains('o'));
    }

    #[test]
    fn shape_check_lines_render() {
        let c = ShapeCheck::new("K40 wins", "1.5x", true);
        assert!(c.line().starts_with("[PASS]"));
        let r = shape_report("t", &[c, ShapeCheck::new("x", "y", false)]);
        assert!(r.contains("1 of 2"));
    }
}
