//! `diff-bench` — injections/sec benchmark of differential injection
//! execution (golden-prefix snapshot resume + dirty-region compare) and
//! the prefix-sharing batch scheduler (fork-per-strike off warm
//! snapshots) against full per-injection re-execution.
//!
//! ```text
//! diff-bench [--injections 60] [--n 256] [--workers 1] [--smoke]
//!            [--out BENCH_6.json] [--history BENCH_HISTORY.jsonl]
//! ```
//!
//! For each paper kernel the same campaign runs three times — with
//! [`RunOptions::full_execution`] forced (every injection re-executes
//! from tile 0), with differential mode but the batch scheduler off
//! ([`RunOptions::no_batch`]), and with the default batched mode —
//! against a pre-warmed golden cache, so the measured wall time is the
//! injection phase. Science is bit-identical between the modes
//! (asserted on the outcome counts); the speedup columns are the whole
//! point. Exits non-zero when the batched DGEMM injection rate falls
//! below 2.5× the committed pre-batching baseline (`--baseline`, the
//! `full_inj_per_sec` of the DGEMM row in `BENCH_4.json`) — or, when no
//! baseline file is present, below a 2.5× in-process speedup over full
//! execution. `--smoke` relaxes the gates for tiny CI sizes where
//! constant overheads dominate.
//!
//! Every run also appends one fingerprinted row per kernel (host,
//! commit, active SIMD ISA, rates, top-5 self-time phases of a
//! profiled rep) to the continuous history file (`--history`, default
//! `BENCH_HISTORY.jsonl`) and — outside `--smoke` — gates the batched
//! rates against the committed `--history-baseline` (default the
//! freshly written/committed `BENCH_6.json`): any kernel more than
//! 10 % below its committed `batch_inj_per_sec` exits non-zero. Both
//! gates are like-for-like on the ISA: a run pinned to the scalar
//! executor (`RADCRIT_FORCE_SCALAR=1`) records its rows but is never
//! compared against a vectorized baseline. See
//! [`radcrit_bench::history`].

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use radcrit_accel::config::DeviceConfig;
use radcrit_bench::history::{self, HistoryRow};
use radcrit_campaign::golden::GoldenCache;
use radcrit_campaign::{Campaign, KernelSpec, RunOptions};
use radcrit_obs::{MetricsRegistry, ProfileCollector};

struct Args {
    injections: usize,
    n: usize,
    workers: usize,
    reps: usize,
    smoke: bool,
    out: PathBuf,
    baseline: PathBuf,
    history: PathBuf,
    history_baseline: PathBuf,
}

const USAGE: &str = "usage: diff-bench [--injections 60] [--n 256] [--workers 1] [--reps 5] \
                     [--smoke] [--out BENCH_6.json] [--baseline BENCH_4.json] \
                     [--history BENCH_HISTORY.jsonl] [--history-baseline BENCH_6.json]";

fn parse_args() -> Args {
    let mut a = Args {
        injections: 60,
        n: 256,
        workers: 1,
        reps: 5,
        smoke: false,
        out: PathBuf::from("BENCH_6.json"),
        baseline: PathBuf::from("BENCH_4.json"),
        history: PathBuf::from("BENCH_HISTORY.jsonl"),
        history_baseline: PathBuf::from("BENCH_6.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{USAGE}\nmissing value for {flag}");
                exit(2)
            })
        };
        match flag.as_str() {
            "--injections" => a.injections = parsed(&flag, &val("--injections")),
            "--n" => a.n = parsed(&flag, &val("--n")),
            "--workers" => a.workers = parsed(&flag, &val("--workers")),
            "--reps" => a.reps = parsed(&flag, &val("--reps")).max(1),
            "--smoke" => a.smoke = true,
            "--out" => a.out = PathBuf::from(val("--out")),
            "--baseline" => a.baseline = PathBuf::from(val("--baseline")),
            "--history" => a.history = PathBuf::from(val("--history")),
            "--history-baseline" => a.history_baseline = PathBuf::from(val("--history-baseline")),
            _ => {
                eprintln!("{USAGE}");
                exit(2)
            }
        }
    }
    a
}

fn parsed(flag: &str, raw: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{USAGE}\nbad value for {flag}: {raw}");
        exit(2)
    })
}

struct Measurement {
    kernel: String,
    /// SIMD executor every mode of this measurement dispatched to.
    isa: String,
    injections: usize,
    full_secs: f64,
    diff_secs: f64,
    batch_secs: f64,
    resumed_runs: u64,
    forked_runs: u64,
    bucket_restores: u64,
    skipped_tiles: u64,
    snapshot_bytes: f64,
    outcomes_match: bool,
    /// Top self-time phases of one profiled batched rep, hottest first.
    top_phases: Vec<(String, u64)>,
}

impl Measurement {
    fn full_rate(&self) -> f64 {
        self.injections as f64 / self.full_secs.max(1e-9)
    }
    fn diff_rate(&self) -> f64 {
        self.injections as f64 / self.diff_secs.max(1e-9)
    }
    fn batch_rate(&self) -> f64 {
        self.injections as f64 / self.batch_secs.max(1e-9)
    }
    fn diff_speedup(&self) -> f64 {
        self.full_secs / self.diff_secs.max(1e-9)
    }
    fn batch_speedup(&self) -> f64 {
        self.full_secs / self.batch_secs.max(1e-9)
    }
}

/// Runs `campaign` `reps` times against a pre-warmed golden cache and
/// returns the minimum injection-phase wall time (the repetition least
/// disturbed by scheduler noise — the campaign itself is deterministic,
/// so every repetition does identical work), the outcome tally, and the
/// snapshot-set size the warm-up's golden capture reported.
fn timed_run(
    campaign: &Campaign,
    full_execution: bool,
    no_batch: bool,
    reps: usize,
    metrics: &Arc<MetricsRegistry>,
) -> (f64, Vec<(String, usize)>, f64) {
    // Warm a mode-private cache so the measured run's golden phase is a
    // hit (differential entries carry snapshots, full ones do not —
    // they must not share a cache or the second mode would refresh it).
    let cache = Arc::new(GoldenCache::new(GoldenCache::DEFAULT_BYTES));
    let warm = Campaign {
        injections: 1,
        ..campaign.clone()
    };
    let options = |metrics: Arc<MetricsRegistry>| RunOptions {
        golden_cache: Some(Arc::clone(&cache)),
        full_execution,
        no_batch,
        metrics: Some(metrics),
        ..RunOptions::default()
    };
    let warm_metrics = Arc::new(MetricsRegistry::new());
    warm.run_with(&options(Arc::clone(&warm_metrics)))
        .unwrap_or_else(|e| {
            eprintln!("diff-bench: warm-up failed: {e}");
            exit(1)
        });
    let snapshot_bytes = warm_metrics
        .snapshot()
        .gauge("radcrit_snapshot_bytes", &[])
        .unwrap_or(0.0);

    let mut secs = f64::INFINITY;
    let mut tally: std::collections::BTreeMap<String, usize> = Default::default();
    for rep in 0..reps.max(1) {
        let t0 = Instant::now();
        let result = campaign
            .run_with(&options(Arc::clone(metrics)))
            .unwrap_or_else(|e| {
                eprintln!("diff-bench: campaign failed: {e}");
                exit(1)
            });
        secs = secs.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            for r in &result.records {
                *tally.entry(r.outcome.tag().to_owned()).or_default() += 1;
            }
        }
    }
    (secs, tally.into_iter().collect(), snapshot_bytes)
}

/// Runs one extra batched rep with the phase profiler on (against a
/// freshly warmed cache, like the timed reps) and returns the top-5
/// self-time phases. Untimed: profiled reps never feed the rate
/// columns, so the ≤5 % enabled-profiler overhead cannot skew them.
fn profiled_phases(campaign: &Campaign) -> Vec<(String, u64)> {
    // This rep is untimed, so exhaustive per-element attribution is
    // free: every memory sub-phase call is timed, not one tile in
    // TILE_SAMPLE_STRIDE.
    radcrit_obs::profile::set_tile_sample_stride(1);
    let cache = Arc::new(GoldenCache::new(GoldenCache::DEFAULT_BYTES));
    let warm = Campaign {
        injections: 1,
        ..campaign.clone()
    };
    let options = |profile| RunOptions {
        golden_cache: Some(Arc::clone(&cache)),
        profile,
        ..RunOptions::default()
    };
    if warm.run_with(&options(None)).is_err() {
        return Vec::new();
    }
    let collector = Arc::new(ProfileCollector::new());
    if campaign
        .run_with(&options(Some(Arc::clone(&collector))))
        .is_err()
    {
        return Vec::new();
    }
    collector
        .snapshot()
        .hot_phases(5)
        .into_iter()
        .map(|(name, self_ns, _count)| (name, self_ns))
        .collect()
}

fn measure(
    name: &str,
    spec: KernelSpec,
    injections: usize,
    workers: usize,
    reps: usize,
) -> Measurement {
    let campaign =
        Campaign::new(DeviceConfig::kepler_k40(), spec, injections, 2017).with_workers(workers);

    let full_metrics = Arc::new(MetricsRegistry::new());
    let (full_secs, full_tally, _) = timed_run(&campaign, true, false, reps, &full_metrics);
    let diff_metrics = Arc::new(MetricsRegistry::new());
    let (diff_secs, diff_tally, snapshot_bytes) =
        timed_run(&campaign, false, true, reps, &diff_metrics);
    let batch_metrics = Arc::new(MetricsRegistry::new());
    let (batch_secs, batch_tally, _) = timed_run(&campaign, false, false, reps, &batch_metrics);

    // Counters accumulate across repetitions of the identical campaign;
    // report the per-campaign figure.
    let per_rep = |m: &MetricsRegistry, name: &str| {
        m.snapshot().counter(name, &[]).unwrap_or(0) / reps.max(1) as u64
    };
    Measurement {
        kernel: name.to_owned(),
        isa: radcrit_core::exec::active().name().to_owned(),
        injections,
        full_secs,
        diff_secs,
        batch_secs,
        resumed_runs: per_rep(&diff_metrics, "radcrit_engine_resumed_runs_total"),
        forked_runs: per_rep(&batch_metrics, "radcrit_engine_forked_runs_total"),
        bucket_restores: per_rep(&batch_metrics, "radcrit_bucket_restores_total"),
        skipped_tiles: per_rep(&diff_metrics, "radcrit_snapshot_skipped_tiles_total"),
        snapshot_bytes,
        outcomes_match: full_tally == diff_tally && full_tally == batch_tally,
        top_phases: profiled_phases(&campaign),
    }
}

fn main() {
    let args = parse_args();
    let kernels: Vec<(String, KernelSpec)> = vec![
        (
            format!("dgemm-{0}x{0}", args.n),
            KernelSpec::Dgemm { n: args.n },
        ),
        (
            "hotspot-64x64x8".to_owned(),
            KernelSpec::HotSpot {
                rows: 64,
                cols: 64,
                iterations: 8,
            },
        ),
        (
            "lavamd-5".to_owned(),
            KernelSpec::LavaMd {
                grid: 5,
                particles: 8,
            },
        ),
    ];

    let isa = radcrit_core::exec::active();
    println!(
        "diff-bench: {} injections per kernel, {} worker(s), best of {} rep(s), \
         K40 config, simd isa {isa}",
        args.injections, args.workers, args.reps
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>11} {:>11} {:>8} {:>8} {:>8}",
        "kernel",
        "full s",
        "diff s",
        "batch s",
        "full inj/s",
        "batch in/s",
        "diff",
        "batch",
        "forks"
    );

    let mut rows = Vec::new();
    for (name, spec) in kernels {
        let m = measure(&name, spec, args.injections, args.workers, args.reps);
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>9.3} {:>11.1} {:>11.1} {:>7.2}x {:>7.2}x {:>8}",
            m.kernel,
            m.full_secs,
            m.diff_secs,
            m.batch_secs,
            m.full_rate(),
            m.batch_rate(),
            m.diff_speedup(),
            m.batch_speedup(),
            m.forked_runs,
        );
        if !m.outcomes_match {
            eprintln!(
                "diff-bench: outcome tallies diverged between modes on {}",
                m.kernel
            );
            exit(1)
        }
        if m.resumed_runs == 0 {
            eprintln!(
                "diff-bench: no injection resumed from a snapshot on {}",
                m.kernel
            );
            exit(1)
        }
        if m.forked_runs == 0 {
            eprintln!(
                "diff-bench: no injection forked off a warm bucket on {}",
                m.kernel
            );
            exit(1)
        }
        rows.push(m);
    }

    let json = render_json(&args, &rows);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("diff-bench: cannot write {}: {e}", args.out.display());
        exit(1)
    }
    println!("wrote {}", args.out.display());

    // Continuous history: one fingerprinted row per kernel, every run —
    // smoke included, so the CI runner's trend line exists at all.
    let host = history::host_fingerprint();
    let commit = history::commit_fingerprint();
    let hist: Vec<HistoryRow> = rows
        .iter()
        .map(|m| HistoryRow {
            host: host.clone(),
            commit: commit.clone(),
            kernel: m.kernel.clone(),
            isa: m.isa.clone(),
            batch_inj_per_sec: m.batch_rate(),
            full_inj_per_sec: m.full_rate(),
            top_phases: m.top_phases.clone(),
        })
        .collect();
    if let Err(e) = history::append_rows(&args.history, &hist) {
        eprintln!("diff-bench: cannot append history: {e}");
        exit(1)
    }
    println!(
        "appended {} rows to {} (host {host}, commit {commit})",
        hist.len(),
        args.history.display()
    );
    if let Some((phase, self_ns)) = rows[0].top_phases.first() {
        println!(
            "hottest phase on {}: {phase} ({:.1} ms self time)",
            rows[0].kernel,
            *self_ns as f64 / 1e6
        );
    }

    let dgemm = &rows[0];
    if args.smoke {
        return;
    }

    // Perf-history gate: every kernel in the committed baseline must be
    // within 10 % of its committed batched rate — but only like for
    // like on the ISA. Baselines predating the isa column were measured
    // with the native vectorized executor, so they only gate runs that
    // are not pinned away from it (hardware(), not detected(): the
    // RADCRIT_FORCE_SCALAR pin must read as "pinned", not "native").
    let native = radcrit_core::exec::hardware();
    for (kernel, base_isa, base) in history::baseline_batch_rates(&args.history_baseline) {
        let comparable = match &base_isa {
            Some(b) => *b == isa.name(),
            None => isa == native,
        };
        if !comparable {
            println!(
                "skipping history gate for {kernel}: baseline isa {} vs active {isa}",
                base_isa.as_deref().unwrap_or("pre-isa (native)")
            );
            continue;
        }
        if let Some(m) = rows.iter().find(|m| m.kernel == kernel) {
            if let Err(msg) = history::check_regression(&kernel, m.batch_rate(), base) {
                eprintln!("diff-bench: {msg}");
                exit(1)
            }
        }
    }
    // Acceptance floor: 2.5x over the *committed* pre-batching full
    // rate (the baseline the batch scheduler was specified against).
    // The in-process full mode also benefits from engine speedups that
    // landed alongside batching, so it understates the delivered gain;
    // it is only the fallback when no baseline file is around. The
    // committed baseline was measured with the native executor, so a
    // scalar-pinned run (correctness reference, not a perf claim) is
    // exempt.
    if isa != native {
        println!("skipping acceptance floor: active isa {isa} is pinned below native {native}");
        return;
    }
    match baseline_dgemm_full_rate(&args.baseline) {
        Some(base) => {
            let gain = dgemm.batch_rate() / base.max(1e-9);
            if gain < 2.5 {
                eprintln!(
                    "diff-bench: batched DGEMM at {:.1} inj/s is {:.2}x the committed \
                     baseline of {:.1} inj/s ({}), below the 2.5x acceptance floor",
                    dgemm.batch_rate(),
                    gain,
                    base,
                    args.baseline.display()
                );
                exit(1)
            }
        }
        None => {
            if dgemm.batch_speedup() < 2.5 {
                eprintln!(
                    "diff-bench: no baseline at {}; in-process batched DGEMM speedup \
                     {:.2}x is below the 2.5x acceptance floor",
                    args.baseline.display(),
                    dgemm.batch_speedup()
                );
                exit(1)
            }
        }
    }
}

/// Pulls `full_inj_per_sec` out of the baseline file's DGEMM row
/// without a JSON dependency: the file is machine-written by this
/// binary's predecessor with one kernel object per line.
fn baseline_dgemm_full_rate(path: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"kernel\": \"dgemm-") && l.contains("full_inj_per_sec"))?;
    let tail = line.split("\"full_inj_per_sec\":").nth(1)?;
    tail.split([',', '}']).next()?.trim().parse().ok()
}

fn render_json(args: &Args, rows: &[Measurement]) -> String {
    let mut s = String::from("{\n  \"bench\": \"batched-differential-injection-execution\",\n");
    s.push_str("  \"device\": \"K40\",\n  \"seed\": 2017,\n");
    s.push_str(&format!(
        "  \"injections_per_kernel\": {},\n  \"workers\": {},\n  \"reps\": {},\n  \"kernels\": [\n",
        args.injections, args.workers, args.reps
    ));
    for (i, m) in rows.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\"kernel\": \"{}\", \"isa\": \"{}\", \"injections\": {}, ",
                "\"full_secs\": {:.4}, \"diff_secs\": {:.4}, \"batch_secs\": {:.4}, ",
                "\"full_inj_per_sec\": {:.2}, \"diff_inj_per_sec\": {:.2}, ",
                "\"batch_inj_per_sec\": {:.2}, ",
                "\"diff_speedup\": {:.3}, \"batch_speedup\": {:.3}, ",
                "\"resumed_runs\": {}, \"forked_runs\": {}, \"bucket_restores\": {}, ",
                "\"snapshot_skipped_tiles\": {}, \"snapshot_bytes\": {:.0}, ",
                "\"outcomes_match\": {}}}{}\n"
            ),
            m.kernel,
            m.isa,
            m.injections,
            m.full_secs,
            m.diff_secs,
            m.batch_secs,
            m.full_rate(),
            m.diff_rate(),
            m.batch_rate(),
            m.diff_speedup(),
            m.batch_speedup(),
            m.resumed_runs,
            m.forked_runs,
            m.bucket_restores,
            m.skipped_tiles,
            m.snapshot_bytes,
            m.outcomes_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
