//! `fabric-bench` — scaling benchmark of the federated campaign fabric.
//!
//! ```text
//! fabric-bench [--n 64] [--injections 600] [--fleets 1,2,3] [--seed 2017]
//! ```
//!
//! Runs the *same* campaign once per fleet size: a coordinator shards
//! the injection range over `k` in-process worker daemons (one shard
//! per worker) and merges their live streams back into one summary.
//! Reports one scaling row per fleet — wall time, throughput in
//! injections/s, and speedup over the single-worker fleet — and
//! verifies every merged summary is byte-identical across fleet sizes,
//! the fabric's core invariant.

use std::process::exit;
use std::time::{Duration, Instant};

use radcrit_campaign::KernelSpec;
use radcrit_serve::coord::{self, CoordinatorConfig};
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

const USAGE: &str =
    "usage: fabric-bench [--n 64] [--injections 600] [--fleets 1,2,3] [--seed 2017]";

struct Args {
    n: usize,
    injections: usize,
    fleets: Vec<usize>,
    seed: u64,
}

fn bail(flag: &str) -> ! {
    eprintln!("{USAGE}");
    eprintln!("bad or missing value for {flag}");
    exit(2)
}

fn parse_args() -> Args {
    let mut a = Args {
        n: 64,
        injections: 600,
        fleets: vec![1, 2, 3],
        seed: 2017,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let raw = match flag.as_str() {
            "--n" | "--injections" | "--fleets" | "--seed" => {
                it.next().unwrap_or_else(|| bail(&flag))
            }
            _ => {
                eprintln!("{USAGE}");
                exit(2)
            }
        };
        match flag.as_str() {
            "--n" => a.n = raw.parse().unwrap_or_else(|_| bail("--n")),
            "--injections" => a.injections = raw.parse().unwrap_or_else(|_| bail("--injections")),
            "--seed" => a.seed = raw.parse().unwrap_or_else(|_| bail("--seed")),
            "--fleets" => {
                a.fleets = raw
                    .split(',')
                    .map(|p| p.trim().parse().unwrap_or_else(|_| bail("--fleets")))
                    .collect();
                if a.fleets.is_empty() || a.fleets.contains(&0) {
                    bail("--fleets");
                }
            }
            _ => unreachable!(),
        }
    }
    a
}

/// One federated run over a `k`-worker fleet; returns (wall, summary).
fn run_fleet(base: &std::path::Path, spec: &JobSpec, k: usize) -> (Duration, String) {
    let mut workers = Vec::with_capacity(k);
    for i in 0..k {
        let handle = daemon::start(DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: base.join(format!("fleet{k}-w{i}")),
            pool: 1,
            queue_depth: 8,
            ..DaemonConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("fabric-bench: cannot start worker: {e}");
            exit(1)
        });
        workers.push(handle);
    }
    let t0 = Instant::now();
    let coordinator = coord::start(CoordinatorConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: base.join(format!("fleet{k}-coord")),
        spec: spec.clone(),
        shards: k,
        workers: workers.iter().map(|w| w.addr().to_string()).collect(),
        heartbeat_interval: Duration::from_millis(250),
        heartbeat_timeout: Duration::from_secs(5),
        summary_out: None,
        trace_out: None,
    })
    .unwrap_or_else(|e| {
        eprintln!("fabric-bench: cannot start coordinator: {e}");
        exit(1)
    });
    coordinator
        .wait_done(Duration::from_secs(600))
        .unwrap_or_else(|e| {
            eprintln!("fabric-bench: fleet of {k} did not finish: {e}");
            exit(1)
        });
    let wall = t0.elapsed();
    let summary = Client::new(coordinator.addr().to_string())
        .result("merged")
        .unwrap_or_else(|e| {
            eprintln!("fabric-bench: merged result fetch failed: {e}");
            exit(1)
        });
    coordinator.shutdown().ok();
    for handle in workers {
        Client::new(handle.addr().to_string()).shutdown().ok();
        handle.join();
    }
    (wall, summary)
}

fn main() {
    let args = parse_args();
    let base = std::env::temp_dir().join(format!("radcrit-fabric-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let mut spec = JobSpec::new(
        DeviceKind::K40,
        KernelSpec::Dgemm { n: args.n },
        args.injections,
        args.seed,
    );
    spec.scale = 8;
    println!(
        "fabric scaling: dgemm n={} x {} injections (seed {}), one shard per worker",
        args.n, args.injections, args.seed
    );

    let mut rows: Vec<(usize, Duration)> = Vec::new();
    let mut reference: Option<String> = None;
    for &k in &args.fleets {
        let (wall, summary) = run_fleet(&base, &spec, k);
        match &reference {
            None => reference = Some(summary),
            Some(r) if *r == summary => {}
            Some(_) => {
                eprintln!("fabric-bench: fleet of {k} produced a DIFFERENT merged summary");
                exit(1)
            }
        }
        rows.push((k, wall));
    }

    let base_wall = rows[0].1.as_secs_f64();
    println!("----");
    println!("workers |  wall (s) |  inj/s | speedup");
    for (k, wall) in &rows {
        let secs = wall.as_secs_f64();
        println!(
            "{k:>7} | {secs:>9.2} | {:>6.0} | {:>6.2}x",
            args.injections as f64 / secs,
            base_wall / secs,
        );
    }
    println!("merged summaries byte-identical across all fleet sizes");

    std::fs::remove_dir_all(&base).ok();
}
