//! Reproduction harness: regenerates every table and figure of the HPCA
//! 2017 criticality paper from fresh simulated-beam campaigns.
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [EXPERIMENT...]
//!
//! EXPERIMENT: table1 table2 ratios fig2 fig3 fig4 fig5 fig6 fig7
//!             fig8 fig9 abft masscheck all (default: all)
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::SeedableRng;

use radcrit_abft::{AbftDgemm, AbftOutcome};
use radcrit_accel::config::DeviceConfig;
use radcrit_accel::engine::Engine;
use radcrit_bench::{
    fit_header, fit_row, scatter_grid, scatter_stats, shape_report, table, ShapeCheck,
};
use radcrit_campaign::config::KernelSpec;
use radcrit_campaign::log as clog;
use radcrit_campaign::presets::{self, Preset, Scale};
use radcrit_campaign::runner::{compare_with_logical_coords, CampaignResult};
use radcrit_campaign::summary::CampaignSummary;
use radcrit_faults::sampler::{FaultSampler, InjectionPlan};
use radcrit_kernels::dgemm::Dgemm;
use radcrit_kernels::profile::KernelClass;
use radcrit_kernels::shallow::ShallowWater;

fn main() {
    let mut scale = Scale::Standard;
    let mut seed = 2017u64;
    let mut out_dir: Option<PathBuf> = None;
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out_dir = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a path")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--seed N] [--out DIR] [EXPERIMENT...]\n\
                     experiments: table1 table2 ratios fig2 fig3 fig4 fig5 fig6 fig7 \
                     fig8 fig9 abft masscheck ablate hardening injector multistrike all"
                );
                return;
            }
            other => experiments.push(other.to_owned()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "table2",
            "ratios",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "abft",
            "masscheck",
            "ablate",
            "hardening",
            "injector",
            "multistrike",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    let mut ctx = Ctx::new(scale, seed, out_dir);
    for e in &experiments {
        match e.as_str() {
            "table1" => table1(),
            "table2" => table2(&mut ctx),
            "ratios" => ratios(&mut ctx),
            "fig2" => fig2(&mut ctx),
            "fig3" => fig3(&mut ctx),
            "fig4" => fig4(&mut ctx),
            "fig5" => fig5(&mut ctx),
            "fig6" => fig6(&mut ctx),
            "fig7" => fig7(&mut ctx),
            "fig8" => fig8(&mut ctx),
            "fig9" => fig9(&mut ctx),
            "abft" => abft(&mut ctx),
            "masscheck" => masscheck(&mut ctx),
            "ablate" => ablate(&mut ctx),
            "hardening" => hardening(&mut ctx),
            "injector" => injector(&mut ctx),
            "multistrike" => multistrike(&mut ctx),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
    println!("\n==== overall: {} ====", ctx.tally());
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Campaign cache: each (device, kernel, size) campaign runs once even
/// when several figures need it.
struct Ctx {
    scale: Scale,
    seed: u64,
    out_dir: Option<PathBuf>,
    cache: BTreeMap<String, CampaignResult>,
    checks_pass: usize,
    checks_total: usize,
}

impl Ctx {
    fn new(scale: Scale, seed: u64, out_dir: Option<PathBuf>) -> Self {
        if let Some(d) = &out_dir {
            let _ = fs::create_dir_all(d);
        }
        Ctx {
            scale,
            seed,
            out_dir,
            cache: BTreeMap::new(),
            checks_pass: 0,
            checks_total: 0,
        }
    }

    fn run(&mut self, preset: &Preset) -> &CampaignResult {
        let key = format!(
            "{}-{}-{}",
            preset.device.kind(),
            preset.kernel.name(),
            preset.kernel.input_label()
        );
        if !self.cache.contains_key(&key) {
            eprintln!("[campaign] {key}: {} injections ...", preset.injections);
            let t0 = std::time::Instant::now();
            let result = preset
                .campaign(self.seed)
                .run()
                .unwrap_or_else(|e| die(&format!("campaign {key} failed: {e}")));
            eprintln!("[campaign] {key}: done in {:.1?}", t0.elapsed());
            if let Some(dir) = &self.out_dir {
                let mut logbuf = Vec::new();
                let mut csvbuf = Vec::new();
                let _ = clog::write_log(&result, &mut logbuf);
                let _ = clog::write_csv(&result, &mut csvbuf);
                let _ = fs::write(dir.join(format!("{key}.log")), logbuf);
                let _ = fs::write(dir.join(format!("{key}.csv")), csvbuf);
            }
            self.cache.insert(key.clone(), result);
        }
        &self.cache[&key]
    }

    fn summaries(&mut self, presets: &[Preset]) -> Vec<CampaignSummary> {
        presets.iter().map(|p| self.run(p).summary()).collect()
    }

    fn record(&mut self, checks: &[ShapeCheck]) {
        self.checks_pass += checks.iter().filter(|c| c.pass).count();
        self.checks_total += checks.len();
    }

    fn tally(&self) -> String {
        format!(
            "{} of {} shape checks hold",
            self.checks_pass, self.checks_total
        )
    }
}

fn heading(title: &str) {
    println!("\n==================== {title} ====================");
}

// ---------------------------------------------------------------- tables

fn table1() {
    heading("Table I: classification of parallel kernels");
    // The asserted classification, plus columns *measured* from traced
    // executions: operational intensity (bound-by proxy) and the
    // per-tile work variation (load-balance proxy).
    let specs = [
        ("DGEMM", KernelClass::DGEMM, KernelSpec::Dgemm { n: 64 }),
        (
            "LavaMD",
            KernelClass::LAVAMD,
            KernelSpec::LavaMd {
                grid: 4,
                particles: 8,
            },
        ),
        (
            "HotSpot",
            KernelClass::HOTSPOT,
            KernelSpec::HotSpot {
                rows: 64,
                cols: 64,
                iterations: 8,
            },
        ),
        (
            "CLAMR",
            KernelClass::CLAMR,
            KernelSpec::Shallow {
                rows: 64,
                cols: 64,
                steps: 30,
            },
        ),
    ];
    let engine = Engine::new(presets::k40());
    let rows: Vec<Vec<String>> = specs
        .iter()
        .map(|(name, c, spec)| {
            let mut kernel = spec.build(1).expect("preset kernel");
            let (_, trace) = engine
                .golden_traced(kernel.as_mut())
                .expect("traced golden run");
            vec![
                (*name).to_owned(),
                c.bound.to_string(),
                c.balance.to_string(),
                c.access.to_string(),
                format!("{:.1}", trace.operational_intensity()),
                format!("{:.2}", trace.tile_cv()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Kernel",
                "Bound by",
                "Load Balance",
                "Memory Access",
                "measured ops/elem",
                "measured tile CV",
            ],
            &rows
        )
    );
}

fn table2(ctx: &mut Ctx) {
    heading("Table II: parallel kernels' details (scaled presets)");
    let mut rows = Vec::new();
    let mut add = |device: &DeviceConfig, spec: KernelSpec| {
        let kernel = spec.build(1).expect("preset kernels build");
        rows.push(vec![
            spec.name().to_owned(),
            device.kind().to_string(),
            spec.input_label(),
            kernel.total_threads().to_string(),
        ]);
    };
    let (k40, phi) = (presets::k40(), presets::xeon_phi());
    for p in presets::dgemm(&k40, ctx.scale) {
        add(&k40, p.kernel);
    }
    for p in presets::dgemm(&phi, ctx.scale) {
        add(&phi, p.kernel);
    }
    for p in presets::lavamd(&k40, ctx.scale) {
        add(&k40, p.kernel);
    }
    for p in presets::lavamd(&phi, ctx.scale) {
        add(&phi, p.kernel);
    }
    add(&k40, presets::hotspot(&k40, ctx.scale).kernel);
    add(&phi, presets::hotspot(&phi, ctx.scale).kernel);
    add(&phi, presets::clamr(&phi, ctx.scale).kernel);
    println!(
        "{}",
        table(&["Kernel", "Device", "Input size", "#Threads"], &rows)
    );
}

// ---------------------------------------------------------------- ratios

fn ratios(ctx: &mut Ctx) {
    heading("SDC : (crash+hang) ratios (Section V intro)");
    let matrix = presets::full_matrix(ctx.scale);
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for p in &matrix {
        let s = ctx.run(p).summary();
        let ratio = s.sdc_to_crash_hang_ratio();
        rows.push(vec![
            s.kernel.clone(),
            s.device.clone(),
            s.input.clone(),
            s.sdc.to_string(),
            (s.crash + s.hang).to_string(),
            format!("{ratio:.2}"),
        ]);
        checks.push(ShapeCheck::new(
            format!(
                "{} {} {}: SDCs at least as likely as crashes+hangs",
                s.device, s.kernel, s.input
            ),
            format!("{ratio:.2}x"),
            ratio >= 1.0,
        ));
    }
    println!(
        "{}",
        table(
            &["kernel", "device", "input", "SDC", "crash+hang", "ratio"],
            &rows
        )
    );
    println!("{}", shape_report("ratios", &checks));
    ctx.record(&checks);
}

// --------------------------------------------------------------- helpers

fn dgemm_summaries(ctx: &mut Ctx, phi: bool) -> Vec<CampaignSummary> {
    let device = if phi {
        presets::xeon_phi()
    } else {
        presets::k40()
    };
    let presets = presets::dgemm(&device, ctx.scale);
    ctx.summaries(&presets)
}

fn lavamd_summaries(ctx: &mut Ctx, phi: bool) -> Vec<CampaignSummary> {
    let device = if phi {
        presets::xeon_phi()
    } else {
        presets::k40()
    };
    let presets = presets::lavamd(&device, ctx.scale);
    ctx.summaries(&presets)
}

fn hotspot_summary(ctx: &mut Ctx, phi: bool) -> CampaignSummary {
    let device = if phi {
        presets::xeon_phi()
    } else {
        presets::k40()
    };
    let preset = presets::hotspot(&device, ctx.scale);
    ctx.run(&preset).summary()
}

fn clamr_summary(ctx: &mut Ctx) -> CampaignSummary {
    let preset = presets::clamr(&presets::xeon_phi(), ctx.scale);
    ctx.run(&preset).summary()
}

fn print_scatters(title: &str, summaries: &[CampaignSummary], y_cap: f64) {
    for s in summaries {
        println!("\n--- {title} {} {} ---", s.device, s.input);
        println!("{}", scatter_stats(s));
        println!("{}", scatter_grid(&s.scatter, y_cap, 48, 10));
    }
}

fn print_fit(title: &str, summaries: &[CampaignSummary]) {
    println!("\n--- {title}: FIT break-down, All mismatches (a.u.) ---");
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| fit_row(&s.input, &s.fit_all, 1e-3))
        .collect();
    println!("{}", table(&fit_header(), &rows));
    println!("--- {title}: FIT break-down, > 2% tolerance (a.u.) ---");
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| fit_row(&s.input, &s.fit_filtered, 1e-3))
        .collect();
    println!("{}", table(&fit_header(), &rows));
}

// ------------------------------------------------------------ figures 2-3

fn fig2(ctx: &mut Ctx) {
    heading("Fig. 2: DGEMM mean relative error vs incorrect elements");
    let k40 = dgemm_summaries(ctx, false);
    let phi = dgemm_summaries(ctx, true);
    print_scatters("DGEMM", &k40, 100.0);
    print_scatters("DGEMM", &phi, 100.0);

    let k40_small = mean_of(&k40, |s| s.fraction_mre_at_most(10.0));
    let phi_small = mean_of(&phi, |s| s.fraction_mre_at_most(10.0));
    // Median corrupted fraction at the largest input per device — the
    // paper's "most executions had at most 0.4% of output elements
    // corrupted".
    let median_fraction = |s: &CampaignSummary, n: usize| {
        let elems: Vec<f64> = s
            .scatter
            .iter()
            .map(|p| p.incorrect_elements as f64)
            .collect();
        radcrit_core::stats::quantile(&elems, 0.5).unwrap_or(0.0) / (n * n) as f64
    };
    let k40_frac = k40.last().map(|s| {
        let n = s
            .input
            .split('x')
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap_or(1);
        median_fraction(s, n)
    });
    let phi_frac = phi.last().map(|s| {
        let n = s
            .input
            .split('x')
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap_or(1);
        median_fraction(s, n)
    });
    let checks = vec![
        ShapeCheck::new(
            "K40: most DGEMM SDCs have small (<10%) mean relative error (paper: ~75%)",
            format!("{:.0}%", k40_small * 100.0),
            k40_small > 0.5,
        ),
        ShapeCheck::new(
            "Phi: mostly large relative errors — far fewer small-error SDCs than K40",
            format!(
                "K40 {:.0}% vs Phi {:.0}% small",
                k40_small * 100.0,
                phi_small * 100.0
            ),
            phi_small < k40_small,
        ),
        ShapeCheck::new(
            "the typical execution corrupts a small output fraction (paper: <=0.4%)",
            format!(
                "median corrupted fraction K40 {:.3}%, Phi {:.3}%",
                k40_frac.unwrap_or(0.0) * 100.0,
                phi_frac.unwrap_or(0.0) * 100.0
            ),
            k40_frac.unwrap_or(1.0) < 0.005 && phi_frac.unwrap_or(1.0) < 0.01,
        ),
    ];
    println!("{}", shape_report("fig2", &checks));
    ctx.record(&checks);
}

fn fig3(ctx: &mut Ctx) {
    heading("Fig. 3: DGEMM spatial locality and magnitude (FIT a.u.)");
    let k40 = dgemm_summaries(ctx, false);
    let phi = dgemm_summaries(ctx, true);
    print_fit("DGEMM K40", &k40);
    print_fit("DGEMM Xeon Phi", &phi);

    let k40_growth = k40.last().map(|l| l.fit_all_total()).unwrap_or(0.0)
        / k40
            .first()
            .map(|f| f.fit_all_total())
            .unwrap_or(1.0)
            .max(1e-30);
    let phi_growth = phi[phi.len().min(3) - 1].fit_all_total()
        / phi
            .first()
            .map(|f| f.fit_all_total())
            .unwrap_or(1.0)
            .max(1e-30);
    let k40_filtered = mean_of(&k40, CampaignSummary::filtered_out_fraction);
    let phi_filtered = mean_of(&phi, CampaignSummary::filtered_out_fraction);
    let checks = vec![
        ShapeCheck::new(
            "K40 FIT grows strongly with input size (paper: ~7x over 4x side)",
            format!("{k40_growth:.1}x"),
            k40_growth > 3.0,
        ),
        ShapeCheck::new(
            "Phi FIT nearly flat with input size (paper: ~1.8x)",
            format!("{phi_growth:.1}x"),
            phi_growth < 3.0 && phi_growth < k40_growth,
        ),
        ShapeCheck::new(
            "K40 has the higher raw DGEMM FIT",
            format!(
                "K40 {:.1} vs Phi {:.1} a.u.",
                k40.last().map(|s| s.fit_all_total()).unwrap_or(0.0) * 1e-3,
                phi[phi.len().min(3) - 1].fit_all_total() * 1e-3
            ),
            k40.last().map(|s| s.fit_all_total()).unwrap_or(0.0)
                > phi[phi.len().min(3) - 1].fit_all_total(),
        ),
        ShapeCheck::new(
            "K40: 2% tolerance removes a large share of DGEMM SDCs (paper: 50-75%)",
            format!("{:.0}%", k40_filtered * 100.0),
            (0.35..=0.85).contains(&k40_filtered),
        ),
        ShapeCheck::new(
            "Phi: 2% tolerance removes almost nothing (paper: 0%)",
            format!("{:.0}%", phi_filtered * 100.0),
            phi_filtered < 0.25 && phi_filtered < k40_filtered,
        ),
    ];
    println!("{}", shape_report("fig3", &checks));
    ctx.record(&checks);
}

// ------------------------------------------------------------ figures 4-5

fn fig4(ctx: &mut Ctx) {
    heading("Fig. 4: LavaMD mean relative error vs incorrect elements");
    let k40 = lavamd_summaries(ctx, false);
    let phi = lavamd_summaries(ctx, true);
    print_scatters("LavaMD", &k40, 20_000.0);
    print_scatters("LavaMD", &phi, 20_000.0);

    // The paper's LavaMD MREs cluster in the thousands of percent: judge
    // by the errors that survive the tolerance filter (the critical
    // population the figures actually show).
    let huge = |ss: &[CampaignSummary]| {
        let all: usize = ss.iter().map(|s| s.critical_sdc).sum();
        if all == 0 {
            return 0.0;
        }
        ss.iter()
            .flat_map(|s| s.scatter.iter())
            .filter(|p| p.mean_relative_error >= 99.0)
            .count() as f64
            / all as f64
    };
    let p75 = |ss: &[CampaignSummary]| {
        let mres: Vec<f64> = ss
            .iter()
            .flat_map(|s| s.scatter.iter())
            .map(|p| p.mean_relative_error.min(1e12))
            .collect();
        radcrit_core::stats::quantile(&mres, 0.75).unwrap_or(0.0)
    };
    let k40_elems = mean_of(&k40, CampaignSummary::mean_incorrect_elements);
    let phi_elems = mean_of(&phi, CampaignSummary::mean_incorrect_elements);
    let (k40_huge, k40_p75, phi_p75) = (huge(&k40), p75(&k40), p75(&phi));
    let checks = vec![
        ShapeCheck::new(
            "K40 LavaMD criticals are drastically wrong — >=100% MRE (paper: 1e3-1e4 %)",
            format!(
                "{:.0}% of criticals at or beyond 100% MRE",
                k40_huge * 100.0
            ),
            k40_huge > 0.6,
        ),
        ShapeCheck::new(
            "Phi shows more incorrect elements than K40",
            format!("Phi {phi_elems:.1} vs K40 {k40_elems:.1}"),
            phi_elems > k40_elems,
        ),
        ShapeCheck::new(
            "but the Phi's errors are smaller in relative terms",
            format!("p75 MRE: Phi {phi_p75:.0}% vs K40 {k40_p75:.0}%"),
            phi_p75 < k40_p75,
        ),
    ];
    println!("{}", shape_report("fig4", &checks));
    ctx.record(&checks);
}

fn fig5(ctx: &mut Ctx) {
    heading("Fig. 5: LavaMD spatial locality and magnitude (FIT a.u.)");
    let k40 = lavamd_summaries(ctx, false);
    let phi = lavamd_summaries(ctx, true);
    print_fit("LavaMD K40", &k40);
    print_fit("LavaMD Xeon Phi", &phi);

    let k40_blocks: Vec<f64> = k40
        .iter()
        .map(CampaignSummary::block_locality_fraction)
        .collect();
    let phi_block = mean_of(&phi, CampaignSummary::block_locality_fraction);
    let k40_filtered = mean_of(&k40, CampaignSummary::filtered_out_fraction);
    let phi_filtered = mean_of(&phi, CampaignSummary::filtered_out_fraction);
    let k40_growth = growth(&k40);
    let checks =
        vec![
        ShapeCheck::new(
            "Phi LavaMD has a large cubic+square share, far above the K40's (paper: most errors)",
            format!(
                "Phi {:.0}% vs K40 {:.0}%",
                phi_block * 100.0,
                mean_of(&k40, CampaignSummary::block_locality_fraction) * 100.0
            ),
            phi_block > 0.3
                && phi_block > 2.0 * mean_of(&k40, CampaignSummary::block_locality_fraction),
        ),
        ShapeCheck::new(
            "K40 block (cubic+square) share decreases as the grid grows (paper: 55%->42%)",
            format!("{:?}", k40_blocks.iter().map(|v| (v * 100.0).round()).collect::<Vec<_>>()),
            k40_blocks.first().copied().unwrap_or(0.0) >= k40_blocks.last().copied().unwrap_or(0.0),
        ),
        ShapeCheck::new(
            "K40 LavaMD loses far fewer SDCs to the 2% filter than K40 DGEMM (paper: none at all)",
            format!("{:.0}% filtered", k40_filtered * 100.0),
            k40_filtered < 0.45,
        ),
        ShapeCheck::new(
            "Phi: only a small share of LavaMD errors below 2% (paper: ~a tenth)",
            format!("{:.0}% filtered", phi_filtered * 100.0),
            phi_filtered < 0.35,
        ),
        ShapeCheck::new(
            "K40 LavaMD FIT grows gently with input (paper: ~30% per step)",
            format!("{k40_growth:.2}x over the sweep"),
            k40_growth < 3.0,
        ),
    ];
    println!("{}", shape_report("fig5", &checks));
    ctx.record(&checks);
}

// ------------------------------------------------------------ figures 6-7

fn fig6(ctx: &mut Ctx) {
    heading("Fig. 6: HotSpot mean relative error vs incorrect elements");
    let k40 = hotspot_summary(ctx, false);
    let phi = hotspot_summary(ctx, true);
    print_scatters("HotSpot", std::slice::from_ref(&k40), 25.0);
    print_scatters("HotSpot", std::slice::from_ref(&phi), 25.0);

    let k40_small = k40.fraction_mre_at_most(25.0);
    let phi_small = phi.fraction_mre_at_most(25.0);
    let checks = vec![
        ShapeCheck::new(
            "HotSpot mean relative errors are small on both devices (paper: <25%)",
            format!(
                "K40 {:.0}% / Phi {:.0}% of SDCs below 25%",
                k40_small * 100.0,
                phi_small * 100.0
            ),
            k40_small > 0.7 && phi_small > 0.7,
        ),
        ShapeCheck::new(
            "Phi tends to more incorrect elements than K40 (paper: 130k vs 50k max)",
            format!(
                "mean Phi {:.0} vs K40 {:.0}",
                phi.mean_incorrect_elements(),
                k40.mean_incorrect_elements()
            ),
            phi.mean_incorrect_elements() > k40.mean_incorrect_elements(),
        ),
    ];
    println!("{}", shape_report("fig6", &checks));
    ctx.record(&checks);
}

fn fig7(ctx: &mut Ctx) {
    heading("Fig. 7: HotSpot spatial locality and magnitude (FIT a.u.)");
    let k40 = hotspot_summary(ctx, false);
    let phi = hotspot_summary(ctx, true);
    print_fit("HotSpot K40", std::slice::from_ref(&k40));
    print_fit("HotSpot Xeon Phi", std::slice::from_ref(&phi));

    let block_line = |s: &CampaignSummary| {
        s.fit_all.fraction_of(&[
            radcrit_core::locality::SpatialClass::Square,
            radcrit_core::locality::SpatialClass::Line,
            radcrit_core::locality::SpatialClass::Single,
        ])
    };
    let checks = vec![
        ShapeCheck::new(
            "HotSpot locality is square/line dominated (paper: only square and line)",
            format!(
                "K40 {:.0}%, Phi {:.0}% square+line+single",
                block_line(&k40) * 100.0,
                block_line(&phi) * 100.0
            ),
            block_line(&k40) > 0.8 && block_line(&phi) > 0.8,
        ),
        ShapeCheck::new(
            "the 2% filter removes most HotSpot SDCs (paper: 80-95%)",
            format!(
                "K40 {:.0}%, Phi {:.0}%",
                k40.filtered_out_fraction() * 100.0,
                phi.filtered_out_fraction() * 100.0
            ),
            k40.filtered_out_fraction() > 0.5 && phi.filtered_out_fraction() > 0.5,
        ),
    ];
    println!("{}", shape_report("fig7", &checks));
    ctx.record(&checks);
}

// ------------------------------------------------------------ figures 8-9

fn fig8(ctx: &mut Ctx) {
    heading("Fig. 8: CLAMR mean relative error vs incorrect elements (Xeon Phi)");
    let s = clamr_summary(ctx);
    print_scatters("CLAMR", std::slice::from_ref(&s), 100.0);
    let mres: Vec<f64> = s
        .scatter
        .iter()
        .map(|p| p.mean_relative_error)
        .filter(|v| v.is_finite())
        .collect();
    let med = radcrit_core::stats::quantile(&mres, 0.5).unwrap_or(0.0);
    let checks = vec![
        ShapeCheck::new(
            "CLAMR mean relative errors are moderate-to-large (paper: 25-50%)",
            format!("median {med:.0}%"),
            med > 5.0,
        ),
        ShapeCheck::new(
            "no CLAMR errors filtered at 2% (conserved error keeps growing)",
            format!("{:.0}% filtered", s.filtered_out_fraction() * 100.0),
            s.filtered_out_fraction() < 0.2,
        ),
        ShapeCheck::new(
            "CLAMR locality is overwhelmingly square (paper: 99%)",
            format!("{:.0}% square(+cubic)", s.block_locality_fraction() * 100.0),
            s.block_locality_fraction() > 0.6,
        ),
    ];
    println!("{}", shape_report("fig8", &checks));
    ctx.record(&checks);
}

fn fig9(ctx: &mut Ctx) {
    heading("Fig. 9: CLAMR error-locality map (wave of corrupted cells)");
    // Re-run injections with full mismatch retention until one SDC has a
    // sizeable footprint, then render its map like the paper's red-dot
    // plot.
    let preset = presets::clamr(&presets::xeon_phi(), ctx.scale);
    let engine = Engine::new(preset.device.clone());
    let mut kernel = preset
        .kernel
        .build(ctx.seed)
        .unwrap_or_else(|e| die(&format!("clamr build failed: {e}")));
    let golden = engine
        .golden(kernel.as_mut())
        .unwrap_or_else(|e| die(&format!("clamr golden failed: {e}")));
    let sampler = FaultSampler::new(&preset.device, &golden.profile);

    let mut best: Option<(usize, radcrit_core::report::ErrorReport)> = None;
    for i in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0xF19 << 32) ^ i);
        if let InjectionPlan::Strike(spec) = sampler.sample(&mut rng) {
            let run = engine
                .run(kernel.as_mut(), &spec, &mut rng)
                .unwrap_or_else(|e| die(&format!("clamr run failed: {e}")));
            let report = compare_with_logical_coords(&golden.output, &run.output, kernel.as_ref());
            let n = report.incorrect_elements();
            if best.as_ref().is_none_or(|(bn, _)| n > *bn) {
                best = Some((n, report));
            }
            if n > 400 {
                break;
            }
        }
    }
    match best {
        Some((n, report)) => {
            println!("{n} corrupted cells; map (rows x cols downsampled):\n");
            println!("{}", report.render_map(24, 48, '#'));
            let class = radcrit_core::locality::LocalityClassifier::default().classify(&report);
            let checks = vec![ShapeCheck::new(
                "the corruption forms a contiguous wave (square locality, Fig. 9)",
                format!("{n} cells, classified {class}"),
                n > 16 && class == radcrit_core::locality::SpatialClass::Square,
            )];
            println!("{}", shape_report("fig9", &checks));
            ctx.record(&checks);
        }
        None => println!("no SDC found in 200 attempts (unexpected)"),
    }
}

// ------------------------------------------------------------------ abft

fn abft(ctx: &mut Ctx) {
    heading("ABFT DGEMM: residual error rate by spatial class (Sections III, V-A)");
    let k40 = dgemm_summaries(ctx, false);
    let phi = dgemm_summaries(ctx, true);
    let mut rows = Vec::new();
    for s in k40.iter().chain(phi.iter()) {
        let residual = radcrit_abft::residual_fraction(&s.fit_all);
        rows.push(vec![
            s.device.clone(),
            s.input.clone(),
            format!("{:.0}%", s.fit_all.abft_correctable_fraction() * 100.0),
            format!("{:.0}%", residual * 100.0),
        ]);
    }
    println!(
        "{}",
        table(
            &["device", "input", "ABFT-correctable", "residual errors"],
            &rows
        )
    );

    // Live demonstration: run real corrupted products through the real
    // checksum checker.
    let n = 64;
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let mut kernel = Dgemm::new(n, ctx.seed).expect("valid dgemm");
    let golden = engine.golden(&mut kernel).expect("golden dgemm");
    let sampler = FaultSampler::new(&device, &golden.profile);
    let (a, b) = dgemm_inputs(n, ctx.seed);
    let checker = AbftDgemm::from_inputs(&a, &b, n, 1e-7);
    let (mut corrected, mut uncorrectable, mut undetected, mut sdc_total) = (0, 0, 0, 0);
    for i in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0xAB << 40) ^ i);
        if let InjectionPlan::Strike(spec) = sampler.sample(&mut rng) {
            let run = engine.run(&mut kernel, &spec, &mut rng).expect("dgemm run");
            if run.output != golden.output {
                sdc_total += 1;
                let mut c = run.output.clone();
                match checker.check(&mut c) {
                    AbftOutcome::Corrected(_) => {
                        if c.iter()
                            .zip(&golden.output)
                            .all(|(x, y)| (x - y).abs() <= 1e-6 * y.abs().max(1.0))
                        {
                            corrected += 1;
                        } else {
                            uncorrectable += 1;
                        }
                    }
                    AbftOutcome::DetectedUncorrectable { .. } => uncorrectable += 1,
                    AbftOutcome::Clean => undetected += 1,
                }
            }
        }
    }
    println!(
        "live ABFT on {sdc_total} corrupted products: {corrected} corrected, \
         {uncorrectable} detected-uncorrectable, {undetected} below checksum tolerance"
    );
    let checks = vec![ShapeCheck::new(
        "ABFT corrects a substantial share of real corrupted products",
        format!("{corrected}/{sdc_total}"),
        sdc_total == 0 || corrected * 5 >= sdc_total,
    )];
    println!("{}", shape_report("abft", &checks));
    ctx.record(&checks);
}

fn dgemm_inputs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    use radcrit_kernels::input::matrix_value;
    let mut a = Vec::with_capacity(n * n);
    let mut b = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            a.push(matrix_value(seed, i, j));
            b.push(matrix_value(seed ^ 0xB, i, j));
        }
    }
    (a, b)
}

// ------------------------------------------------------------- masscheck

fn masscheck(ctx: &mut Ctx) {
    heading("CLAMR mass-consistency check coverage (Section V-D)");
    let preset = presets::clamr(&presets::xeon_phi(), ctx.scale);
    let campaign_sdc = ctx.run(&preset).summary().sdc;
    // Recompute detection over fresh injections with output access.
    let engine = Engine::new(preset.device.clone());
    let mut kernel = preset.kernel.build(ctx.seed).expect("clamr builds");
    let golden = engine.golden(kernel.as_mut()).expect("clamr golden");
    let golden_mass = ShallowWater::total_mass(&golden.output);
    let sampler = FaultSampler::new(&preset.device, &golden.profile);
    let (mut detected, mut sdc) = (0usize, 0usize);
    for i in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0x3A55 << 24) ^ i);
        if let InjectionPlan::Strike(spec) = sampler.sample(&mut rng) {
            let run = engine
                .run(kernel.as_mut(), &spec, &mut rng)
                .expect("clamr run");
            if run.output != golden.output {
                sdc += 1;
                let mass = ShallowWater::total_mass(&run.output);
                if ((mass - golden_mass) / golden_mass).abs() > 1e-12 {
                    detected += 1;
                }
            }
        }
    }
    let coverage = if sdc == 0 {
        0.0
    } else {
        detected as f64 / sdc as f64
    };
    println!(
        "mass check detected {detected} of {sdc} SDCs ({:.0}% coverage; paper reports 82%)",
        coverage * 100.0
    );
    let checks = vec![ShapeCheck::new(
        "the mass check catches most but not all SDCs (paper: 82%)",
        format!("{:.0}%", coverage * 100.0),
        sdc == 0 || ((0.3..1.0).contains(&coverage)),
    )];
    println!("{}", shape_report("masscheck", &checks));
    ctx.record(&checks);
    let _ = writeln!(
        std::io::stdout(),
        "(campaign had {campaign_sdc} SDC records overall)"
    );
}

// ---------------------------------------------------------------- ablate

/// Ablations of the reproduction's own design choices (DESIGN.md §8):
/// the tolerance threshold, the locality classifier's density cut, and
/// the device-scaling substitution.
fn ablate(ctx: &mut Ctx) {
    heading("Ablations: tolerance threshold, density cut, device scaling");

    // (A) Tolerance threshold: how the apparent SDC rate of HotSpot
    // changes with the accepted imprecision (§II-B's argument).
    let hotspot = presets::hotspot(&presets::k40(), ctx.scale);
    let engine = Engine::new(hotspot.device.clone());
    let mut kernel = hotspot
        .kernel
        .build(ctx.seed)
        .unwrap_or_else(|e| die(&format!("hotspot build failed: {e}")));
    let golden = engine
        .golden(kernel.as_mut())
        .unwrap_or_else(|e| die(&format!("hotspot golden failed: {e}")));
    let sampler = FaultSampler::new(&hotspot.device, &golden.profile);
    let mut reports = Vec::new();
    for i in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0xAB1A << 32) ^ i);
        if let InjectionPlan::Strike(spec) = sampler.sample(&mut rng) {
            if let Ok(run) = engine.run(kernel.as_mut(), &spec, &mut rng) {
                let report =
                    compare_with_logical_coords(&golden.output, &run.output, kernel.as_ref());
                if report.is_sdc() {
                    reports.push(report);
                }
            }
        }
    }
    println!(
        "\n(A) tolerance sweep over {} corrupted HotSpot outputs:",
        reports.len()
    );
    let mut rows = Vec::new();
    let mut prev_surviving = usize::MAX;
    let mut monotone = true;
    for threshold in [0.0, 0.5, 1.0, 2.0, 4.0, 10.0] {
        let filter =
            radcrit_core::filter::ToleranceFilter::new(threshold).expect("non-negative threshold");
        let surviving = reports.iter().filter(|r| !filter.fully_masks(r)).count();
        monotone &= surviving <= prev_surviving;
        prev_surviving = surviving;
        rows.push(vec![
            format!("{threshold}%"),
            surviving.to_string(),
            format!(
                "{:.0}%",
                surviving as f64 / reports.len().max(1) as f64 * 100.0
            ),
        ]);
    }
    println!("{}", table(&["threshold", "critical SDCs", "share"], &rows));

    // (B) Locality density cut: how the square/random boundary moves.
    println!("(B) locality classifier density-threshold sweep (same reports):");
    let mut rows = Vec::new();
    for density in [0.01, 0.05, 0.25, 0.75] {
        let classifier =
            radcrit_core::locality::LocalityClassifier::with_density_threshold(density);
        let mut counts = std::collections::BTreeMap::new();
        for r in &reports {
            *counts.entry(classifier.classify(r)).or_insert(0usize) += 1;
        }
        rows.push(vec![
            format!("{density}"),
            counts
                .iter()
                .map(|(c, n)| format!("{c}:{n}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    println!("{}", table(&["density cut", "class distribution"], &rows));

    // (C) Device-scaling substitution: the K40 DGEMM FIT growth ratio
    // must be stable when device storage and inputs scale together.
    println!("(C) scaling substitution: K40 DGEMM FIT growth at several joint scales:");
    let mut rows = Vec::new();
    let mut growths = Vec::new();
    let scaling_matrix: [(usize, [usize; 2], usize); 3] = match ctx.scale {
        Scale::Quick => [(4, [64, 128], 40), (8, [32, 64], 60), (16, [16, 32], 80)],
        Scale::Standard => [
            (4, [256, 1024], 60),
            (8, [128, 512], 120),
            (16, [64, 256], 200),
        ],
    };
    for (divisor, sizes, injections) in scaling_matrix {
        let device = radcrit_accel::config::DeviceConfig::kepler_k40()
            .scaled(divisor)
            .expect("K40 scales");
        let mut fits = Vec::new();
        for n in sizes {
            let summary = radcrit_campaign::Campaign::new(
                device.clone(),
                KernelSpec::Dgemm { n },
                injections,
                ctx.seed,
            )
            .run()
            .unwrap_or_else(|e| die(&format!("scaling ablation failed: {e}")))
            .summary();
            fits.push(summary.fit_all_total());
        }
        let growth = if fits[0] > 0.0 {
            fits[1] / fits[0]
        } else {
            0.0
        };
        growths.push(growth);
        rows.push(vec![
            format!("1/{divisor}"),
            format!("{}..{}", sizes[0], sizes[1]),
            format!("{:.2}", fits[0] * 1e-3),
            format!("{:.2}", fits[1] * 1e-3),
            format!("{growth:.1}x"),
        ]);
    }
    println!(
        "{}",
        table(
            &["scale", "sides", "FIT small", "FIT large", "growth"],
            &rows
        )
    );

    let spread = growths.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / growths
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    let checks = vec![
        ShapeCheck::new(
            "raising the tolerance never increases the critical SDC count",
            "sweep (A)".to_owned(),
            monotone,
        ),
        ShapeCheck::new(
            // Growth is a ratio of Poisson-noisy totals and depends on the
            // absolute thread counts of each row, so only its direction
            // and rough magnitude are expected to be stable.
            "FIT grows substantially with input size at every joint device/input scale",
            format!("growths {growths:?}"),
            spread < 3.5 && growths.iter().all(|&g| g > 1.2),
        ),
    ];
    println!("{}", shape_report("ablate", &checks));
    ctx.record(&checks);
}

// -------------------------------------------------------------- injector

/// Beam vs software fault injector (§IV-D): what a SASSIFI/GPU-Qin-class
/// tool would have measured, next to the beam ground truth.
fn injector(ctx: &mut Ctx) {
    heading("Beam vs software fault injector (Section IV-D)");
    use radcrit_core::locality::SpatialClass;
    use radcrit_faults::injector::SoftwareInjector;

    let n = match ctx.scale {
        Scale::Quick => 64,
        Scale::Standard => 256,
    };
    let injections = match ctx.scale {
        Scale::Quick => 60,
        Scale::Standard => 250,
    };
    let mut checks = Vec::new();
    for device in [presets::k40(), presets::xeon_phi()] {
        let engine = Engine::new(device.clone());
        let mut kernel = Dgemm::new(n, ctx.seed).expect("valid dgemm");
        let golden = engine.golden(&mut kernel).expect("golden dgemm");
        let beam = FaultSampler::new(&device, &golden.profile);
        let tool = SoftwareInjector::new(&device, &golden.profile);
        let visible = SoftwareInjector::visible_cross_section_fraction(beam.table());

        // Identical analysis over both samplers.
        let classify = radcrit_core::locality::LocalityClassifier::default();
        let mut run_campaign = |use_tool: bool| -> (usize, usize, f64) {
            // (sdc, block_class_sdc, mean of per-run MRE capped)
            let (mut sdc, mut blocks, mut mre_sum) = (0usize, 0usize, 0.0f64);
            for i in 0..injections as u64 {
                let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0x17EC << 32) ^ i);
                let plan = if use_tool {
                    tool.sample(&mut rng)
                } else {
                    beam.sample(&mut rng)
                };
                if let InjectionPlan::Strike(spec) = plan {
                    let run = engine.run(&mut kernel, &spec, &mut rng).expect("dgemm run");
                    let report = radcrit_core::compare::compare_slices(
                        &golden.output,
                        &run.output,
                        radcrit_core::shape::OutputShape::d2(n, n),
                    )
                    .expect("matching outputs");
                    if report.is_sdc() {
                        sdc += 1;
                        mre_sum += report.mean_relative_error_capped(1e4).unwrap_or(0.0);
                        let class = classify.classify(&report);
                        if class == SpatialClass::Square || class == SpatialClass::Random {
                            blocks += 1;
                        }
                    }
                }
            }
            (sdc, blocks, mre_sum / sdc.max(1) as f64)
        };

        let (beam_sdc, beam_blocks, beam_mre) = run_campaign(false);
        let (tool_sdc, tool_blocks, tool_mre) = run_campaign(true);
        println!(
            "
{} DGEMM {n}x{n}: injector sees {:.0}% of the physical cross-section",
            device.kind(),
            visible * 100.0
        );
        println!(
            "{}",
            table(
                &["method", "SDCs", "square/random SDCs", "mean capped MRE"],
                &[
                    vec![
                        "beam".into(),
                        beam_sdc.to_string(),
                        beam_blocks.to_string(),
                        format!("{beam_mre:.1}%"),
                    ],
                    vec![
                        "injector".into(),
                        tool_sdc.to_string(),
                        tool_blocks.to_string(),
                        format!("{tool_mre:.1}%"),
                    ],
                ],
            )
        );
        checks.push(ShapeCheck::new(
            format!(
                "{}: the injector misses a large share of the physical cross-section",
                device.kind()
            ),
            format!("sees {:.0}%", visible * 100.0),
            visible < 0.8,
        ));
        checks.push(ShapeCheck::new(
            format!(
                "{}: the injector under-observes block (scheduler/control) error patterns",
                device.kind()
            ),
            format!("beam {beam_blocks} vs injector {tool_blocks}"),
            tool_blocks <= beam_blocks,
        ));
    }
    println!("{}", shape_report("injector", &checks));
    ctx.record(&checks);
}

// ------------------------------------------------------------ multistrike

/// Why the paper keeps error rates below 1e-3 per execution (§IV-D):
/// at higher flux, multiple neutrons land in one run and the per-strike
/// statistics become biased — SDCs merge, magnitudes mix, locality
/// patterns overlap.
fn multistrike(ctx: &mut Ctx) {
    heading("Single-strike design rule: statistics vs strikes-per-execution (Section IV-D)");
    use radcrit_faults::sampler::BurstPlan;

    let n = match ctx.scale {
        Scale::Quick => 48,
        Scale::Standard => 128,
    };
    let runs = match ctx.scale {
        Scale::Quick => 80,
        Scale::Standard => 400,
    };
    let device = presets::k40();
    let engine = Engine::new(device.clone());
    let mut kernel = Dgemm::new(n, ctx.seed).expect("valid dgemm");
    let golden = engine.golden(&mut kernel).expect("golden dgemm");
    let sampler = FaultSampler::new(&device, &golden.profile);
    let classifier = radcrit_core::locality::LocalityClassifier::default();

    let mut rows = Vec::new();
    let mut per_strike_rates = Vec::new();
    for mean in [0.001f64, 0.5, 1.0, 2.0, 4.0] {
        let (mut strikes_total, mut sdc_runs, mut fatal, mut quiet) =
            (0usize, 0usize, 0usize, 0usize);
        let mut incorrect_sum = 0usize;
        let mut multi_class = 0usize;
        for i in 0..runs as u64 {
            let mut rng = StdRng::seed_from_u64(ctx.seed ^ (0x3157 << 28) ^ i);
            match sampler.sample_burst(&mut rng, mean) {
                BurstPlan::Crash | BurstPlan::Hang => fatal += 1,
                BurstPlan::Strikes(strikes) if strikes.is_empty() => quiet += 1,
                BurstPlan::Strikes(strikes) => {
                    strikes_total += strikes.len();
                    let run = engine
                        .run_multi(&mut kernel, &strikes, &mut rng)
                        .expect("multi-strike run");
                    let report = radcrit_core::compare::compare_slices(
                        &golden.output,
                        &run.output,
                        radcrit_core::shape::OutputShape::d2(n, n),
                    )
                    .expect("same shape");
                    if report.is_sdc() {
                        sdc_runs += 1;
                        incorrect_sum += report.incorrect_elements();
                        let class = classifier.classify(&report);
                        if class == radcrit_core::locality::SpatialClass::Random {
                            multi_class += 1;
                        }
                    }
                }
            }
        }
        let per_strike = if strikes_total == 0 {
            0.0
        } else {
            sdc_runs as f64 / strikes_total as f64
        };
        if strikes_total > 0 {
            per_strike_rates.push((mean, per_strike));
        }
        rows.push(vec![
            format!("{mean}"),
            strikes_total.to_string(),
            quiet.to_string(),
            fatal.to_string(),
            sdc_runs.to_string(),
            format!("{per_strike:.3}"),
            format!("{:.0}", incorrect_sum as f64 / sdc_runs.max(1) as f64),
            multi_class.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "strikes/exec",
                "strikes",
                "quiet runs",
                "fatal",
                "SDC runs",
                "SDCs/strike",
                "mean elems",
                "random-class",
            ],
            &rows
        )
    );

    // At high flux the apparent per-strike SDC rate must fall (strikes
    // share runs), which would corrupt FIT estimates computed per event.
    let low = per_strike_rates
        .iter()
        .find(|(m, _)| *m <= 1.0)
        .map(|&(_, r)| r)
        .unwrap_or(0.0);
    let high = per_strike_rates.last().map(|&(_, r)| r).unwrap_or(0.0);
    let checks = vec![ShapeCheck::new(
        "beyond the 1e-3 regime, per-strike SDC statistics deflate (strikes merge)",
        format!("{low:.3} at <=1 strike/exec vs {high:.3} at 4"),
        high < low,
    )];
    println!("{}", shape_report("multistrike", &checks));
    ctx.record(&checks);
}

// ------------------------------------------------------------- hardening

/// Selective hardening (the paper's §VI future work): which resources to
/// protect first, per device, from the DGEMM campaigns.
fn hardening(ctx: &mut Ctx) {
    heading("Selective hardening: critical-SDC attribution by site (Section VI)");
    for phi in [false, true] {
        let device = if phi {
            presets::xeon_phi()
        } else {
            presets::k40()
        };
        let presets_list = presets::dgemm(&device, ctx.scale);
        let preset = presets_list.last().expect("at least one DGEMM size");
        let analysis = radcrit_campaign::HardeningAnalysis::of(ctx.run(preset));
        println!(
            "\n{} DGEMM {} — critical FIT {:.2} a.u.:",
            preset.device.kind(),
            preset.kernel.input_label(),
            analysis.critical_fit() * 1e-3
        );
        let rows: Vec<Vec<String>> = analysis
            .ranked_sites()
            .into_iter()
            .map(|(site, impact)| {
                vec![
                    site.to_owned(),
                    impact.sdc.to_string(),
                    impact.critical.to_string(),
                    impact.masked.to_string(),
                    analysis
                        .avf(site)
                        .map_or_else(|| "-".into(), |v| format!("{:.2}", v)),
                    analysis
                        .critical_avf(site)
                        .map_or_else(|| "-".into(), |v| format!("{:.2}", v)),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &["site", "SDC", "critical", "masked", "AVF", "critical AVF"],
                &rows
            )
        );
        let half = analysis.sites_for_reduction(0.5);
        println!(
            "hardening {:?} removes {:.0}% of the critical FIT",
            half,
            analysis.fit_reduction(&half) * 100.0
        );
        let checks = vec![ShapeCheck::new(
            format!(
                "{}: a small set of sites concentrates half the critical FIT",
                preset.device.kind()
            ),
            format!("{} site(s)", half.len()),
            !half.is_empty() && half.len() <= 3,
        )];
        println!("{}", shape_report("hardening", &checks));
        ctx.record(&checks);
    }
}

// --------------------------------------------------------------- numeric

fn mean_of(summaries: &[CampaignSummary], f: impl Fn(&CampaignSummary) -> f64) -> f64 {
    if summaries.is_empty() {
        return 0.0;
    }
    summaries.iter().map(f).sum::<f64>() / summaries.len() as f64
}

fn growth(summaries: &[CampaignSummary]) -> f64 {
    let first = summaries.first().map(|s| s.fit_all_total()).unwrap_or(0.0);
    let last = summaries.last().map(|s| s.fit_all_total()).unwrap_or(0.0);
    if first <= 0.0 {
        0.0
    } else {
        last / first
    }
}
