//! `serve-bench` — throughput and golden-cache benchmark of the campaign
//! daemon.
//!
//! ```text
//! serve-bench [--jobs 6] [--n 320] [--injections 2] [--pool 2]
//! ```
//!
//! Starts an in-process daemon on an ephemeral port, submits `--jobs`
//! *identical* DGEMM campaigns over HTTP and reports per-job wall time,
//! end-to-end throughput and the golden-cache hit ratio. The spec is
//! deliberately golden-dominated (large matrix, few injections): the
//! first job pays the golden execution, every later one should hit the
//! shared cache — the cold-vs-warm wall-time gap is the number this
//! benchmark exists to show.

use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

use radcrit_campaign::KernelSpec;
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

struct Args {
    jobs: usize,
    n: usize,
    injections: usize,
    pool: usize,
}

fn parse_args() -> Args {
    let mut a = Args {
        jobs: 6,
        n: 320,
        injections: 2,
        pool: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!(
                        "usage: serve-bench [--jobs 6] [--n 320] [--injections 2] [--pool 2]"
                    );
                    eprintln!("bad or missing value for {flag}");
                    exit(2)
                })
        };
        match flag.as_str() {
            "--jobs" => a.jobs = val("--jobs"),
            "--n" => a.n = val("--n"),
            "--injections" => a.injections = val("--injections"),
            "--pool" => a.pool = val("--pool"),
            _ => {
                eprintln!("usage: serve-bench [--jobs 6] [--n 320] [--injections 2] [--pool 2]");
                exit(2)
            }
        }
    }
    a
}

/// Reads one un-labelled counter from a Prometheus exposition.
fn counter(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name))
        .and_then(|rest| rest.trim().parse().ok())
        .unwrap_or(0.0)
}

fn main() {
    let args = parse_args();
    let data_dir = std::env::temp_dir().join(format!("radcrit-serve-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();

    let handle = daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: PathBuf::from(&data_dir),
        pool: args.pool,
        queue_depth: args.jobs.max(8),
        ..DaemonConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("serve-bench: cannot start daemon: {e}");
        exit(1)
    });
    let client = Client::new(handle.addr().to_string());
    println!(
        "daemon on {} | pool {} | {} identical jobs: dgemm n={} x {} injections",
        handle.addr(),
        args.pool,
        args.jobs,
        args.n,
        args.injections
    );

    let mut spec = JobSpec::new(
        DeviceKind::K40,
        KernelSpec::Dgemm { n: args.n },
        args.injections,
        2017,
    );
    spec.scale = 8;
    spec.events_sample = 0; // no detail events; this measures the service

    // Submit sequentially and wait each one out: per-job wall times stay
    // attributable, and job 1 is guaranteed to be the cold one.
    let mut walls: Vec<Duration> = Vec::with_capacity(args.jobs);
    let started = Instant::now();
    for i in 0..args.jobs {
        let t0 = Instant::now();
        let id = client.submit(&spec).unwrap_or_else(|e| {
            eprintln!("serve-bench: submit failed: {e}");
            exit(1)
        });
        let status = client
            .wait(&id, Duration::from_millis(20), Duration::from_secs(600))
            .unwrap_or_else(|e| {
                eprintln!("serve-bench: wait failed: {e}");
                exit(1)
            });
        if status.state != "done" {
            eprintln!(
                "serve-bench: job {id} ended {}: {:?}",
                status.state, status.error
            );
            exit(1)
        }
        let wall = t0.elapsed();
        println!(
            "  job {:>2} ({}): {:>8.1} ms {}",
            i + 1,
            id,
            wall.as_secs_f64() * 1e3,
            if i == 0 {
                "(cold: computes golden)"
            } else {
                ""
            }
        );
        walls.push(wall);
    }
    let elapsed = started.elapsed();

    let metrics = client.metrics().unwrap_or_else(|e| {
        eprintln!("serve-bench: metrics fetch failed: {e}");
        exit(1)
    });
    let hits = counter(&metrics, "radcrit_golden_cache_hits_total");
    let misses = counter(&metrics, "radcrit_golden_cache_misses_total");

    let cold = walls[0].as_secs_f64() * 1e3;
    let warm = if walls.len() > 1 {
        walls[1..].iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3 / (walls.len() - 1) as f64
    } else {
        cold
    };
    println!("----");
    println!(
        "total {:.2} s | {:.2} jobs/s | cold {:.1} ms | warm avg {:.1} ms | speedup {:.2}x",
        elapsed.as_secs_f64(),
        args.jobs as f64 / elapsed.as_secs_f64(),
        cold,
        warm,
        cold / warm.max(1e-9),
    );
    println!(
        "golden cache: {hits:.0} hits / {misses:.0} misses ({:.0}% hit rate)",
        100.0 * hits / (hits + misses).max(1.0),
    );

    client.shutdown().ok();
    handle.join();
    std::fs::remove_dir_all(&data_dir).ok();

    if args.jobs > 1 && hits < 1.0 {
        eprintln!("serve-bench: expected at least one cache hit for identical jobs");
        exit(1)
    }
}
