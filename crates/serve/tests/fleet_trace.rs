//! Fleet-trace integration tests: the merged Chrome trace the
//! coordinator serves at `GET /trace` for a loopback federation.
//!
//! Two properties matter. The span *set* — names, shard tags and
//! parentage — must be a pure function of the spec: two runs of the
//! same fixed-seed campaign produce identical sets even though worker
//! placement, ports and wall-clock timings all differ. And a torn
//! worker fetch (the worker is gone by the time the trace is built)
//! must degrade to a `skipped_sources` entry, never a malformed
//! document.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Duration;

use radcrit_campaign::KernelSpec;
use radcrit_obs::json;
use radcrit_serve::coord::{self, CoordinatorConfig};
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("radcrit-fltr-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn worker_config(dir: &std::path::Path) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        pool: 1,
        queue_depth: 16,
        ..DaemonConfig::default()
    }
}

/// Runs a fixed-seed two-worker federated campaign to completion and
/// returns the coordinator's merged fleet trace. With `torn`, one
/// worker is shut down before the trace is fetched, so its span
/// sources can no longer be reached.
fn federated_trace(tag: &str, torn: bool) -> String {
    let base = temp_dir(tag);
    let mut spec = JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n: 32 }, 60, 11);
    spec.scale = 8;
    spec.workers = 1;

    let w0 = daemon::start(worker_config(&base.join("w0"))).unwrap();
    let w1 = daemon::start(worker_config(&base.join("w1"))).unwrap();
    let coordinator = coord::start(CoordinatorConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: base.join("coord"),
        spec,
        shards: 2,
        workers: vec![w0.addr().to_string(), w1.addr().to_string()],
        heartbeat_interval: Duration::from_millis(200),
        heartbeat_timeout: Duration::from_secs(5),
        summary_out: None,
        trace_out: None,
    })
    .unwrap();
    let client = Client::new(coordinator.addr().to_string());
    coordinator.wait_done(Duration::from_secs(180)).unwrap();

    let mut workers = vec![Some(w0), Some(w1)];
    if torn {
        // Shut down the worker that served shard 0, so at least that
        // shard's span source is unreachable at fetch time. (Rendezvous
        // placement may have put shard 1 on the same worker.)
        let owner = shard_owner(&client, 0);
        let idx = workers
            .iter()
            .position(|w| w.as_ref().unwrap().addr().to_string() == owner)
            .unwrap_or_else(|| panic!("shard 0 owner {owner} is not a known worker"));
        let gone = workers[idx].take().unwrap();
        Client::new(gone.addr().to_string()).shutdown().unwrap();
        gone.join();
    }
    let trace = client.fleet_trace().unwrap();

    coordinator.shutdown().unwrap();
    for handle in workers.into_iter().flatten() {
        Client::new(handle.addr().to_string()).shutdown().unwrap();
        handle.join();
    }
    std::fs::remove_dir_all(&base).ok();
    trace
}

/// The worker address the coordinator's shard table shows for `shard`.
fn shard_owner(client: &Client, shard: usize) -> String {
    let body = client.shards().unwrap();
    let parsed = json::parse_line(body.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap().to_vec();
    match json::get(&top, "shards").unwrap() {
        json::Json::Arr(rows) => {
            let row = json::as_obj(&rows[shard]).unwrap();
            json::get_str(row, "worker").unwrap().to_owned()
        }
        other => panic!("shards is not an array: {other:?}"),
    }
}

fn doc_obj(doc: &str) -> Vec<(String, json::Json)> {
    let parsed = json::parse_line(&doc.replace('\n', "")).unwrap();
    json::as_obj(&parsed).unwrap().to_vec()
}

/// All `"ph":"X"` events of the trace, each as its parsed object.
fn complete_events(doc: &str) -> Vec<Vec<(String, json::Json)>> {
    let top = doc_obj(doc);
    let rows = match json::get(&top, "traceEvents").unwrap() {
        json::Json::Arr(rows) => rows,
        other => panic!("traceEvents is not an array: {other:?}"),
    };
    rows.iter()
        .map(|r| json::as_obj(r).unwrap().to_vec())
        .filter(|e| json::get_str(e, "ph").unwrap() == "X")
        .collect()
}

fn num(obj: &[(String, json::Json)], key: &str) -> u64 {
    match json::get(obj, key).unwrap() {
        json::Json::Num(n) => n.parse().unwrap(),
        other => panic!("{key} is not a number: {other:?}"),
    }
}

fn opt_arg(event: &[(String, json::Json)], key: &str) -> Option<u64> {
    let args = json::get(event, "args").unwrap();
    match json::get(json::as_obj(args).unwrap(), key) {
        Ok(json::Json::Num(n)) => Some(n.parse().unwrap()),
        _ => None,
    }
}

/// One span's placement-independent identity:
/// (name, shard tag, parent span, minted span id).
type SpanSig = (String, Option<u64>, Option<u64>, Option<u64>);

/// The placement-independent identity of a trace: the sorted multiset
/// of [`SpanSig`]s over all spans. Ports, pids, timings and
/// worker→shard placement are all excluded.
fn signature(doc: &str) -> Vec<SpanSig> {
    let mut sig: Vec<_> = complete_events(doc)
        .iter()
        .map(|e| {
            (
                json::get_str(e, "name").unwrap().to_owned(),
                opt_arg(e, "shard"),
                opt_arg(e, "parent"),
                opt_arg(e, "span_id"),
            )
        })
        .collect();
    sig.sort();
    sig
}

#[test]
fn merged_trace_is_deterministic_and_monotone_per_track() {
    let first = federated_trace("det-a", false);
    let second = federated_trace("det-b", false);
    assert_eq!(
        signature(&first),
        signature(&second),
        "span set must be identical across fixed-seed runs"
    );

    let events = complete_events(&first);
    assert!(!events.is_empty());

    // Rebased timestamps are monotone within every track and never
    // pulled below the campaign epoch by a clock-offset estimate.
    let mut last: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &events {
        let (pid, ts) = (num(e, "pid"), num(e, "ts"));
        assert!(
            ts >= last.get(&pid).copied().unwrap_or(0),
            "track {pid} went backwards at ts {ts}"
        );
        last.insert(pid, ts);
    }

    // Both worker tracks made it into the merge, each tagged with the
    // shard it executed, and every worker span's parent is a span id
    // the coordinator actually minted on dispatch.
    let worker_shards: BTreeSet<u64> = events
        .iter()
        .filter(|e| num(e, "pid") >= 2)
        .filter_map(|e| opt_arg(e, "shard"))
        .collect();
    assert_eq!(worker_shards, BTreeSet::from([0, 1]), "{first}");
    let minted: BTreeSet<u64> = events
        .iter()
        .filter(|e| json::get_str(e, "name").unwrap() == "dispatch")
        .filter_map(|e| opt_arg(e, "span_id"))
        .collect();
    for e in events.iter().filter(|e| num(e, "pid") >= 2) {
        let parent = opt_arg(e, "parent").expect("worker span without parent");
        assert!(minted.contains(&parent), "orphan parent {parent}");
    }

    // A clean run skips nothing.
    let top = doc_obj(&first);
    let meta = json::get(&top, "metadata").unwrap();
    match json::get(json::as_obj(meta).unwrap(), "skipped_sources").unwrap() {
        json::Json::Arr(rows) => assert!(rows.is_empty(), "{first}"),
        other => panic!("skipped_sources is not an array: {other:?}"),
    }
}

#[test]
fn a_torn_worker_fetch_degrades_to_a_skipped_source() {
    let doc = federated_trace("torn", true);

    // Still a well-formed Chrome trace with the coordinator track...
    let events = complete_events(&doc);
    assert!(events.iter().any(|e| num(e, "pid") == 1));

    // ...the unreachable worker called out, not silently lost...
    let top = doc_obj(&doc);
    let meta = json::get(&top, "metadata").unwrap();
    let skipped = match json::get(json::as_obj(meta).unwrap(), "skipped_sources").unwrap() {
        json::Json::Arr(rows) => rows.len(),
        other => panic!("skipped_sources is not an array: {other:?}"),
    };
    assert!(skipped >= 1, "{doc}");

    // ...and every shard the dead worker did NOT own still merged its
    // shard-tagged spans. (Rendezvous placement may have put both
    // shards on the victim — then both sources are skipped instead.)
    let has_tagged_worker = events
        .iter()
        .any(|e| num(e, "pid") >= 2 && opt_arg(e, "shard").is_some());
    assert!(
        has_tagged_worker || skipped == 2,
        "surviving worker's spans missing with only {skipped} source(s) skipped: {doc}"
    );
}
