//! Live-analytics integration tests against a real daemon: SSE id
//! sequencing and `Last-Event-ID` resume, the aggregator-equals-summary
//! invariant over the wire (including across an abrupt kill → restart),
//! the Chrome trace endpoint, the daemon rollup, the worker gauges, and
//! the disconnected-SSE-client regression.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use radcrit_campaign::{CampaignSummary, KernelSpec};
use radcrit_obs::{json, CriticalityAggregator};
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("radcrit-live-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn config(dir: &std::path::Path, pool: usize) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        pool,
        queue_depth: 16,
        ..DaemonConfig::default()
    }
}

fn dgemm_spec(n: usize, injections: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n }, injections, seed);
    spec.scale = 8;
    spec.workers = 2;
    spec
}

fn fold_text(text: &str) -> CriticalityAggregator {
    let mut agg = CriticalityAggregator::new();
    for line in text.lines() {
        agg.fold_line(line).unwrap();
    }
    agg
}

const POLL: Duration = Duration::from_millis(100);
const WAIT: Duration = Duration::from_secs(120);

#[test]
fn stream_delivers_strictly_increasing_ids_and_resumes_from_last_event_id() {
    let dir = temp_dir("sse");
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&dgemm_spec(32, 200, 7)).unwrap();

    // Tail while the job runs: the stream must block across the live
    // tail and still return the complete, gap-free sequence.
    let frames = client.stream(&id, None).unwrap();
    assert_eq!(client.wait(&id, POLL, WAIT).unwrap().state, "done");
    assert!(!frames.is_empty());
    for (ordinal, (frame_id, _)) in frames.iter().enumerate() {
        assert_eq!(
            *frame_id, ordinal as u64,
            "SSE ids must be the contiguous 0-based line ordinals"
        );
    }

    // Every frame is one line of the event file, in order.
    let events = client.events(&id).unwrap();
    let lines: Vec<&str> = events.lines().collect();
    assert_eq!(frames.len(), lines.len());
    for ((_, data), line) in frames.iter().zip(&lines) {
        assert_eq!(data, line);
    }

    // Reconnecting with Last-Event-ID replays only the suffix.
    let mid = frames[frames.len() / 2].0;
    let resumed = client.stream(&id, Some(mid)).unwrap();
    assert_eq!(resumed.first().map(|f| f.0), Some(mid + 1));
    assert_eq!(resumed.len() as u64, frames.len() as u64 - mid - 1);
    assert_eq!(resumed.last(), frames.last());

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analytics_rollup_trace_and_gauges_cover_a_finished_job() {
    let dir = temp_dir("analytics");
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&dgemm_spec(32, 40, 7)).unwrap();
    assert_eq!(client.wait(&id, POLL, WAIT).unwrap().state, "done");

    // The analytics endpoint is exactly the local fold of the served
    // event stream, and that fold reproduces the canonical summary.
    let agg = fold_text(&client.events(&id).unwrap());
    assert_eq!(client.analytics(&id).unwrap(), agg.to_json());
    assert_eq!(
        format!("{}\n", CampaignSummary::from_analytics(&agg).to_json()),
        client.result(&id).unwrap(),
        "aggregator-equals-summary must hold over the wire"
    );

    // The daemon-wide rollup folded this one job.
    let rollup = client.rollup().unwrap();
    assert!(rollup.starts_with("{\"jobs\":1,\"folded\":1,"), "{rollup}");
    assert!(rollup.contains("\"radcrit_analytics\":1"), "{rollup}");

    // The trace endpoint serves Chrome trace JSON with the full phase
    // vocabulary.
    let trace = client.trace(&id).unwrap();
    let parsed = json::parse_line(trace.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap();
    let events = match json::get(top, "traceEvents").unwrap() {
        json::Json::Arr(a) => a,
        other => panic!("traceEvents is not an array: {other:?}"),
    };
    let names: std::collections::BTreeSet<&str> = events
        .iter()
        .map(|e| json::get_str(json::as_obj(e).unwrap(), "name").unwrap())
        .collect();
    assert!(
        names.len() >= 4,
        "expected >=4 distinct phase names, got {names:?}"
    );
    for required in ["golden", "injection", "execute", "compare"] {
        assert!(names.contains(required), "missing {required}: {names:?}");
    }

    // The profile endpoints serve the job's phase tree and the
    // daemon-wide merge with its hot-phases ranking.
    let profile = client.profile(&id).unwrap();
    assert!(profile.contains("\"radcrit_profile\":1"), "{profile}");
    assert!(profile.contains("\"phase\":\"golden\""), "{profile}");
    assert!(profile.contains("\"phase\":\"tile-execute\""), "{profile}");
    let merged = client.profile_rollup().unwrap();
    assert!(merged.starts_with("{\"jobs\":1,\"folded\":1,"), "{merged}");
    assert!(merged.contains("\"hot\":[{\"phase\":"), "{merged}");

    // Queue/worker gauges appear in the Prometheus exposition.
    let metrics = client.metrics().unwrap();
    for gauge in [
        "radcrit_queue_depth",
        "radcrit_workers_busy",
        "radcrit_workers_idle",
    ] {
        assert!(metrics.contains(gauge), "missing {gauge} in:\n{metrics}");
    }

    // The job listing names the finished job.
    assert_eq!(
        client.jobs().unwrap(),
        vec![(id.clone(), "done".to_owned())]
    );

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_event_tails_are_skipped_by_analytics_like_the_sse_tailer() {
    let dir = temp_dir("torn");
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&dgemm_spec(32, 20, 7)).unwrap();
    assert_eq!(client.wait(&id, POLL, WAIT).unwrap().state, "done");
    let analytics_before = client.analytics(&id).unwrap();
    let rollup_before = client.rollup().unwrap();

    // Simulate a writer caught mid-append: first a complete JSON event
    // line that has not received its newline yet (the treacherous case —
    // it *parses*, but the SSE tailer would not serve it), then raw
    // garbage on the same unterminated line.
    let events_path = dir.join("jobs").join(&id).join("events.jsonl");
    let torn_but_parseable = "{\"e\":\"provenance\",\"i\":999,\"site\":\"fpu\",\
         \"delivered\":true,\"touched\":[],\"outcome\":\"masked\",\"mismatches\":0,\
         \"class\":\"none\",\"critical\":false}";
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&events_path)
        .unwrap();
    f.write_all(torn_but_parseable.as_bytes()).unwrap();
    f.flush().unwrap();
    assert_eq!(
        client.analytics(&id).unwrap(),
        analytics_before,
        "a torn-but-parseable tail must not leak a phantom injection"
    );
    assert_eq!(
        client.rollup().unwrap(),
        rollup_before,
        "the daemon rollup must frame torn tails like the SSE tailer"
    );

    f.write_all(b"{\"e\":\"prov").unwrap();
    f.flush().unwrap();
    drop(f);
    assert_eq!(
        client.analytics(&id).unwrap(),
        analytics_before,
        "an unparseable torn tail must be skipped, not an error"
    );
    assert_eq!(client.rollup().unwrap(), rollup_before);

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analytics_invariant_survives_abrupt_restart() {
    let dir = temp_dir("resume");
    // First daemon: submit, wait for checkpoint progress, then die hard.
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&dgemm_spec(32, 2000, 77)).unwrap();
    let checkpoint = dir.join("jobs").join(&id).join("checkpoint.jsonl");
    let deadline = Instant::now() + WAIT;
    loop {
        let records = std::fs::read_to_string(&checkpoint)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if records >= 5 {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint progress");
        std::thread::sleep(POLL);
    }
    handle.shutdown_abrupt();

    // Second daemon on the same data dir resumes and finishes the job;
    // the stitched-together event stream (pre-crash provenance + replay
    // markers + post-crash tail) must still fold to the exact summary.
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    assert_eq!(client.wait(&id, POLL, WAIT).unwrap().state, "done");
    let agg = fold_text(&client.events(&id).unwrap());
    assert_eq!(client.analytics(&id).unwrap(), agg.to_json());
    assert_eq!(
        format!("{}\n", CampaignSummary::from_analytics(&agg).to_json()),
        client.result(&id).unwrap(),
        "kill → resume stream must fold to the resumed run's summary"
    );

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disconnected_sse_client_does_not_disturb_the_daemon_or_the_job() {
    let dir = temp_dir("disconnect");
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&dgemm_spec(32, 1000, 21)).unwrap();

    // Open a raw SSE connection, read a little, then vanish mid-stream.
    {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(
            raw,
            "GET /jobs/{id}/stream HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut buf = [0u8; 512];
        let n = raw.read(&mut buf).unwrap();
        assert!(n > 0, "expected at least the response head");
        assert!(
            String::from_utf8_lossy(&buf[..n]).contains("200"),
            "stream must start with a 200"
        );
        // Dropping here closes the socket while the server tails.
    }

    // The daemon stays healthy, the job completes, and a fresh stream
    // still serves the full sequence.
    assert!(client.healthz().unwrap().contains("\"ok\":true"));
    assert_eq!(client.wait(&id, POLL, WAIT).unwrap().state, "done");
    let frames = client.stream(&id, None).unwrap();
    assert!(!frames.is_empty());
    assert_eq!(frames.first().map(|f| f.0), Some(0));

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
