//! End-to-end service tests: parallel submissions against a live daemon,
//! bit-for-bit parity with the direct CLI path, cancellation freeing the
//! worker pool, and crash (abrupt stop) → restart resumption without
//! duplicate injection indices.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use radcrit_campaign::{KernelSpec, RunOptions};
use radcrit_obs::event::parse_event_line;
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("radcrit-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn config(dir: &std::path::Path, pool: usize) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        pool,
        queue_depth: 16,
        ..DaemonConfig::default()
    }
}

/// A small DGEMM campaign on the scaled K40 (the sweep-test idiom).
fn dgemm_spec(n: usize, injections: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n }, injections, seed);
    spec.scale = 8;
    spec.workers = 2;
    spec
}

/// What the direct (non-daemon) path produces for this spec.
fn direct_summary_json(spec: &JobSpec) -> String {
    let summary = spec
        .campaign()
        .unwrap()
        .run_with(&RunOptions::default())
        .unwrap()
        .summary();
    format!("{}\n", summary.to_json())
}

const POLL: Duration = Duration::from_millis(100);
const WAIT: Duration = Duration::from_secs(120);

#[test]
fn parallel_jobs_match_direct_runs_bit_for_bit() {
    let dir = temp_dir("parallel");
    let handle = daemon::start(config(&dir, 3)).unwrap();
    let client = Client::new(handle.addr().to_string());

    // Four concurrent jobs with distinct science; results must not
    // interleave — each must equal its own direct run exactly.
    let specs: Vec<JobSpec> = (0..4)
        .map(|i| dgemm_spec(32, 20 + i, 40 + i as u64))
        .collect();
    let ids: Vec<String> = specs.iter().map(|s| client.submit(s).unwrap()).collect();
    assert_eq!(ids.len(), 4);
    for (id, spec) in ids.iter().zip(&specs) {
        let status = client.wait(id, POLL, WAIT).unwrap();
        assert_eq!(status.state, "done", "{id}: {:?}", status.error);
        assert_eq!(
            client.result(id).unwrap(),
            direct_summary_json(spec),
            "served result of {id} must be bit-identical to the direct path"
        );
    }

    // Resubmitting an identical spec hits the shared golden cache and
    // still produces the identical summary.
    let again = client.submit(&specs[0]).unwrap();
    assert_eq!(client.wait(&again, POLL, WAIT).unwrap().state, "done");
    assert_eq!(
        client.result(&again).unwrap(),
        direct_summary_json(&specs[0])
    );

    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("radcrit_golden_cache_hits_total"),
        "cache hit counter missing from:\n{metrics}"
    );
    assert!(metrics.contains("radcrit_serve_jobs_submitted_total"));
    // Differential execution is on by default: the cached golden entry
    // carries snapshots, so jobs resume injections from golden-prefix
    // state instead of re-executing from tile 0.
    assert!(
        metrics.contains("radcrit_engine_resumed_runs_total"),
        "resumed-run counter missing from:\n{metrics}"
    );
    assert!(
        metrics.contains("radcrit_snapshot_bytes"),
        "snapshot byte gauge missing from:\n{metrics}"
    );
    // Prometheus exposition: every non-comment line is `name{...} value`.
    for line in metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("name value pair");
        value.parse::<f64>().expect("numeric sample value");
    }

    // Graceful drain: the daemon finishes everything and exits.
    client.shutdown().unwrap();
    handle.join();
    assert!(client.healthz().is_err(), "daemon must be gone after drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelling_a_running_job_frees_the_worker() {
    let dir = temp_dir("cancel");
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());

    // A job long enough to still be running when the cancel arrives.
    let long = client.submit(&dgemm_spec(64, 200_000, 9)).unwrap();
    let deadline = Instant::now() + WAIT;
    while client.status(&long).unwrap().state != "running" {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(POLL);
    }
    assert_eq!(client.cancel(&long).unwrap(), "cancelling");
    let status = client.wait(&long, POLL, WAIT).unwrap();
    assert_eq!(status.state, "cancelled");

    // The single worker must now be free for new work.
    let small = client.submit(&dgemm_spec(32, 10, 10)).unwrap();
    assert_eq!(client.wait(&small, POLL, WAIT).unwrap().state, "done");

    // Cancelling a finished job is a no-op reported as its final state.
    assert_eq!(client.cancel(&small).unwrap(), "done");

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abrupt_stop_then_restart_resumes_without_duplicate_indices() {
    let dir = temp_dir("restart");
    let total = 2000usize;
    let spec = dgemm_spec(32, total, 77);

    // First daemon: submit, wait for checkpoint progress, then die hard.
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let id = client.submit(&spec).unwrap();
    let job_dir = dir.join("jobs").join(&id);
    let checkpoint = job_dir.join("checkpoint.jsonl");
    let deadline = Instant::now() + WAIT;
    loop {
        let records = std::fs::read_to_string(&checkpoint)
            .map(|t| t.lines().count().saturating_sub(1))
            .unwrap_or(0);
        if records >= 5 {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown_abrupt();
    assert!(
        !job_dir.join("result.json").exists(),
        "a crashed daemon must not have persisted a result"
    );
    let checkpointed = std::fs::read_to_string(&checkpoint)
        .unwrap()
        .lines()
        .count()
        .saturating_sub(1);
    assert!(
        checkpointed >= 5 && checkpointed < total,
        "the crash must interrupt a genuinely partial run, got {checkpointed}/{total}"
    );

    // Second daemon on the same data directory: the journaled job is
    // re-enqueued and completes from the checkpoint.
    let handle = daemon::start(config(&dir, 1)).unwrap();
    let client = Client::new(handle.addr().to_string());
    let status = client.wait(&id, POLL, WAIT).unwrap();
    assert_eq!(status.state, "done", "{:?}", status.error);
    assert_eq!(
        client.result(&id).unwrap(),
        direct_summary_json(&spec),
        "resumed result must be bit-identical to an uninterrupted run"
    );

    // The resumed run must have replayed the checkpointed records, not
    // recomputed them: the runner counts them into this daemon metric.
    let metrics = client.metrics().unwrap();
    let replayed = metrics
        .lines()
        .find_map(|l| l.strip_prefix("radcrit_campaign_replayed_total"))
        .and_then(|rest| rest.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("replayed counter missing from:\n{metrics}"));
    assert!(
        replayed as usize >= checkpointed,
        "expected >= {checkpointed} replayed records, metric says {replayed}"
    );

    // The PR 2 invariant, now across a process "crash": every injection
    // index owns exactly one terminal event (provenance or replay).
    let events = std::fs::read_to_string(job_dir.join("events.jsonl")).unwrap();
    let mut terminal: HashMap<u64, Vec<String>> = HashMap::new();
    for line in events.lines() {
        let event = parse_event_line(line).unwrap();
        if event.kind == "provenance" || event.kind == "replay" {
            terminal
                .entry(event.index.expect("terminal event without index"))
                .or_default()
                .push(event.kind.clone());
        }
    }
    for index in 0..total as u64 {
        let kinds = terminal
            .get(&index)
            .unwrap_or_else(|| panic!("index {index} missing from the event stream"));
        assert_eq!(
            kinds.len(),
            1,
            "index {index} must appear exactly once, got {kinds:?}"
        );
    }
    assert_eq!(terminal.len(), total, "no stray indices");

    // The served event stream equals the on-disk one.
    assert_eq!(client.events(&id).unwrap(), events);

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_resumes_more_inflight_jobs_than_the_queue_depth() {
    // At crash time up to queue_depth + pool jobs are non-terminal, and
    // a restart may even use a smaller --queue-depth; replay must
    // re-enqueue all of them rather than panic on a full queue.
    let dir = temp_dir("replay-depth");
    std::fs::create_dir_all(dir.join("jobs")).unwrap();
    let journal_path = dir.join("journal.jsonl");
    let specs: Vec<JobSpec> = (0..4)
        .map(|i| dgemm_spec(32, 5 + i, 60 + i as u64))
        .collect();
    {
        let (mut journal, _) = radcrit_serve::Journal::open(&journal_path).unwrap();
        for (i, spec) in specs.iter().enumerate() {
            journal
                .append(
                    &radcrit_serve::journal::job_id(i as u64 + 1),
                    &radcrit_serve::JobState::Submitted,
                    Some((spec, spec.priority)),
                )
                .unwrap();
        }
    }

    let handle = daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        pool: 2,
        queue_depth: 1, // smaller than the 4 journaled in-flight jobs
        ..DaemonConfig::default()
    })
    .unwrap();
    let client = Client::new(handle.addr().to_string());
    for i in 0..specs.len() as u64 {
        let id = radcrit_serve::journal::job_id(i + 1);
        let status = client.wait(&id, POLL, WAIT).unwrap();
        assert_eq!(status.state, "done", "{id}: {:?}", status.error);
    }
    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backpressure_and_draining_refuse_new_jobs() {
    let dir = temp_dir("backpressure");
    let handle = daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.clone(),
        pool: 1,
        queue_depth: 1,
        ..DaemonConfig::default()
    })
    .unwrap();
    let client = Client::new(handle.addr().to_string());

    // Occupy the worker, fill the queue, then overflow it.
    let running = client.submit(&dgemm_spec(64, 200_000, 1)).unwrap();
    let deadline = Instant::now() + WAIT;
    while client.status(&running).unwrap().state != "running" {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(POLL);
    }
    let queued = client.submit(&dgemm_spec(32, 10, 2)).unwrap();
    let overflow = client.submit(&dgemm_spec(32, 10, 3));
    match overflow {
        Err(radcrit_serve::ServeError::Http { status, .. }) => assert_eq!(status, 429),
        other => panic!("expected 429 backpressure, got {other:?}"),
    }

    // A draining daemon refuses new work with 503 but finishes the rest.
    client.shutdown().unwrap();
    match client.submit(&dgemm_spec(32, 10, 4)) {
        Err(radcrit_serve::ServeError::Http { status, .. }) => assert_eq!(status, 503),
        other => panic!("expected 503 while draining, got {other:?}"),
    }
    // Best-effort cancel of the long job to keep the drain quick; the
    // daemon may already have finished everything and exited, in which
    // case the connection error is fine.
    let _ = client.cancel(&running);
    handle.join();
    // The queued job completed during the drain.
    assert!(
        dir.join("jobs").join(&queued).join("result.json").exists(),
        "queued job must finish during a graceful drain"
    );
    std::fs::remove_dir_all(&dir).ok();
}
