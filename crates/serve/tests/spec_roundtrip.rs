//! Property test: the job-spec wire format round-trips exactly over all
//! kernels, device presets, priorities and optional fields.

use proptest::prelude::*;

use radcrit_campaign::KernelSpec;
use radcrit_kernels::pathological::Failure;
use radcrit_obs::TraceContext;
use radcrit_serve::{DeviceKind, JobSpec, Priority};

fn kernels() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (1usize..512).prop_map(|n| KernelSpec::Dgemm { n }),
        ((1usize..8), (1usize..32))
            .prop_map(|(grid, particles)| KernelSpec::LavaMd { grid, particles }),
        ((1usize..256), (1usize..256), (1usize..128)).prop_map(|(rows, cols, iterations)| {
            KernelSpec::HotSpot {
                rows,
                cols,
                iterations,
            }
        }),
        ((1usize..256), (1usize..256), (1usize..128))
            .prop_map(|(rows, cols, steps)| KernelSpec::Shallow { rows, cols, steps }),
        ((1usize..64), (0usize..64), (0usize..2)).prop_map(|(n, after, mode)| {
            KernelSpec::Pathological {
                n,
                after,
                mode: if mode == 0 {
                    Failure::Hang
                } else {
                    Failure::Panic
                },
            }
        }),
    ]
}

fn devices() -> impl Strategy<Value = DeviceKind> {
    prop_oneof![Just(DeviceKind::K40), Just(DeviceKind::XeonPhi)]
}

fn priorities() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::High),
        Just(Priority::Normal),
        Just(Priority::Low),
    ]
}

fn tolerances() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        Just(None),
        (0.0f64..50.0).prop_map(Some),
        Just(Some(0.0)),
        Just(Some(2.0)),
    ]
}

fn deadlines() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (1u64..3_600_000).prop_map(Some)]
}

fn traces() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        Just(None),
        (
            prop::collection::vec(
                prop_oneof![
                    Just('a'),
                    Just('7'),
                    Just(':'),
                    Just('/'),
                    Just('\\'),
                    Just('"'),
                    Just(' '),
                    Just('\n'),
                ],
                0..24
            ),
            0u64..64,
            0u64..u64::MAX
        )
            .prop_map(|(chars, shard, parent_span)| Some(TraceContext {
                campaign_id: chars.into_iter().collect(),
                shard,
                parent_span,
            })),
    ]
}

/// Derives a shard range valid for `injections` from raw entropy: none,
/// or a non-empty in-range `[start, end)` slice.
fn shard_for(injections: usize, pick: usize, a: u64, b: u64) -> Option<(usize, usize)> {
    if pick == 0 {
        return None;
    }
    let x = (a as usize) % injections;
    let y = (b as usize) % injections;
    Some((x.min(y), x.max(y) + 1))
}

proptest! {
    /// `parse(to_json(spec)) == spec` for every representable spec.
    #[test]
    fn job_spec_wire_format_round_trips(
        device in devices(),
        kernel in kernels(),
        scale in 1usize..9,
        injections in 1usize..100_000,
        seed in 0u64..u64::MAX,
        knobs in (tolerances(), 0usize..17, deadlines(), priorities(), 0u64..64),
        shard_entropy in (0usize..3, 0u64..u64::MAX, 0u64..u64::MAX),
        force_scalar in prop_oneof![Just(false), Just(true)],
        trace in traces(),
    ) {
        let (tolerance_pct, workers, deadline_ms, priority, events_sample) = knobs;
        let shard = shard_for(injections, shard_entropy.0, shard_entropy.1, shard_entropy.2);
        let spec = JobSpec {
            device,
            scale,
            kernel,
            injections,
            seed,
            tolerance_pct,
            workers,
            deadline_ms,
            priority,
            events_sample,
            shard,
            force_scalar,
            trace,
        };
        let wire = spec.to_json();
        let parsed = JobSpec::parse(&wire).unwrap();
        prop_assert_eq!(&parsed, &spec, "wire form: {}", wire);
        // The canonical form is a fixed point of parse ∘ render.
        prop_assert_eq!(parsed.to_json(), wire);
    }
}

/// Malformed and version-skewed specs are rejected with config errors.
#[test]
fn bad_specs_are_rejected() {
    let good = JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n: 32 }, 10, 7).to_json();
    for bad in [
        "not json".to_owned(),
        "{}".to_owned(),
        good.replace("\"radcrit_job\":1", "\"radcrit_job\":99"),
        good.replace("\"k40\"", "\"gtx480\""),
        good.replace("\"injections\":10", "\"injections\":0"),
        good.replace("\"dgemm\"", "\"fft\""),
        good.replace("\"shard\":null", "\"shard\":[4,4]"),
        good.replace("\"shard\":null", "\"shard\":[0,11]"),
        good.replace("\"shard\":null", "\"shard\":[3]"),
        good.replace("\"shard\":null", "\"shard\":\"0-5\""),
        good.replace("\"force_scalar\":false", "\"force_scalar\":\"yes\""),
        good.replace("\"trace\":null", "\"trace\":[1]"),
        good.replace("\"trace\":null", "\"trace\":{\"campaign_id\":\"x\"}"),
        good.replace(
            "\"trace\":null",
            "\"trace\":{\"campaign_id\":\"x\",\"shard\":0,\"parent_span\":-1}",
        ),
    ] {
        assert!(
            matches!(
                JobSpec::parse(&bad),
                Err(radcrit_serve::ServeError::Config(_))
            ),
            "should reject: {bad}"
        );
    }
}
