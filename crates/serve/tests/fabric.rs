//! Federated-campaign integration tests: a coordinator sharding one
//! campaign over several real worker daemons on loopback.
//!
//! The two invariants under test are the fabric's headline guarantees:
//! the merged summary is bit-identical to a single-node run of the same
//! spec, and killing a worker mid-campaign re-dispatches its remaining
//! range to a survivor without disturbing that identity.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use radcrit_campaign::{CampaignSummary, KernelSpec, RunOptions};
use radcrit_obs::{json, CriticalityAggregator};
use radcrit_serve::coord::{self, CoordinatorConfig};
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("radcrit-fabric-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn worker_config(dir: &std::path::Path) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: dir.to_path_buf(),
        pool: 1,
        queue_depth: 16,
        ..DaemonConfig::default()
    }
}

fn dgemm_spec(n: usize, injections: usize, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n }, injections, seed);
    spec.scale = 8;
    spec.workers = 2;
    spec
}

/// The canonical summary a one-shot in-process run of `spec` produces —
/// the identity every federated run must reproduce byte for byte.
fn single_node_summary(spec: &JobSpec) -> String {
    let campaign = spec.campaign().unwrap();
    let result = campaign.run_with(&RunOptions::default()).unwrap();
    format!("{}\n", result.summary().to_json())
}

fn shard_rows(client: &Client) -> Vec<Vec<(String, json::Json)>> {
    let body = client.shards().unwrap();
    let parsed = json::parse_line(body.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap().to_vec();
    match json::get(&top, "shards").unwrap() {
        json::Json::Arr(rows) => rows
            .iter()
            .map(|r| json::as_obj(r).unwrap().to_vec())
            .collect(),
        other => panic!("shards is not an array: {other:?}"),
    }
}

fn alert_rows(client: &Client) -> Vec<Vec<(String, json::Json)>> {
    let body = client.alerts().unwrap();
    let parsed = json::parse_line(body.trim()).unwrap();
    let top = json::as_obj(&parsed).unwrap().to_vec();
    match json::get(&top, "alerts").unwrap() {
        json::Json::Arr(rows) => rows
            .iter()
            .map(|r| json::as_obj(r).unwrap().to_vec())
            .collect(),
        other => panic!("alerts is not an array: {other:?}"),
    }
}

fn num(obj: &[(String, json::Json)], key: &str) -> u64 {
    match json::get(obj, key).unwrap() {
        json::Json::Num(n) => n.parse().unwrap(),
        other => panic!("{key} is not a number: {other:?}"),
    }
}

const WAIT: Duration = Duration::from_secs(180);

#[test]
fn a_federated_campaign_matches_the_single_node_summary() {
    let base = temp_dir("merge");
    let spec = dgemm_spec(32, 120, 7);
    let reference = single_node_summary(&spec);

    // Two workers join the (initially empty) fleet over the wire.
    let w0 = daemon::start(worker_config(&base.join("w0"))).unwrap();
    let w1 = daemon::start(worker_config(&base.join("w1"))).unwrap();
    let coordinator = coord::start(CoordinatorConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: base.join("coord"),
        spec,
        shards: 2,
        workers: Vec::new(),
        heartbeat_interval: Duration::from_millis(200),
        heartbeat_timeout: Duration::from_secs(5),
        summary_out: Some(base.join("merged-summary.json")),
        trace_out: None,
    })
    .unwrap();
    let client = Client::new(coordinator.addr().to_string());
    client.register_worker(&w0.addr().to_string()).unwrap();
    let ack = client.register_worker(&w1.addr().to_string()).unwrap();
    assert!(ack.contains("\"workers_alive\":2"), "{ack}");

    coordinator.wait_done(WAIT).unwrap();

    // The merged result, the summary file, and a fold of the federated
    // SSE stream all agree with the single-node run byte for byte.
    assert_eq!(client.result("merged").unwrap(), reference);
    assert_eq!(
        std::fs::read_to_string(base.join("merged-summary.json")).unwrap(),
        reference
    );
    let frames = client.stream("merged", None).unwrap();
    let mut agg = CriticalityAggregator::new();
    for (_, data) in &frames {
        agg.fold_line(data).unwrap();
    }
    assert_eq!(
        format!("{}\n", CampaignSummary::from_analytics(&agg).to_json()),
        reference,
        "the federated SSE stream must fold to the same summary"
    );

    // The merged rollup speaks the daemon's analytics body shape, and
    // the shard table shows two clean completions.
    let analytics = client.rollup().unwrap();
    assert!(
        analytics.starts_with("{\"jobs\":2,\"folded\":2,\"rollup\":"),
        "{analytics}"
    );
    let rows = shard_rows(&client);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(json::get_str(row, "state").unwrap(), "completed");
        assert_eq!(num(row, "covered"), num(row, "end") - num(row, "start"));
        assert_eq!(num(row, "redispatches"), 0);
    }
    assert!(client.healthz().unwrap().contains("\"done\":true"));

    coordinator.shutdown().unwrap();
    for (w, h) in [
        (Client::new(w0.addr().to_string()), w0),
        (Client::new(w1.addr().to_string()), w1),
    ] {
        w.shutdown().unwrap();
        h.join();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn killing_a_worker_mid_campaign_redispatches_and_merges_bit_identically() {
    let base = temp_dir("kill");
    let spec = dgemm_spec(32, 1200, 2017);
    let reference = single_node_summary(&spec);

    let mut workers: Vec<Option<daemon::DaemonHandle>> = (0..3)
        .map(|i| Some(daemon::start(worker_config(&base.join(format!("w{i}")))).unwrap()))
        .collect();
    let addrs: Vec<String> = workers
        .iter()
        .map(|w| w.as_ref().unwrap().addr().to_string())
        .collect();
    let coordinator = coord::start(CoordinatorConfig {
        addr: "127.0.0.1:0".to_owned(),
        data_dir: base.join("coord"),
        spec,
        shards: 3,
        workers: addrs.clone(),
        heartbeat_interval: Duration::from_millis(200),
        heartbeat_timeout: Duration::from_millis(1000),
        summary_out: Some(base.join("merged-summary.json")),
        trace_out: Some(base.join("fleet-trace.json")),
    })
    .unwrap();
    let client = Client::new(coordinator.addr().to_string());

    // Find a shard that is dispatched but nowhere near covered, and
    // kill the daemon it runs on — abruptly, mid-stream.
    let deadline = Instant::now() + WAIT;
    let victim_addr = loop {
        assert!(
            Instant::now() < deadline,
            "no in-flight shard appeared before the deadline"
        );
        let candidate = shard_rows(&client).into_iter().find(|row| {
            json::get_str(row, "state").unwrap() == "dispatched"
                && num(row, "covered") < (num(row, "end") - num(row, "start")) / 2
        });
        if let Some(row) = candidate {
            break json::get_str(&row, "worker").unwrap().to_owned();
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let victim = addrs.iter().position(|a| *a == victim_addr).unwrap();
    workers[victim].take().unwrap().shutdown_abrupt();

    coordinator.wait_done(WAIT).unwrap();

    // Bit-identical merge despite the mid-campaign death...
    assert_eq!(client.result("merged").unwrap(), reference);
    assert_eq!(
        std::fs::read_to_string(base.join("merged-summary.json")).unwrap(),
        reference
    );

    // ...and the re-dispatch is visible: the counter advanced and no
    // completed shard still points at the dead worker for its tail.
    let metrics = client.metrics().unwrap();
    let redispatched: f64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("radcrit_fabric_shards_redispatched_total "))
        .expect("redispatch counter missing from coordinator /metrics")
        .trim()
        .parse()
        .unwrap();
    assert!(
        redispatched >= 1.0,
        "expected at least one redispatch, metrics:\n{metrics}"
    );
    let rows = shard_rows(&client);
    assert_eq!(rows.len(), 3);
    assert!(rows
        .iter()
        .all(|row| json::get_str(row, "state").unwrap() == "completed"));
    assert!(
        rows.iter().any(|row| num(row, "redispatches") >= 1),
        "shard table records no redispatch: {:?}",
        client.shards().unwrap()
    );

    // The health engine saw the whole episode: worker-flapping and
    // redispatch-storm both fired during the campaign and resolve once
    // the trailing window drains of deaths and re-dispatches.
    let deadline = Instant::now() + WAIT;
    loop {
        let rows = alert_rows(&client);
        let rule = |name: &str| {
            rows.iter()
                .find(|r| json::get_str(r, "rule").unwrap() == name)
                .unwrap_or_else(|| panic!("rule {name} missing from /alerts"))
                .clone()
        };
        let flap = rule("worker-flapping");
        let storm = rule("redispatch-storm");
        assert!(
            num(&flap, "fired_total") >= 1,
            "worker-flapping never fired"
        );
        assert!(
            num(&storm, "fired_total") >= 1,
            "redispatch-storm never fired"
        );
        if json::get_str(&flap, "state").unwrap() == "ok"
            && json::get_str(&storm, "state").unwrap() == "ok"
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "alerts did not resolve before the deadline: {}",
            client.alerts().unwrap()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // One merged fleet trace tells the story end to end: dispatches,
    // the death, the re-dispatch and per-shard completion — and the
    // `--trace-out` artifact is the same document.
    let trace = client.fleet_trace().unwrap();
    let parsed = json::parse_line(&trace.replace('\n', "")).unwrap();
    let top = json::as_obj(&parsed).unwrap().to_vec();
    assert!(matches!(
        json::get(&top, "traceEvents").unwrap(),
        json::Json::Arr(_)
    ));
    for needle in [
        "\"dispatch\"",
        "\"redispatch\"",
        "worker-dead",
        "\"shard-complete\"",
        "\"campaign\"",
    ] {
        assert!(trace.contains(needle), "fleet trace missing {needle}");
    }
    // The `--trace-out` artifact is the same document modulo clock-offset
    // refinement between the completion-time write and the fetch above.
    let artifact = std::fs::read_to_string(base.join("fleet-trace.json")).unwrap();
    assert!(artifact.contains("\"traceEvents\""), "{artifact}");
    assert!(artifact.contains("\"redispatch\""), "{artifact}");

    coordinator.shutdown().unwrap();
    for handle in workers.into_iter().flatten() {
        let w = Client::new(handle.addr().to_string());
        w.shutdown().unwrap();
        handle.join();
    }
    std::fs::remove_dir_all(&base).ok();
}
