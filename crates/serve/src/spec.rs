//! The job-spec wire format: what a client POSTs to `/jobs`.
//!
//! One JSON object describes one campaign. The canonical serializer
//! ([`JobSpec::to_json`]) always writes *every* field (optional ones as
//! `null`), and the parser rejects unknown versions, so API evolution
//! cannot silently drop fields — the round-trip property test in
//! `tests/spec_roundtrip.rs` holds the two sides together.
//!
//! Both the daemon and the direct CLI path build their [`Campaign`]
//! through [`JobSpec::campaign`], which is what makes the service's
//! results bit-for-bit identical to a local run of the same spec.

use std::time::Duration;

use radcrit_accel::config::DeviceConfig;
use radcrit_campaign::{Campaign, KernelSpec};
use radcrit_core::filter::ToleranceFilter;
use radcrit_kernels::pathological::Failure;
use radcrit_obs::json::{self, Json};
use radcrit_obs::TraceContext;

use crate::error::ServeError;

/// Wire-format version accepted by this build.
pub const SPEC_VERSION: usize = 1;

/// Which physical device preset a job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// NVIDIA Kepler K40 preset.
    K40,
    /// Intel Xeon Phi 3120A preset.
    XeonPhi,
}

impl DeviceKind {
    /// The wire name (`"k40"` / `"phi"`, as the CLI flags spell them).
    pub fn wire_name(self) -> &'static str {
        match self {
            DeviceKind::K40 => "k40",
            DeviceKind::XeonPhi => "phi",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an unknown device name.
    pub fn from_wire(name: &str) -> Result<Self, ServeError> {
        match name {
            "k40" => Ok(DeviceKind::K40),
            "phi" => Ok(DeviceKind::XeonPhi),
            other => Err(ServeError::Config(format!(
                "unknown device {other:?} (expected \"k40\" or \"phi\")"
            ))),
        }
    }
}

/// Job priority: higher classes are dequeued first; FIFO within one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when nothing else waits.
    Low,
}

impl Priority {
    /// The wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an unknown priority name.
    pub fn from_wire(name: &str) -> Result<Self, ServeError> {
        match name {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(ServeError::Config(format!(
                "unknown priority {other:?} (expected \"high\", \"normal\" or \"low\")"
            ))),
        }
    }
}

/// One submittable campaign: the wire form of [`Campaign`] plus
/// service-level knobs (priority, event sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The device preset.
    pub device: DeviceKind,
    /// Device scale divisor (1 = full size; presets usually use 8).
    pub scale: usize,
    /// The kernel and input size.
    pub kernel: KernelSpec,
    /// Number of injected executions.
    pub injections: usize,
    /// Base seed.
    pub seed: u64,
    /// Relative-error tolerance in percent (`None` = paper default 2 %).
    pub tolerance_pct: Option<f64>,
    /// Worker threads inside the campaign (0 = one per core).
    pub workers: usize,
    /// Per-injection watchdog deadline in milliseconds (`None` = off).
    pub deadline_ms: Option<u64>,
    /// Queue priority.
    pub priority: Priority,
    /// Detail-event sampling stride for the job's event stream.
    pub events_sample: u64,
    /// Injection index range `[start, end)` this job runs — one shard
    /// of a federated campaign. `None` (the wire's `null`) runs the
    /// whole `0..injections` range. The golden execution and per-index
    /// RNG streams stay those of the full campaign, so a shard's records
    /// are bit-identical to the same indices of an unsharded run.
    pub shard: Option<(usize, usize)>,
    /// Pin the job's SIMD dispatch to the scalar reference executor
    /// (the `--scalar` CLI flag). Results are bit-identical either way;
    /// this measures the vectorization speedup and rules it out when
    /// debugging.
    pub force_scalar: bool,
    /// Distributed-trace context minted by a coordinator: campaign
    /// identity, shard ordinal and the dispatching span's id. `None`
    /// (the wire's `null`) for direct submissions — the science is
    /// identical either way; the context only tags the job's trace.
    pub trace: Option<TraceContext>,
}

impl JobSpec {
    /// A spec with the service defaults for everything but the science
    /// (scale 1, auto workers, normal priority, full event detail).
    pub fn new(device: DeviceKind, kernel: KernelSpec, injections: usize, seed: u64) -> Self {
        JobSpec {
            device,
            scale: 1,
            kernel,
            injections,
            seed,
            tolerance_pct: None,
            workers: 0,
            deadline_ms: None,
            priority: Priority::Normal,
            events_sample: 1,
            shard: None,
            force_scalar: false,
            trace: None,
        }
    }

    /// Renders the canonical wire form: one JSON line, every field
    /// present, optional fields as `null`.
    pub fn to_json(&self) -> String {
        let kernel = match self.kernel {
            KernelSpec::Dgemm { n } => format!("{{\"type\":\"dgemm\",\"n\":{n}}}"),
            KernelSpec::LavaMd { grid, particles } => {
                format!("{{\"type\":\"lavamd\",\"grid\":{grid},\"particles\":{particles}}}")
            }
            KernelSpec::HotSpot {
                rows,
                cols,
                iterations,
            } => format!(
                "{{\"type\":\"hotspot\",\"rows\":{rows},\"cols\":{cols},\"iterations\":{iterations}}}"
            ),
            KernelSpec::Shallow { rows, cols, steps } => {
                format!("{{\"type\":\"clamr\",\"rows\":{rows},\"cols\":{cols},\"steps\":{steps}}}")
            }
            KernelSpec::Pathological { n, after, mode } => format!(
                "{{\"type\":\"pathological\",\"n\":{n},\"after\":{after},\"mode\":\"{mode:?}\"}}"
            ),
        };
        format!(
            concat!(
                "{{\"radcrit_job\":{}",
                ",\"device\":\"{}\",\"scale\":{},\"kernel\":{}",
                ",\"injections\":{},\"seed\":{},\"tolerance_pct\":{}",
                ",\"workers\":{},\"deadline_ms\":{}",
                ",\"priority\":\"{}\",\"events_sample\":{}",
                ",\"shard\":{},\"force_scalar\":{},\"trace\":{}}}"
            ),
            SPEC_VERSION,
            self.device.wire_name(),
            self.scale,
            kernel,
            self.injections,
            self.seed,
            json::fmt_opt_f64(self.tolerance_pct),
            self.workers,
            self.deadline_ms
                .map_or_else(|| "null".to_owned(), |ms| ms.to_string()),
            self.priority.wire_name(),
            self.events_sample,
            self.shard.map_or_else(
                || "null".to_owned(),
                |(start, end)| format!("[{start},{end}]")
            ),
            self.force_scalar,
            self.trace.as_ref().map_or_else(
                || "null".to_owned(),
                |t| format!(
                    "{{\"campaign_id\":\"{}\",\"shard\":{},\"parent_span\":{}}}",
                    json::escape(&t.campaign_id),
                    t.shard,
                    t.parent_span
                )
            ),
        )
    }

    /// Parses the wire form. Optional fields may be absent *or* `null`;
    /// unknown versions and malformed fields are rejected.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] describing the first problem found.
    pub fn parse(body: &str) -> Result<Self, ServeError> {
        let v = json::parse_line(body.trim())
            .map_err(|m| ServeError::Config(format!("job spec: {m}")))?;
        Self::from_value(&v)
    }

    /// Parses an already-decoded JSON value (e.g. a `spec` field nested
    /// inside a journal line) with the same rules as [`JobSpec::parse`].
    ///
    /// # Errors
    ///
    /// As [`JobSpec::parse`].
    pub fn from_value(v: &Json) -> Result<Self, ServeError> {
        let bad = |m: String| ServeError::Config(format!("job spec: {m}"));
        let obj = json::as_obj(v).map_err(bad)?;
        let version = json::get_usize(obj, "radcrit_job").map_err(bad)?;
        if version != SPEC_VERSION {
            return Err(ServeError::Config(format!(
                "job spec: unsupported version {version} (this build speaks {SPEC_VERSION})"
            )));
        }
        let device = DeviceKind::from_wire(json::get_str(obj, "device").map_err(bad)?)?;
        let kernel_obj = json::as_obj(json::get(obj, "kernel").map_err(bad)?).map_err(bad)?;
        let kernel = parse_kernel(kernel_obj).map_err(bad)?;
        let spec = JobSpec {
            device,
            scale: opt_usize(obj, "scale").map_err(bad)?.unwrap_or(1),
            kernel,
            injections: json::get_usize(obj, "injections").map_err(bad)?,
            seed: json::get_usize(obj, "seed").map_err(bad)? as u64,
            tolerance_pct: opt_f64(obj, "tolerance_pct").map_err(bad)?,
            workers: opt_usize(obj, "workers").map_err(bad)?.unwrap_or(0),
            deadline_ms: opt_usize(obj, "deadline_ms")
                .map_err(bad)?
                .map(|v| v as u64),
            priority: match opt_str(obj, "priority").map_err(bad)? {
                Some(name) => Priority::from_wire(name)?,
                None => Priority::Normal,
            },
            events_sample: opt_usize(obj, "events_sample")
                .map_err(bad)?
                .map_or(1, |v| v as u64),
            shard: opt_shard(obj).map_err(bad)?,
            force_scalar: opt_bool(obj, "force_scalar").map_err(bad)?.unwrap_or(false),
            trace: opt_trace(obj).map_err(bad)?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation beyond JSON well-formedness.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for out-of-range values.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.scale == 0 {
            return Err(ServeError::Config("job spec: scale must be >= 1".into()));
        }
        if self.injections == 0 {
            return Err(ServeError::Config(
                "job spec: injections must be >= 1".into(),
            ));
        }
        if self.deadline_ms == Some(0) {
            return Err(ServeError::Config(
                "job spec: deadline_ms must be positive".into(),
            ));
        }
        if let Some(t) = self.tolerance_pct {
            if t.is_nan() || t < 0.0 {
                return Err(ServeError::Config(format!(
                    "job spec: tolerance_pct {t} is not a valid percentage"
                )));
            }
        }
        if let Some((start, end)) = self.shard {
            if start >= end || end > self.injections {
                return Err(ServeError::Config(format!(
                    "job spec: shard [{start},{end}) out of range for {} injections",
                    self.injections
                )));
            }
        }
        Ok(())
    }

    /// Builds the runnable [`Campaign`] — the single construction path
    /// shared by the daemon and the direct CLI, so both produce the
    /// same science for the same spec.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the device cannot be scaled or the
    /// tolerance is invalid.
    pub fn campaign(&self) -> Result<Campaign, ServeError> {
        self.validate()?;
        let device = match self.device {
            DeviceKind::K40 => DeviceConfig::kepler_k40(),
            DeviceKind::XeonPhi => DeviceConfig::xeon_phi_3120a(),
        };
        let device = if self.scale > 1 {
            device
                .scaled(self.scale)
                .map_err(|e| ServeError::Config(format!("cannot scale device: {e}")))?
        } else {
            device
        };
        let tolerance = match self.tolerance_pct {
            Some(pct) => ToleranceFilter::new(pct)
                .map_err(|e| ServeError::Config(format!("bad tolerance: {e}")))?,
            None => ToleranceFilter::paper_default(),
        };
        let mut campaign = Campaign::new(device, self.kernel, self.injections, self.seed)
            .with_tolerance(tolerance)
            .with_workers(self.workers);
        if let Some(ms) = self.deadline_ms {
            campaign = campaign.with_deadline(Duration::from_millis(ms));
        }
        Ok(campaign)
    }
}

/// An optional field: absent and `null` both read as `None`.
fn opt_usize(obj: &[(String, Json)], key: &str) -> Result<Option<usize>, String> {
    match json::get(obj, key) {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Num(n)) => n
            .parse()
            .map(Some)
            .map_err(|_| format!("field {key:?} is not an integer")),
        Ok(_) => Err(format!("field {key:?} is not a number or null")),
    }
}

/// An optional float field: absent and `null` both read as `None`.
fn opt_f64(obj: &[(String, Json)], key: &str) -> Result<Option<f64>, String> {
    match json::get(obj, key) {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Num(n)) => n
            .parse()
            .map(Some)
            .map_err(|_| format!("field {key:?} is not a float")),
        Ok(_) => Err(format!("field {key:?} is not a number or null")),
    }
}

/// An optional boolean field: absent and `null` both read as `None`.
fn opt_bool(obj: &[(String, Json)], key: &str) -> Result<Option<bool>, String> {
    match json::get(obj, key) {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Bool(b)) => Ok(Some(*b)),
        Ok(_) => Err(format!("field {key:?} is not a boolean or null")),
    }
}

/// The optional shard range: absent and `null` both read as `None`;
/// otherwise a two-element `[start, end]` array.
fn opt_shard(obj: &[(String, Json)]) -> Result<Option<(usize, usize)>, String> {
    match json::get(obj, "shard") {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Arr(items)) => {
            let num = |v: &Json| -> Result<usize, String> {
                match v {
                    Json::Num(n) => n
                        .parse()
                        .map_err(|_| "shard bound is not an integer".to_owned()),
                    _ => Err("shard bound is not a number".into()),
                }
            };
            match items.as_slice() {
                [start, end] => Ok(Some((num(start)?, num(end)?))),
                _ => Err(format!(
                    "field \"shard\" must be a [start, end] pair, got {} elements",
                    items.len()
                )),
            }
        }
        Ok(_) => Err("field \"shard\" is not an array or null".into()),
    }
}

/// The optional trace context: absent and `null` both read as `None`;
/// otherwise an object with `campaign_id`, `shard` and `parent_span`.
fn opt_trace(obj: &[(String, Json)]) -> Result<Option<TraceContext>, String> {
    match json::get(obj, "trace") {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Obj(fields)) => Ok(Some(TraceContext {
            campaign_id: json::get_str(fields, "campaign_id")?.to_owned(),
            shard: json::get_u64(fields, "shard")?,
            parent_span: json::get_u64(fields, "parent_span")?,
        })),
        Ok(_) => Err("field \"trace\" is not an object or null".into()),
    }
}

/// An optional string field: absent and `null` both read as `None`.
fn opt_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<Option<&'a str>, String> {
    match json::get(obj, key) {
        Err(_) => Ok(None),
        Ok(Json::Null) => Ok(None),
        Ok(Json::Str(s)) => Ok(Some(s)),
        Ok(_) => Err(format!("field {key:?} is not a string or null")),
    }
}

fn parse_kernel(obj: &[(String, Json)]) -> Result<KernelSpec, String> {
    match json::get_str(obj, "type")? {
        "dgemm" => Ok(KernelSpec::Dgemm {
            n: json::get_usize(obj, "n")?,
        }),
        "lavamd" => Ok(KernelSpec::LavaMd {
            grid: json::get_usize(obj, "grid")?,
            particles: json::get_usize(obj, "particles")?,
        }),
        "hotspot" => Ok(KernelSpec::HotSpot {
            rows: json::get_usize(obj, "rows")?,
            cols: json::get_usize(obj, "cols")?,
            iterations: json::get_usize(obj, "iterations")?,
        }),
        "clamr" => Ok(KernelSpec::Shallow {
            rows: json::get_usize(obj, "rows")?,
            cols: json::get_usize(obj, "cols")?,
            steps: json::get_usize(obj, "steps")?,
        }),
        "pathological" => Ok(KernelSpec::Pathological {
            n: json::get_usize(obj, "n")?,
            after: json::get_usize(obj, "after")?,
            mode: match json::get_str(obj, "mode")? {
                "Hang" | "hang" => Failure::Hang,
                "Panic" | "panic" => Failure::Panic,
                other => return Err(format!("unknown pathological mode {other:?}")),
            },
        }),
        other => Err(format!("unknown kernel type {other:?}")),
    }
}
