//! A std-only client for the campaign daemon.
//!
//! Thin wrapper over one-connection-per-exchange HTTP: every method
//! opens a fresh [`TcpStream`], writes one request, reads one response.
//! Non-2xx responses surface as [`ServeError::Http`] carrying the status
//! and the server's JSON error body.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use radcrit_obs::json;

use crate::error::ServeError;
use crate::http::{read_response, Response};
use crate::spec::JobSpec;

/// Default connection-establishment timeout.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default per-read socket timeout. Live SSE streams stay under it
/// because the server pings every 15 s.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Runs `op` up to `attempts` times, sleeping `base`, `2·base`,
/// `4·base`, … between tries, and retries **only** connection-level
/// failures ([`ServeError::Unreachable`], [`ServeError::Io`]).
/// Protocol and HTTP errors mean the server answered — retrying those
/// would just repeat the answer — and they surface immediately.
///
/// Use this only around requests that are safe to repeat: an I/O error
/// can strike *after* the server acted (e.g. a submit that was accepted
/// but whose response was lost), so wrapping a non-idempotent POST can
/// duplicate work.
///
/// # Errors
///
/// The last error once `attempts` are exhausted.
///
/// # Panics
///
/// When `attempts` is zero.
pub fn retry_with_backoff<T>(
    attempts: usize,
    base: Duration,
    mut op: impl FnMut() -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    assert!(
        attempts > 0,
        "retry_with_backoff needs at least one attempt"
    );
    let mut delay = base;
    let mut last = None;
    for attempt in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e @ (ServeError::Io(_) | ServeError::Unreachable(_))) => last = Some(e),
            Err(e) => return Err(e),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// One job's state as reported by `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The wire state: `submitted`, `running`, `done`, `failed`,
    /// `cancelled` (or transitional `cancelling` from a cancel call).
    pub state: String,
    /// The failure message, when `state == "failed"`.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job will never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }
}

/// Client handle for one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl Client {
    /// Creates a client for the daemon at `addr` (`host:port`) with the
    /// default timeouts.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            read_timeout: DEFAULT_READ_TIMEOUT,
        }
    }

    /// Sets the connection-establishment timeout; a daemon that cannot
    /// even accept within it counts as down.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-read socket timeout. Health probes against possibly
    /// dead workers want this short; bulk downloads may want it longer.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Opens a fresh connection under the configured timeouts. Failures
    /// here surface as [`ServeError::Unreachable`]: the request never
    /// reached the server, so the caller may safely retry elsewhere.
    fn connect(&self) -> Result<TcpStream, ServeError> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Unreachable(format!("resolve {}: {e}", self.addr)))?;
        let mut last = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.read_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ServeError::Unreachable(format!(
            "connect {}: {}",
            self.addr,
            last.map_or_else(|| "no addresses resolved".to_owned(), |e| e.to_string())
        )))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ServeError> {
        self.request_with(method, path, body, &[])
    }

    fn request_with(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, String)],
    ) -> Result<Response, ServeError> {
        let mut stream = self.connect()?;
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.addr,
            body.len(),
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Like [`Client::request`] but rejects non-2xx statuses.
    fn expect_ok(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ServeError> {
        let response = self.request(method, path, body)?;
        if (200..300).contains(&response.status) {
            Ok(response)
        } else {
            Err(ServeError::Http {
                status: response.status,
                body: response.body,
            })
        }
    }

    /// Submits `spec`; returns the allocated job id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 400 (invalid spec), 429 (queue full) or
    /// 503 (draining); [`ServeError::Unreachable`] when the daemon
    /// cannot be connected to at all; [`ServeError::Io`] when the
    /// connection failed after the request may have been sent (the job
    /// may exist on the daemon despite the error).
    pub fn submit(&self, spec: &JobSpec) -> Result<String, ServeError> {
        let response = self.expect_ok("POST", "/jobs", Some(&spec.to_json()))?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        json::get_str(obj, "job")
            .map(str::to_owned)
            .map_err(ServeError::Protocol)
    }

    /// Fetches the job's current state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn status(&self, id: &str) -> Result<JobStatus, ServeError> {
        let response = self.expect_ok("GET", &format!("/jobs/{id}"), None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        Ok(JobStatus {
            state: json::get_str(obj, "status")
                .map_err(ServeError::Protocol)?
                .to_owned(),
            error: json::get_str(obj, "error").ok().map(str::to_owned),
        })
    }

    /// Polls until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Interrupted`] when `timeout` elapses first; any
    /// status-call error otherwise.
    pub fn wait(
        &self,
        id: &str,
        poll: Duration,
        timeout: Duration,
    ) -> Result<JobStatus, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Interrupted(format!(
                    "job {id} still {} after {:.1}s",
                    status.state,
                    timeout.as_secs_f64()
                )));
            }
            std::thread::sleep(poll);
        }
    }

    /// Fetches the finished job's canonical summary JSON (one line).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 409 while the job is not done, 404 for
    /// unknown jobs.
    pub fn result(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/result"), None)?
            .body)
    }

    /// Streams the job's event log (chunked JSONL, returned assembled).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 when no events exist yet.
    pub fn events(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/events"), None)?
            .body)
    }

    /// Tails the job's event stream as Server-Sent Events, blocking
    /// until the stream ends (job terminal and file exhausted), and
    /// returns the `(id, data)` frames. `resume_after` is sent as
    /// `Last-Event-ID`: only frames with a larger line ordinal arrive.
    /// The final id-less `end` frame is consumed, not returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn stream(
        &self,
        id: &str,
        resume_after: Option<u64>,
    ) -> Result<Vec<(u64, String)>, ServeError> {
        let mut frames = Vec::new();
        self.stream_with(id, resume_after, &mut |ordinal, data| {
            frames.push((ordinal, data.to_owned()));
            true
        })?;
        Ok(frames)
    }

    /// Tails the job's event stream as Server-Sent Events, delivering
    /// each `(id, data)` frame to `on_frame` **as it arrives** instead
    /// of buffering the whole stream. Ping comments and the final
    /// id-less `end` frame are consumed silently. Returns when the
    /// server ends the stream, or early (still `Ok`) when `on_frame`
    /// returns `false`.
    ///
    /// `resume_after` is sent as `Last-Event-ID`: only frames with a
    /// larger line ordinal arrive.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs; [`ServeError::Io`]
    /// when the connection drops mid-stream (including a read timeout —
    /// a live server pings inside it).
    pub fn stream_with(
        &self,
        id: &str,
        resume_after: Option<u64>,
        on_frame: &mut dyn FnMut(u64, &str) -> bool,
    ) -> Result<(), ServeError> {
        let mut stream = self.connect()?;
        let mut head = format!(
            "GET /jobs/{id}/stream HTTP/1.1\r\nHost: {}\r\nContent-Length: 0\r\n",
            self.addr
        );
        if let Some(n) = resume_after {
            head.push_str(&format!("Last-Event-ID: {n}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ServeError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut chunked = false;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("transfer-encoding")
                    && value.trim().eq_ignore_ascii_case("chunked")
                {
                    chunked = true;
                }
            }
        }
        if !(200..300).contains(&status) {
            let mut body = Vec::new();
            if let Some(n) = content_length {
                body = vec![0u8; n];
                reader.read_exact(&mut body)?;
            } else {
                reader.read_to_end(&mut body)?;
            }
            return Err(ServeError::Http {
                status,
                body: String::from_utf8_lossy(&body).into_owned(),
            });
        }

        // Accumulate body bytes, peeling complete `\n\n`-terminated SSE
        // frames off the front as they land.
        let mut buffer: Vec<u8> = Vec::new();
        let mut deliver = |buffer: &mut Vec<u8>| -> Result<bool, ServeError> {
            while let Some(at) = buffer.windows(2).position(|w| w == b"\n\n") {
                let frame: Vec<u8> = buffer.drain(..at + 2).collect();
                let frame = std::str::from_utf8(&frame[..at])
                    .map_err(|_| ServeError::Protocol("SSE frame is not UTF-8".into()))?;
                let mut ordinal = None;
                let mut data = None;
                for line in frame.lines() {
                    if let Some(v) = line.strip_prefix("id: ") {
                        ordinal = v.trim().parse::<u64>().ok();
                    } else if let Some(v) = line.strip_prefix("data: ") {
                        data = Some(v.to_owned());
                    }
                }
                if let (Some(ordinal), Some(data)) = (ordinal, data) {
                    if !on_frame(ordinal, &data) {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        };
        if chunked {
            loop {
                let mut size_line = String::new();
                reader.read_line(&mut size_line)?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| ServeError::Protocol(format!("bad chunk size {size_line:?}")))?;
                if size == 0 {
                    let mut trailer = String::new();
                    reader.read_line(&mut trailer)?;
                    break;
                }
                let mut chunk = vec![0u8; size + 2]; // data + CRLF
                reader.read_exact(&mut chunk)?;
                chunk.truncate(size);
                buffer.extend_from_slice(&chunk);
                if !deliver(&mut buffer)? {
                    return Ok(());
                }
            }
        } else {
            loop {
                let block = reader.fill_buf()?;
                if block.is_empty() {
                    break;
                }
                let n = block.len();
                buffer.extend_from_slice(block);
                reader.consume(n);
                if !deliver(&mut buffer)? {
                    return Ok(());
                }
            }
        }
        deliver(&mut buffer)?;
        Ok(())
    }

    /// Fetches the rolling criticality fold of one job's event stream
    /// (the `CriticalityAggregator` JSON from `GET /jobs/:id/analytics`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs or before any
    /// events exist.
    pub fn analytics(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/analytics"), None)?
            .body)
    }

    /// Fetches the daemon-wide criticality rollup (`GET /analytics`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn rollup(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/analytics", None)?.body)
    }

    /// Fetches a job's Chrome trace-event timeline JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 before the job has written a trace.
    pub fn trace(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/trace"), None)?
            .body)
    }

    /// Fetches a job's hierarchical phase profile JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 before the job has written a
    /// profile.
    pub fn profile(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/profile"), None)?
            .body)
    }

    /// Fetches the daemon-wide merged phase profile (`GET /profile`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn profile_rollup(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/profile", None)?.body)
    }

    /// Lists all jobs the daemon knows, as `(id, wire state)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn jobs(&self) -> Result<Vec<(String, String)>, ServeError> {
        let response = self.expect_ok("GET", "/jobs", None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        let rows = match json::get(obj, "jobs").map_err(ServeError::Protocol)? {
            json::Json::Arr(rows) => rows,
            other => {
                return Err(ServeError::Protocol(format!(
                    "jobs is not an array: {other:?}"
                )))
            }
        };
        rows.iter()
            .map(|row| {
                let row = json::as_obj(row).map_err(ServeError::Protocol)?;
                Ok((
                    json::get_str(row, "job")
                        .map_err(ServeError::Protocol)?
                        .to_owned(),
                    json::get_str(row, "status")
                        .map_err(ServeError::Protocol)?
                        .to_owned(),
                ))
            })
            .collect()
    }

    /// Cancels a queued or running job; returns the resulting wire state
    /// (`cancelled` immediately for queued jobs, `cancelling` for
    /// running ones).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn cancel(&self, id: &str) -> Result<String, ServeError> {
        let response = self.expect_ok("POST", &format!("/jobs/{id}/cancel"), None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        json::get_str(obj, "status")
            .map(str::to_owned)
            .map_err(ServeError::Protocol)
    }

    /// Fetches a finished job's metrics snapshot JSON
    /// (`GET /jobs/:id/metrics`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs or before the
    /// snapshot exists.
    pub fn job_metrics(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/metrics"), None)?
            .body)
    }

    /// Registers a worker daemon with a coordinator (`POST /register`);
    /// returns the coordinator's JSON acknowledgement.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn register_worker(&self, worker_addr: &str) -> Result<String, ServeError> {
        let body = format!("{{\"worker\":\"{}\"}}", json::escape(worker_addr));
        Ok(self.expect_ok("POST", "/register", Some(&body))?.body)
    }

    /// Fetches a coordinator's shard table (`GET /shards`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn shards(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/shards", None)?.body)
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn metrics(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/metrics", None)?.body)
    }

    /// Fetches the alert engine's current state (`GET /alerts`) — the
    /// rules table with firing/ok state, both daemons and coordinators
    /// serve it.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn alerts(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/alerts", None)?.body)
    }

    /// Fetches a coordinator's merged fleet-wide Chrome trace
    /// (`GET /trace`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn fleet_trace(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/trace", None)?.body)
    }

    /// Liveness probe; returns the `/healthz` JSON body.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn healthz(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/healthz", None)?.body)
    }

    /// Asks the daemon to drain: no new jobs, finish what is queued,
    /// then exit.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.expect_ok("POST", "/shutdown", None).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn a_stalled_server_times_out_instead_of_hanging() {
        // Accept the connection but never write a byte: the read
        // timeout, not a 30 s default, must bound the call.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let client = Client::new(addr.to_string())
            .with_connect_timeout(Duration::from_millis(500))
            .with_read_timeout(Duration::from_millis(100));
        let started = Instant::now();
        let result = client.healthz();
        let elapsed = started.elapsed();
        assert!(
            matches!(result, Err(ServeError::Io(_))),
            "expected an I/O timeout, got {result:?}"
        );
        assert!(
            elapsed < Duration::from_secs(1),
            "timed out in {elapsed:?}, not at the configured 100ms"
        );
        stall.join().unwrap();
    }

    #[test]
    fn a_refused_connection_fails_fast() {
        // Bind then immediately drop: the port exists but refuses.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = Client::new(addr.to_string()).with_connect_timeout(Duration::from_millis(500));
        let started = Instant::now();
        assert!(
            matches!(client.healthz(), Err(ServeError::Unreachable(_))),
            "a refused connection never reached the server"
        );
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn retry_recovers_from_transient_io_errors() {
        let calls = AtomicUsize::new(0);
        let result = retry_with_backoff(3, Duration::from_millis(1), || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(ServeError::Io("transient".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_gives_up_after_the_attempt_budget() {
        let calls = AtomicUsize::new(0);
        let result: Result<(), _> = retry_with_backoff(3, Duration::from_millis(1), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Io("down".into()))
        });
        assert!(matches!(result, Err(ServeError::Io(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "bounded, not infinite");
    }

    #[test]
    fn retry_does_not_repeat_requests_the_server_answered() {
        let calls = AtomicUsize::new(0);
        let result: Result<(), _> = retry_with_backoff(5, Duration::from_millis(1), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(ServeError::Http {
                status: 429,
                body: "{\"error\":\"queue full\"}".into(),
            })
        });
        assert!(matches!(result, Err(ServeError::Http { status: 429, .. })));
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "an answered request must not be replayed"
        );
    }
}
