//! A std-only client for the campaign daemon.
//!
//! Thin wrapper over one-connection-per-exchange HTTP: every method
//! opens a fresh [`TcpStream`], writes one request, reads one response.
//! Non-2xx responses surface as [`ServeError::Http`] carrying the status
//! and the server's JSON error body.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use radcrit_obs::json;

use crate::error::ServeError;
use crate::http::{read_response, Response};
use crate::spec::JobSpec;

/// One job's state as reported by `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The wire state: `submitted`, `running`, `done`, `failed`,
    /// `cancelled` (or transitional `cancelling` from a cancel call).
    pub state: String,
    /// The failure message, when `state == "failed"`.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job will never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "done" | "failed" | "cancelled")
    }
}

/// Client handle for one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Creates a client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ServeError> {
        self.request_with(method, path, body, &[])
    }

    fn request_with(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, String)],
    ) -> Result<Response, ServeError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| ServeError::Io(format!("connect {}: {e}", self.addr)))?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n",
            self.addr,
            body.len(),
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Like [`Client::request`] but rejects non-2xx statuses.
    fn expect_ok(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, ServeError> {
        let response = self.request(method, path, body)?;
        if (200..300).contains(&response.status) {
            Ok(response)
        } else {
            Err(ServeError::Http {
                status: response.status,
                body: response.body,
            })
        }
    }

    /// Submits `spec`; returns the allocated job id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 400 (invalid spec), 429 (queue full) or
    /// 503 (draining); [`ServeError::Io`] on connection problems.
    pub fn submit(&self, spec: &JobSpec) -> Result<String, ServeError> {
        let response = self.expect_ok("POST", "/jobs", Some(&spec.to_json()))?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        json::get_str(obj, "job")
            .map(str::to_owned)
            .map_err(ServeError::Protocol)
    }

    /// Fetches the job's current state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn status(&self, id: &str) -> Result<JobStatus, ServeError> {
        let response = self.expect_ok("GET", &format!("/jobs/{id}"), None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        Ok(JobStatus {
            state: json::get_str(obj, "status")
                .map_err(ServeError::Protocol)?
                .to_owned(),
            error: json::get_str(obj, "error").ok().map(str::to_owned),
        })
    }

    /// Polls until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Interrupted`] when `timeout` elapses first; any
    /// status-call error otherwise.
    pub fn wait(
        &self,
        id: &str,
        poll: Duration,
        timeout: Duration,
    ) -> Result<JobStatus, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ServeError::Interrupted(format!(
                    "job {id} still {} after {:.1}s",
                    status.state,
                    timeout.as_secs_f64()
                )));
            }
            std::thread::sleep(poll);
        }
    }

    /// Fetches the finished job's canonical summary JSON (one line).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 409 while the job is not done, 404 for
    /// unknown jobs.
    pub fn result(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/result"), None)?
            .body)
    }

    /// Streams the job's event log (chunked JSONL, returned assembled).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 when no events exist yet.
    pub fn events(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/events"), None)?
            .body)
    }

    /// Tails the job's event stream as Server-Sent Events, blocking
    /// until the stream ends (job terminal and file exhausted), and
    /// returns the `(id, data)` frames. `resume_after` is sent as
    /// `Last-Event-ID`: only frames with a larger line ordinal arrive.
    /// The final id-less `end` frame is consumed, not returned.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn stream(
        &self,
        id: &str,
        resume_after: Option<u64>,
    ) -> Result<Vec<(u64, String)>, ServeError> {
        let headers: Vec<(&str, String)> = resume_after
            .map(|n| ("Last-Event-ID", n.to_string()))
            .into_iter()
            .collect();
        let response = self.request_with("GET", &format!("/jobs/{id}/stream"), None, &headers)?;
        if !(200..300).contains(&response.status) {
            return Err(ServeError::Http {
                status: response.status,
                body: response.body,
            });
        }
        let mut frames = Vec::new();
        for frame in response.body.split("\n\n").filter(|f| !f.trim().is_empty()) {
            let mut id = None;
            let mut data = None;
            for line in frame.lines() {
                if let Some(v) = line.strip_prefix("id: ") {
                    id = v.trim().parse::<u64>().ok();
                } else if let Some(v) = line.strip_prefix("data: ") {
                    data = Some(v.to_owned());
                }
            }
            if let (Some(id), Some(data)) = (id, data) {
                frames.push((id, data));
            }
        }
        Ok(frames)
    }

    /// Fetches the rolling criticality fold of one job's event stream
    /// (the `CriticalityAggregator` JSON from `GET /jobs/:id/analytics`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs or before any
    /// events exist.
    pub fn analytics(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/analytics"), None)?
            .body)
    }

    /// Fetches the daemon-wide criticality rollup (`GET /analytics`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn rollup(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/analytics", None)?.body)
    }

    /// Fetches a job's Chrome trace-event timeline JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 before the job has written a trace.
    pub fn trace(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/trace"), None)?
            .body)
    }

    /// Fetches a job's hierarchical phase profile JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 before the job has written a
    /// profile.
    pub fn profile(&self, id: &str) -> Result<String, ServeError> {
        Ok(self
            .expect_ok("GET", &format!("/jobs/{id}/profile"), None)?
            .body)
    }

    /// Fetches the daemon-wide merged phase profile (`GET /profile`).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn profile_rollup(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/profile", None)?.body)
    }

    /// Lists all jobs the daemon knows, as `(id, wire state)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn jobs(&self) -> Result<Vec<(String, String)>, ServeError> {
        let response = self.expect_ok("GET", "/jobs", None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        let rows = match json::get(obj, "jobs").map_err(ServeError::Protocol)? {
            json::Json::Arr(rows) => rows,
            other => {
                return Err(ServeError::Protocol(format!(
                    "jobs is not an array: {other:?}"
                )))
            }
        };
        rows.iter()
            .map(|row| {
                let row = json::as_obj(row).map_err(ServeError::Protocol)?;
                Ok((
                    json::get_str(row, "job")
                        .map_err(ServeError::Protocol)?
                        .to_owned(),
                    json::get_str(row, "status")
                        .map_err(ServeError::Protocol)?
                        .to_owned(),
                ))
            })
            .collect()
    }

    /// Cancels a queued or running job; returns the resulting wire state
    /// (`cancelled` immediately for queued jobs, `cancelling` for
    /// running ones).
    ///
    /// # Errors
    ///
    /// [`ServeError::Http`] with 404 for unknown jobs.
    pub fn cancel(&self, id: &str) -> Result<String, ServeError> {
        let response = self.expect_ok("POST", &format!("/jobs/{id}/cancel"), None)?;
        let v = json::parse_line(&response.body).map_err(ServeError::Protocol)?;
        let obj = json::as_obj(&v).map_err(ServeError::Protocol)?;
        json::get_str(obj, "status")
            .map(str::to_owned)
            .map_err(ServeError::Protocol)
    }

    /// Fetches the Prometheus metrics exposition.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn metrics(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/metrics", None)?.body)
    }

    /// Liveness probe; returns the `/healthz` JSON body.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn healthz(&self) -> Result<String, ServeError> {
        Ok(self.expect_ok("GET", "/healthz", None)?.body)
    }

    /// Asks the daemon to drain: no new jobs, finish what is queued,
    /// then exit.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.expect_ok("POST", "/shutdown", None).map(|_| ())
    }
}
