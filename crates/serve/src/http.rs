//! A hand-rolled, std-only HTTP/1.1 subset.
//!
//! Just enough protocol for the campaign service: request line, headers
//! and `Content-Length` bodies on the way in; fixed-length or chunked
//! responses with `Connection: close` on the way out. No keep-alive, no
//! TLS, no compression — the daemon serves a trusted lab network, and
//! every exchange is one connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ServeError;

/// Upper bound on accepted request bodies (a job spec is < 1 KiB; this
/// leaves two orders of magnitude of slack).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on the request line + header section combined. This API
/// uses no interesting headers, so 16 KiB is generous; the cap keeps one
/// slow or malicious connection from holding a handler thread while
/// growing an unbounded header buffer.
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// Reads one `\n`-terminated line from `reader`, charging its bytes
/// against `budget`.
///
/// # Errors
///
/// [`ServeError::Protocol`] when the head section would exceed
/// [`MAX_HEAD_BYTES`], [`ServeError::Io`] on socket errors.
fn read_head_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ServeError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            break; // EOF terminates the line
        }
        let (take, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (buf.len(), false),
        };
        if take > *budget {
            return Err(ServeError::Protocol(format!(
                "request head exceeds the {MAX_HEAD_BYTES} byte limit"
            )));
        }
        *budget -= take;
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if done {
            break;
        }
    }
    String::from_utf8(line).map_err(|_| ServeError::Protocol("head is not UTF-8".into()))
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The HTTP method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included when present.
    pub path: String,
    /// All request headers, names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The decoded body (empty without `Content-Length`).
    pub body: String,
}

impl Request {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed framing, [`ServeError::Io`] on
/// socket errors.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    let mut reader = BufReader::new(stream);
    let mut head_budget = MAX_HEAD_BYTES;
    let request_line = read_head_line(&mut reader, &mut head_budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("request line without a path".into()))?
        .to_owned();

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let line = read_head_line(&mut reader, &mut head_budget)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::Protocol("bad Content-Length".into()))?;
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::Protocol(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body: String::from_utf8(body)
            .map_err(|_| ServeError::Protocol("body is not UTF-8".into()))?,
    })
}

/// The reason phrase of the status codes this API uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a fixed-length response and closes the exchange.
///
/// # Errors
///
/// [`ServeError::Io`] on socket errors.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> Result<(), ServeError> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    Ok(())
}

/// Writes a `Transfer-Encoding: chunked` response, one chunk per call to
/// the returned writer, then finishes with the zero chunk.
///
/// # Errors
///
/// [`ServeError::Io`] on socket errors.
pub fn respond_chunked<F>(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    mut fill: F,
) -> Result<(), ServeError>
where
    F: FnMut(&mut dyn FnMut(&[u8]) -> std::io::Result<()>) -> std::io::Result<()>,
{
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    {
        let mut write_chunk = |chunk: &[u8]| -> std::io::Result<()> {
            if chunk.is_empty() {
                return Ok(()); // an empty chunk would terminate the stream
            }
            stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
            stream.write_all(chunk)?;
            stream.write_all(b"\r\n")
        };
        fill(&mut write_chunk)?;
    }
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()?;
    Ok(())
}

/// A client-side response: status plus fully-read body (chunked bodies
/// are decoded transparently).
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The decoded body.
    pub body: String,
}

/// Reads one response from `stream`.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed framing, [`ServeError::Io`] on
/// socket errors.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, ServeError> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::Protocol(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ServeError::Protocol(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                let mut trailer = String::new();
                reader.read_line(&mut trailer)?; // the final CRLF
                break;
            }
            let mut chunk = vec![0u8; size + 2]; // data + CRLF
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
    } else if let Some(n) = content_length {
        body = vec![0u8; n];
        reader.read_exact(&mut body)?;
    } else {
        // Connection: close delimits the body.
        reader.read_to_end(&mut body)?;
    }
    Ok(Response {
        status,
        body: String::from_utf8(body)
            .map_err(|_| ServeError::Protocol("response body is not UTF-8".into()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one request/response pair over a real socket.
    fn exchange(
        serve: impl FnOnce(&mut TcpStream, Request) + Send + 'static,
        request: &str,
    ) -> Response {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            serve(&mut stream, req);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(request.as_bytes()).unwrap();
        let response = read_response(&mut client).unwrap();
        server.join().unwrap();
        response
    }

    #[test]
    fn fixed_length_round_trip() {
        let response = exchange(
            |stream, req| {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/jobs");
                assert_eq!(req.body, "{\"x\":1}");
                assert_eq!(req.header("host"), Some("x"));
                assert_eq!(req.header("HOST"), Some("x"), "lookup is case-insensitive");
                assert_eq!(req.header("last-event-id"), None);
                respond(stream, 202, "application/json", "{\"ok\":true}").unwrap();
            },
            "POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"x\":1}",
        );
        assert_eq!(response.status, 202);
        assert_eq!(response.body, "{\"ok\":true}");
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        // One header line far past MAX_HEAD_BYTES, never newline-terminated:
        // the server must give up at the cap instead of buffering it all.
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nX-Pad: ")
            .unwrap();
        let pad = vec![b'a'; 2 * MAX_HEAD_BYTES];
        let _ = client.write_all(&pad); // the server may close mid-write
        let result = server.join().unwrap();
        assert!(
            matches!(result, Err(ServeError::Protocol(ref m)) if m.contains("head")),
            "expected a head-limit protocol error, got {result:?}"
        );
    }

    #[test]
    fn chunked_round_trip() {
        let response = exchange(
            |stream, _req| {
                respond_chunked(stream, 200, "application/jsonl", |write| {
                    write(b"{\"line\":1}\n")?;
                    write(b"")?; // empty chunks are skipped, not terminators
                    write(b"{\"line\":2}\n")
                })
                .unwrap();
            },
            "GET /jobs/job-000001/events HTTP/1.1\r\n\r\n",
        );
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"line\":1}\n{\"line\":2}\n");
    }
}
