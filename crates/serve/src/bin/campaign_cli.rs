//! `radcrit-campaign` — run injection campaigns directly or against the
//! campaign daemon.
//!
//! ```text
//! radcrit-campaign [run] --device k40|phi --kernel dgemm|lavamd|hotspot|clamr ...
//! radcrit-campaign obs-report EVENTS_FILE
//! radcrit-campaign obs-report flamegraph PROFILE_JSON
//! radcrit-campaign serve   [--addr A] [--data-dir D] [--pool N] [--queue-depth N] [--cache-mb N]
//! radcrit-campaign submit  --addr A <campaign flags> [--priority P] [--wait [--timeout SECS]]
//! radcrit-campaign status  --addr A JOB
//! radcrit-campaign fetch   --addr A JOB [--out FILE]
//! radcrit-campaign cancel  --addr A JOB
//! radcrit-campaign shutdown --addr A
//! radcrit-campaign coordinate --addr A --data-dir D --worker W [--worker W ...]
//!     [--shards K] <campaign flags> [--summary-out FILE] [--trace-out FILE]
//! radcrit-campaign register --addr COORD WORKER
//! radcrit-campaign shards  --addr COORD
//! ```
//!
//! The default (no subcommand / `run`) executes one campaign in-process
//! and prints the summary; `serve` starts the long-running daemon, and
//! the client subcommands talk to it over HTTP. Both paths build their
//! campaign through the same [`JobSpec::campaign`] constructor, so a
//! daemon job and a direct run of the same spec produce bit-for-bit
//! identical summaries (`--summary-out` writes the canonical JSON form
//! for comparison). `coordinate` federates one campaign across several
//! `serve` daemons: it shards the injection range, dispatches shard
//! jobs, merges every shard's live stream, survives worker death by
//! re-dispatching the remaining range, and writes the same canonical
//! summary a single-node run of the spec would.
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | runtime failure (engine error, I/O, HTTP error from the daemon) |
//! | 2 | configuration / usage error (bad flags, invalid spec) |
//! | 130 | interrupted (e.g. `--wait` timed out before the job finished) |

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Duration;

use radcrit_campaign::log::{write_csv, write_log};
use radcrit_campaign::summary::render_run;
use radcrit_campaign::{HardeningAnalysis, KernelSpec, RunOptions};
use radcrit_core::filter::ToleranceFilter;
use radcrit_core::locality::SpatialClass;
use radcrit_obs::ProvenanceBreakdown;
use radcrit_serve::coord::{self, CoordinatorConfig};
use radcrit_serve::daemon::{self, DaemonConfig};
use radcrit_serve::{Client, DeviceKind, JobSpec, Priority, ServeError};

const USAGE: &str =
    "usage: radcrit-campaign [run] --device k40|phi --kernel dgemm|lavamd|hotspot|clamr
       [--scale 8] [--n 128] [--grid 7] [--particles 16]
       [--rows 128] [--cols 128] [--steps 200] [--iterations 128]
       [--injections 200] [--seed 2017] [--tolerance 2.0]
       [--workers 0] [--csv out.csv] [--log out.log] [--hardening]
       [--deadline-ms 120000] [--checkpoint run.jsonl] [--resume]
       [--progress 5] [--summary-out summary.json]
       [--metrics-out metrics.json] [--events-out events.jsonl]
       [--events-sample 1] [--snapshot-stride 0] [--full-execution]
       [--no-batch] [--scalar]
       [--trace-out trace.json] [--profile-out profile.json]
   radcrit-campaign obs-report EVENTS_FILE
   radcrit-campaign obs-report flamegraph PROFILE_JSON
   radcrit-campaign serve [--addr 127.0.0.1:7117] [--data-dir DIR]
       [--pool 2] [--queue-depth 64] [--cache-mb 64] [--full-execution]
   radcrit-campaign submit --addr HOST:PORT <campaign flags>
       [--priority high|normal|low] [--wait] [--timeout 600]
   radcrit-campaign status --addr HOST:PORT JOB
   radcrit-campaign fetch --addr HOST:PORT JOB [--out FILE]
   radcrit-campaign cancel --addr HOST:PORT JOB
   radcrit-campaign shutdown --addr HOST:PORT
   radcrit-campaign coordinate --addr 127.0.0.1:7118 --data-dir DIR
       --worker HOST:PORT [--worker HOST:PORT ...] [--shards K]
       <campaign flags> [--summary-out FILE] [--trace-out FILE]
       [--heartbeat-ms 500] [--heartbeat-timeout-ms 5000]
   radcrit-campaign register --addr COORD_HOST:PORT WORKER_HOST:PORT
   radcrit-campaign shards --addr COORD_HOST:PORT

exit codes: 0 success | 1 runtime failure | 2 config/usage error
            130 interrupted (--wait timeout)";

/// Maps error kinds to the documented exit codes.
fn exit_code(e: &ServeError) -> i32 {
    match e {
        ServeError::Config(_) => 2,
        ServeError::Interrupted(_) => 130,
        _ => 1,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        exit(0);
    }
    let outcome = match argv.first().map(String::as_str) {
        Some("obs-report") => obs_report(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("submit") => cmd_submit(&argv[1..]),
        Some("status") => cmd_status(&argv[1..]),
        Some("fetch") => cmd_fetch(&argv[1..]),
        Some("cancel") => cmd_cancel(&argv[1..]),
        Some("shutdown") => cmd_shutdown(&argv[1..]),
        Some("coordinate") => cmd_coordinate(&argv[1..]),
        Some("register") => cmd_register(&argv[1..]),
        Some("shards") => cmd_shards(&argv[1..]),
        Some("run") => cmd_run(&argv[1..]),
        _ => cmd_run(&argv),
    };
    if let Err(e) = outcome {
        eprintln!("radcrit-campaign: {e}");
        if matches!(e, ServeError::Config(_)) {
            eprintln!("{USAGE}");
        }
        exit(exit_code(&e));
    }
}

// ---------------------------------------------------------------------
// Flag parsing
// ---------------------------------------------------------------------

/// Campaign-shaping flags shared by `run` and `submit`.
#[derive(Debug)]
struct CampaignArgs {
    device: Option<String>,
    scale: usize,
    kernel: Option<String>,
    n: usize,
    grid: usize,
    particles: usize,
    rows: usize,
    cols: usize,
    steps: usize,
    iterations: usize,
    injections: usize,
    seed: u64,
    tolerance: Option<f64>,
    workers: usize,
    deadline_ms: Option<u64>,
    events_sample: u64,
    scalar: bool,
}

impl Default for CampaignArgs {
    fn default() -> Self {
        CampaignArgs {
            device: None,
            scale: 8,
            kernel: None,
            n: 128,
            grid: 7,
            particles: 16,
            rows: 128,
            cols: 128,
            steps: 200,
            iterations: 128,
            injections: 200,
            seed: 2017,
            tolerance: None,
            workers: 0,
            deadline_ms: None,
            events_sample: 1,
            scalar: false,
        }
    }
}

fn config(m: impl Into<String>) -> ServeError {
    ServeError::Config(m.into())
}

/// Pulls the value of flag `flag` out of the iterator.
fn value(flag: &str, it: &mut dyn Iterator<Item = String>) -> Result<String, ServeError> {
    it.next()
        .ok_or_else(|| config(format!("missing value for {flag}")))
}

/// Parses the value of flag `flag`.
fn parsed<T: std::str::FromStr>(
    flag: &str,
    it: &mut dyn Iterator<Item = String>,
) -> Result<T, ServeError> {
    value(flag, it)?
        .parse()
        .map_err(|_| config(format!("bad value for {flag}")))
}

impl CampaignArgs {
    /// Consumes one flag if it belongs to the campaign-shaping set.
    fn accept(
        &mut self,
        flag: &str,
        it: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, ServeError> {
        match flag {
            "--device" => self.device = Some(value(flag, it)?),
            "--scale" => self.scale = parsed(flag, it)?,
            "--kernel" => self.kernel = Some(value(flag, it)?),
            "--n" => self.n = parsed(flag, it)?,
            "--grid" => self.grid = parsed(flag, it)?,
            "--particles" => self.particles = parsed(flag, it)?,
            "--rows" => self.rows = parsed(flag, it)?,
            "--cols" => self.cols = parsed(flag, it)?,
            "--steps" => self.steps = parsed(flag, it)?,
            "--iterations" => self.iterations = parsed(flag, it)?,
            "--injections" => self.injections = parsed(flag, it)?,
            "--seed" => self.seed = parsed(flag, it)?,
            "--tolerance" => self.tolerance = Some(parsed(flag, it)?),
            "--workers" => self.workers = parsed(flag, it)?,
            "--deadline-ms" => self.deadline_ms = Some(parsed(flag, it)?),
            "--events-sample" => self.events_sample = parsed(flag, it)?,
            "--scalar" => self.scalar = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds the wire spec these flags describe.
    fn spec(&self) -> Result<JobSpec, ServeError> {
        let device = DeviceKind::from_wire(
            self.device
                .as_deref()
                .ok_or_else(|| config("--device is required (k40 or phi)"))?,
        )?;
        let kernel = match self.kernel.as_deref() {
            Some("dgemm") => KernelSpec::Dgemm { n: self.n },
            Some("lavamd") => KernelSpec::LavaMd {
                grid: self.grid,
                particles: self.particles,
            },
            Some("hotspot") => KernelSpec::HotSpot {
                rows: self.rows,
                cols: self.cols,
                iterations: self.iterations,
            },
            Some("clamr") => KernelSpec::Shallow {
                rows: self.rows,
                cols: self.cols,
                steps: self.steps,
            },
            Some(other) => return Err(config(format!("unknown kernel {other:?}"))),
            None => {
                return Err(config(
                    "--kernel is required (dgemm, lavamd, hotspot or clamr)",
                ))
            }
        };
        let spec = JobSpec {
            device,
            scale: self.scale,
            kernel,
            injections: self.injections,
            seed: self.seed,
            tolerance_pct: self.tolerance,
            workers: self.workers,
            deadline_ms: self.deadline_ms,
            priority: Priority::Normal,
            events_sample: self.events_sample,
            shard: None,
            force_scalar: self.scalar,
            trace: None,
        };
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------
// run (direct, in-process)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RunArgs {
    campaign: CampaignArgs,
    csv: Option<String>,
    log: Option<String>,
    hardening: bool,
    checkpoint: Option<PathBuf>,
    resume: bool,
    progress: Option<f64>,
    summary_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    events_out: Option<PathBuf>,
    snapshot_stride: usize,
    full_execution: bool,
    no_batch: bool,
    trace_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
}

fn cmd_run(argv: &[String]) -> Result<(), ServeError> {
    let mut a = RunArgs::default();
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        if a.campaign.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--csv" => a.csv = Some(value(&flag, &mut it)?),
            "--log" => a.log = Some(value(&flag, &mut it)?),
            "--hardening" => a.hardening = true,
            "--checkpoint" => a.checkpoint = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--resume" => a.resume = true,
            "--progress" => a.progress = Some(parsed(&flag, &mut it)?),
            "--summary-out" => a.summary_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--metrics-out" => a.metrics_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--events-out" => a.events_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--snapshot-stride" => a.snapshot_stride = parsed(&flag, &mut it)?,
            "--full-execution" => a.full_execution = true,
            "--no-batch" => a.no_batch = true,
            "--trace-out" => a.trace_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--profile-out" => a.profile_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            other => return Err(config(format!("unknown flag {other}"))),
        }
    }
    if a.resume && a.checkpoint.is_none() {
        return Err(config("--resume needs --checkpoint FILE"));
    }
    if a.progress.is_some_and(|p| p <= 0.0 || !p.is_finite()) {
        return Err(config("--progress must be a positive number of seconds"));
    }

    let spec = a.campaign.spec()?;
    let campaign = spec.campaign()?;
    let isa = if spec.force_scalar {
        radcrit_core::exec::Isa::Scalar
    } else {
        radcrit_core::exec::active()
    };
    eprintln!(
        "running {} x {} on {} ({} injections, seed {}, simd isa {isa}) ...",
        spec.kernel.name(),
        spec.kernel.input_label(),
        campaign.device.kind(),
        spec.injections,
        spec.seed
    );

    let options = RunOptions {
        checkpoint: a.checkpoint,
        resume: a.resume,
        progress: a.progress.map(Duration::from_secs_f64),
        metrics_out: a.metrics_out.clone(),
        events_out: a.events_out.clone(),
        events_sample: spec.events_sample,
        snapshot_stride: a.snapshot_stride,
        full_execution: a.full_execution,
        no_batch: a.no_batch,
        force_scalar: spec.force_scalar,
        trace_out: a.trace_out.clone(),
        profile_out: a.profile_out.clone(),
        ..RunOptions::default()
    };
    let result = campaign
        .run_with(&options)
        .map_err(|e| ServeError::Io(format!("campaign failed: {e}")))?;

    let s = result.summary();
    eprintln!("{}", render_run(&s, &result.telemetry));
    println!(
        "outcomes: {} SDC ({} critical at >{}%), {} masked, {} crash, {} hang",
        s.sdc,
        s.critical_sdc,
        spec.tolerance_pct
            .unwrap_or(ToleranceFilter::PAPER_THRESHOLD_PCT),
        s.masked,
        s.crash,
        s.hang
    );
    println!(
        "SDC:(crash+hang) ratio: {:.2} | filtered out: {:.0}% | sigma {:.3e} a.u.",
        s.sdc_to_crash_hang_ratio(),
        s.filtered_out_fraction() * 100.0,
        s.sigma_total
    );
    println!("FIT (a.u., scaled 1e-3):");
    for (label, b) in [("All", &s.fit_all), (">tol", &s.fit_filtered)] {
        let classes = SpatialClass::PLOTTED
            .iter()
            .map(|&c| format!("{c}:{:.2}", b.rate(c).value() * 1e-3))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {label:>4}: total {:.2} | {classes}",
            b.total().value() * 1e-3
        );
    }
    let (lo, hi) = s.fit_all_ci95();
    println!(
        "  95% CI on All total: [{:.2}, {:.2}]",
        lo * 1e-3,
        hi * 1e-3
    );

    if a.hardening {
        let analysis = HardeningAnalysis::of(&result);
        println!("hardening priority (site: critical SDCs, AVF):");
        for (site, impact) in analysis.ranked_sites() {
            println!(
                "  {site:>16}: {:>4} critical, AVF {}",
                impact.critical,
                analysis
                    .avf(site)
                    .map_or_else(|| "-".into(), |v| format!("{v:.2}"))
            );
        }
    }

    if let Some(path) = &a.summary_out {
        write_text(path, &format!("{}\n", s.to_json()))?;
        eprintln!("summary JSON written to {}", path.display());
    }
    if let Some(path) = &a.log {
        let f = create(path.as_ref())?;
        write_log(&result, BufWriter::new(f))
            .map_err(|e| ServeError::Io(format!("log write {path}: {e}")))?;
        eprintln!("log written to {path}");
    }
    if let Some(path) = &a.csv {
        let f = create(path.as_ref())?;
        write_csv(&result, BufWriter::new(f))
            .map_err(|e| ServeError::Io(format!("csv write {path}: {e}")))?;
        eprintln!("csv written to {path}");
    }
    if let Some(path) = &a.metrics_out {
        eprintln!(
            "metrics written to {} (Prometheus text: {})",
            path.display(),
            path.with_extension("prom").display()
        );
    }
    if let Some(path) = &a.events_out {
        eprintln!(
            "events written to {} (aggregate with: radcrit-campaign obs-report {})",
            path.display(),
            path.display()
        );
    }
    if let Some(path) = &a.trace_out {
        eprintln!(
            "Chrome trace written to {} (load in chrome://tracing or ui.perfetto.dev)",
            path.display()
        );
    }
    if let Some(path) = &a.profile_out {
        eprintln!(
            "phase profile written to {} (flamegraph: radcrit-campaign obs-report flamegraph {})",
            path.display(),
            path.display()
        );
    }
    Ok(())
}

fn create(path: &Path) -> Result<File, ServeError> {
    File::create(path).map_err(|e| ServeError::Io(format!("cannot create {}: {e}", path.display())))
}

fn write_text(path: &Path, text: &str) -> Result<(), ServeError> {
    std::fs::write(path, text).map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))
}

// ---------------------------------------------------------------------
// obs-report
// ---------------------------------------------------------------------

/// `obs-report EVENTS_FILE`: aggregate an event stream's provenance
/// records into the per-site breakdown table.
///
/// `obs-report flamegraph PROFILE_JSON`: print a phase profile in
/// Brendan-Gregg collapsed-stack form (`a;b;c self_us`) for
/// `flamegraph.pl` / speedscope / inferno.
fn obs_report(args: &[String]) -> Result<(), ServeError> {
    if args.first().map(String::as_str) == Some("flamegraph") {
        let [_, path] = args else {
            return Err(config(
                "obs-report flamegraph needs exactly one PROFILE_JSON argument",
            ));
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::Io(format!("obs-report flamegraph {path}: {e}")))?;
        let tree = radcrit_obs::ProfileTree::from_json(&text)
            .map_err(|e| ServeError::Io(format!("obs-report flamegraph {path}: {e}")))?;
        if tree.is_empty() {
            return Err(ServeError::Io(format!("no profiled phases in {path}")));
        }
        print!("{}", tree.to_collapsed());
        return Ok(());
    }
    let [path] = args else {
        return Err(config("obs-report needs exactly one EVENTS_FILE argument"));
    };
    let b = ProvenanceBreakdown::from_events_path(Path::new(path))
        .map_err(|e| ServeError::Io(format!("obs-report: {e}")))?;
    if b.sites().is_empty() {
        return Err(ServeError::Io(format!(
            "no provenance events found in {path}"
        )));
    }
    print!("{}", b.render());
    let totals = b
        .class_totals()
        .iter()
        .map(|(class, n)| format!("{class}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("spatial-class totals: {totals}");
    Ok(())
}

// ---------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------

fn cmd_serve(argv: &[String]) -> Result<(), ServeError> {
    let mut cfg = DaemonConfig {
        addr: "127.0.0.1:7117".to_owned(),
        ..DaemonConfig::default()
    };
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => cfg.addr = value(&flag, &mut it)?,
            "--data-dir" => cfg.data_dir = PathBuf::from(value(&flag, &mut it)?),
            "--pool" => cfg.pool = parsed(&flag, &mut it)?,
            "--queue-depth" => cfg.queue_depth = parsed(&flag, &mut it)?,
            "--cache-mb" => {
                let mb: usize = parsed(&flag, &mut it)?;
                cfg.cache_bytes = mb * 1024 * 1024;
            }
            "--full-execution" => cfg.full_execution = true,
            other => return Err(config(format!("unknown flag {other}"))),
        }
    }
    if cfg.pool == 0 {
        return Err(config("--pool must be >= 1"));
    }
    let handle = daemon::start(cfg.clone())?;
    eprintln!(
        "radcrit-serve listening on {} (pool {}, queue depth {}, cache {} MiB, data in {})",
        handle.addr(),
        cfg.pool,
        cfg.queue_depth,
        cfg.cache_bytes / (1024 * 1024),
        cfg.data_dir.display()
    );
    eprintln!(
        "stop with: radcrit-campaign shutdown --addr {}",
        handle.addr()
    );
    handle.join();
    eprintln!("radcrit-serve drained, exiting");
    Ok(())
}

// ---------------------------------------------------------------------
// client subcommands
// ---------------------------------------------------------------------

/// An extra-flag handler: given a flag and the remaining argument
/// stream, consumes its value and reports whether it recognised the flag.
type ExtraFlag<'f> = &'f mut dyn FnMut(&str, &mut dyn Iterator<Item = String>) -> FlagResult;
type FlagResult = Result<bool, ServeError>;

/// Parses `--addr HOST:PORT` plus at most one positional (the job id).
fn client_args(
    argv: &[String],
    extra: ExtraFlag<'_>,
    positional_name: Option<&str>,
) -> Result<(Client, Option<String>), ServeError> {
    let mut addr: Option<String> = None;
    let mut positional: Option<String> = None;
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = Some(value(&flag, &mut it)?),
            other if other.starts_with("--") => {
                if !extra(other, &mut it)? {
                    return Err(config(format!("unknown flag {other}")));
                }
            }
            other => {
                if positional_name.is_none() || positional.is_some() {
                    return Err(config(format!("unexpected argument {other:?}")));
                }
                positional = Some(other.to_owned());
            }
        }
    }
    let addr = addr.ok_or_else(|| config("--addr HOST:PORT is required"))?;
    if let Some(name) = positional_name {
        if positional.is_none() {
            return Err(config(format!("missing {name} argument")));
        }
    }
    Ok((Client::new(addr), positional))
}

fn cmd_submit(argv: &[String]) -> Result<(), ServeError> {
    let mut campaign = CampaignArgs::default();
    let mut priority = Priority::Normal;
    let mut wait = false;
    let mut timeout_s = 600.0f64;
    let (client, _) = client_args(
        argv,
        &mut |flag, it| {
            if campaign.accept(flag, it)? {
                return Ok(true);
            }
            match flag {
                "--priority" => priority = Priority::from_wire(&value(flag, it)?)?,
                "--wait" => wait = true,
                "--timeout" => timeout_s = parsed(flag, it)?,
                _ => return Ok(false),
            }
            Ok(true)
        },
        None,
    )?;
    let mut spec = campaign.spec()?;
    spec.priority = priority;
    let id = client.submit(&spec)?;
    eprintln!("submitted {id} to {}", client.addr());
    if wait {
        let status = client.wait(
            &id,
            Duration::from_millis(200),
            Duration::from_secs_f64(timeout_s),
        )?;
        match status.state.as_str() {
            "done" => {
                print!("{}", client.result(&id)?);
                Ok(())
            }
            "cancelled" => Err(ServeError::Interrupted(format!("job {id} was cancelled"))),
            _ => Err(ServeError::Io(format!(
                "job {id} failed: {}",
                status.error.unwrap_or_else(|| "unknown error".into())
            ))),
        }
    } else {
        println!("{id}");
        Ok(())
    }
}

fn cmd_status(argv: &[String]) -> Result<(), ServeError> {
    let (client, id) = client_args(argv, &mut |_, _| Ok(false), Some("JOB"))?;
    let id = id.expect("positional enforced");
    let status = client.status(&id)?;
    match status.error {
        Some(error) => println!("{id}: {} ({error})", status.state),
        None => println!("{id}: {}", status.state),
    }
    Ok(())
}

fn cmd_fetch(argv: &[String]) -> Result<(), ServeError> {
    let mut out: Option<PathBuf> = None;
    let (client, id) = client_args(
        argv,
        &mut |flag, it| match flag {
            "--out" => {
                out = Some(PathBuf::from(value(flag, it)?));
                Ok(true)
            }
            _ => Ok(false),
        },
        Some("JOB"),
    )?;
    let id = id.expect("positional enforced");
    let body = client.result(&id)?;
    match out {
        Some(path) => {
            write_text(&path, &body)?;
            eprintln!("result written to {}", path.display());
        }
        None => {
            print!("{body}");
            std::io::stdout().flush().ok();
        }
    }
    Ok(())
}

fn cmd_cancel(argv: &[String]) -> Result<(), ServeError> {
    let (client, id) = client_args(argv, &mut |_, _| Ok(false), Some("JOB"))?;
    let id = id.expect("positional enforced");
    let state = client.cancel(&id)?;
    println!("{id}: {state}");
    Ok(())
}

fn cmd_shutdown(argv: &[String]) -> Result<(), ServeError> {
    let (client, _) = client_args(argv, &mut |_, _| Ok(false), None)?;
    client.shutdown()?;
    eprintln!("daemon at {} is draining", client.addr());
    Ok(())
}

// ---------------------------------------------------------------------
// coordinator subcommands
// ---------------------------------------------------------------------

fn cmd_coordinate(argv: &[String]) -> Result<(), ServeError> {
    let mut campaign = CampaignArgs::default();
    let mut addr = "127.0.0.1:7118".to_owned();
    let mut data_dir: Option<PathBuf> = None;
    let mut workers: Vec<String> = Vec::new();
    let mut shards = 0usize;
    let mut summary_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut heartbeat_ms = 500u64;
    let mut heartbeat_timeout_ms = 5000u64;
    let mut it = argv.iter().cloned();
    while let Some(flag) = it.next() {
        if campaign.accept(&flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--addr" => addr = value(&flag, &mut it)?,
            "--data-dir" => data_dir = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--worker" => workers.push(value(&flag, &mut it)?),
            "--shards" => shards = parsed(&flag, &mut it)?,
            "--summary-out" => summary_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--trace-out" => trace_out = Some(PathBuf::from(value(&flag, &mut it)?)),
            "--heartbeat-ms" => heartbeat_ms = parsed(&flag, &mut it)?,
            "--heartbeat-timeout-ms" => heartbeat_timeout_ms = parsed(&flag, &mut it)?,
            other => return Err(config(format!("unknown flag {other}"))),
        }
    }
    let data_dir = data_dir.ok_or_else(|| config("--data-dir DIR is required"))?;
    if workers.is_empty() && shards == 0 {
        return Err(config(
            "coordinate needs at least one --worker (or --shards K plus later POST /register)",
        ));
    }
    if heartbeat_ms == 0 || heartbeat_timeout_ms == 0 {
        return Err(config("heartbeat periods must be > 0 ms"));
    }
    let spec = campaign.spec()?;
    let cfg = CoordinatorConfig {
        addr,
        data_dir,
        spec,
        shards,
        workers,
        heartbeat_interval: Duration::from_millis(heartbeat_ms),
        heartbeat_timeout: Duration::from_millis(heartbeat_timeout_ms),
        summary_out: summary_out.clone(),
        trace_out: trace_out.clone(),
    };
    let handle = coord::start(cfg)?;
    eprintln!(
        "radcrit-coordinator listening on {} (register workers with: \
         radcrit-campaign register --addr {} HOST:PORT)",
        handle.addr(),
        handle.addr()
    );
    // Run to completion: the coordinator exits once the merged campaign
    // is done (the HTTP API stays up until then).
    let forever = Duration::from_secs(u64::MAX / 4);
    handle.wait_done(forever)?;
    let client = Client::new(handle.addr().to_string());
    let result = client.result("merged")?;
    handle.shutdown()?;
    print!("{result}");
    std::io::stdout().flush().ok();
    if let Some(path) = summary_out {
        eprintln!("merged summary written to {}", path.display());
    }
    if let Some(path) = trace_out {
        eprintln!("fleet trace written to {}", path.display());
    }
    Ok(())
}

fn cmd_register(argv: &[String]) -> Result<(), ServeError> {
    let (client, worker) = client_args(argv, &mut |_, _| Ok(false), Some("WORKER"))?;
    let worker = worker.expect("positional enforced");
    let body = client.register_worker(&worker)?;
    println!("{body}");
    Ok(())
}

fn cmd_shards(argv: &[String]) -> Result<(), ServeError> {
    let (client, _) = client_args(argv, &mut |_, _| Ok(false), None)?;
    println!("{}", client.shards()?);
    Ok(())
}
