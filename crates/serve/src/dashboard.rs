//! The self-contained live dashboard served at `GET /dashboard`.
//!
//! One static HTML page, no external assets, no build step: the markup,
//! styling and script below are embedded in the daemon binary and talk
//! only to the daemon's own JSON/SSE endpoints. The page
//!
//! * picks a job from `?job=<id>` (falling back to the newest job in
//!   `GET /jobs`),
//! * tails `GET /jobs/:id/stream` with `EventSource` — the browser
//!   resumes via `Last-Event-ID` automatically after a daemon restart —
//!   and counts outcomes per event kind as they arrive,
//! * polls `GET /jobs/:id/analytics` for the server-side
//!   [`CriticalityAggregator`](radcrit_obs::CriticalityAggregator) fold:
//!   converging FIT with its Poisson 95 % CI, outcome bars, and the
//!   spatial-class breakdown,
//! * polls `GET /alerts` for the health-rules panel (firing rules in
//!   red with their message, quiet rules collapsed to one line),
//! * polls `GET /metrics` for the batching-efficiency row (bucket
//!   restores vs forks, dead-strike early exits) and `GET /profile`
//!   for the daemon-wide hot-phases panel (top self-time phases of the
//!   merged hierarchical profile),
//! * stops cleanly when the stream sends its `end` frame and the fold
//!   reports `finished`.

/// The dashboard page body (UTF-8 HTML).
pub const DASHBOARD_HTML: &str = r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>radcrit live analytics</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
         background: #10141a; color: #d6dde6; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  code, .mono { font-family: ui-monospace, monospace; }
  .muted { color: #7b8794; }
  .bar { display: flex; height: 1.4rem; border-radius: 4px; overflow: hidden;
         background: #1b222c; margin: .4rem 0 .2rem; }
  .bar div { height: 100%; transition: width .3s; }
  .masked { background: #3e5c76; } .sdc { background: #c0392b; }
  .crash { background: #d68910; } .hang { background: #7d3c98; }
  .legend span { margin-right: 1.2rem; }
  .dot { display: inline-block; width: .7rem; height: .7rem; border-radius: 2px;
         margin-right: .35rem; vertical-align: -1px; }
  table { border-collapse: collapse; margin-top: .5rem; }
  td, th { padding: .15rem .9rem .15rem 0; text-align: right; }
  th { color: #7b8794; font-weight: 500; }
  td:first-child, th:first-child { text-align: left; }
  #fit { font-size: 1.6rem; }
  .alert-firing { color: #e74c3c; }
  .alert-critical { font-weight: 600; }
  #log { height: 11rem; overflow-y: auto; background: #0b0e13; padding: .5rem;
         border-radius: 4px; font-size: 12px; white-space: pre; }
</style>
</head>
<body>
<h1>radcrit live analytics <span id="job" class="mono muted"></span></h1>
<p class="muted" id="state">connecting&hellip;</p>

<h2>FIT (arbitrary units)</h2>
<p><span id="fit" class="mono">&ndash;</span>
   <span id="ci" class="mono muted"></span></p>
<p class="muted">filtered (&gt;tolerance): <span id="fitf" class="mono">&ndash;</span></p>

<h2>Outcomes <span id="counts" class="mono muted"></span></h2>
<div class="bar" id="bars"></div>
<p class="legend muted">
  <span><i class="dot masked"></i>masked</span>
  <span><i class="dot sdc"></i>SDC</span>
  <span><i class="dot crash"></i>crash (DUE)</span>
  <span><i class="dot hang"></i>hang (DUE)</span>
</p>

<h2>Spatial classes (SDC)</h2>
<table><thead><tr><th>class</th><th>all</th><th>&gt;tolerance</th></tr></thead>
<tbody id="classes"></tbody></table>

<h2>Alerts</h2>
<p class="mono" id="alerts"><span class="muted">&ndash;</span></p>

<h2>Batching</h2>
<p class="mono muted" id="batching">&ndash;</p>

<h2>Hot phases <span class="muted">(self time, daemon-wide)</span></h2>
<table><thead><tr><th>phase</th><th>self</th><th>calls</th></tr></thead>
<tbody id="phases"></tbody></table>

<h2>Event tail</h2>
<div id="log" class="mono"></div>

<script>
"use strict";
const $ = id => document.getElementById(id);
const sci = v => Number(v).toExponential(3);
let job = new URLSearchParams(location.search).get("job");
let es = null, finished = false;

async function newestJob() {
  const r = await fetch("/jobs");
  const jobs = (await r.json()).jobs || [];
  return jobs.length ? jobs[jobs.length - 1].job : null;
}

function tail(line) {
  const log = $("log");
  log.textContent += line + "\n";
  while (log.textContent.length > 40000)
    log.textContent = log.textContent.slice(log.textContent.indexOf("\n") + 1);
  log.scrollTop = log.scrollHeight;
}

function render(a) {
  const total = a.masked + a.sdc + a.crash + a.hang || 1;
  $("bars").innerHTML = ["masked", "sdc", "crash", "hang"]
    .map(k => `<div class="${k}" style="width:${100 * a[k] / total}%"></div>`)
    .join("");
  $("counts").textContent =
    `masked ${a.masked} · sdc ${a.sdc} (crit ${a.critical_sdc}) · ` +
    `crash ${a.crash} · hang ${a.hang} · ${a.injections}/${a.declared_injections} folded`;
  $("fit").textContent = sci(a.fit_all_total);
  $("ci").textContent = `95% CI [${sci(a.fit_ci95[0])}, ${sci(a.fit_ci95[1])}]`;
  $("fitf").textContent = sci(a.fit_filtered_total);
  const classes = new Set([...Object.keys(a.fit_all), ...Object.keys(a.fit_filtered)]);
  $("classes").innerHTML = [...classes].map(c =>
    `<tr><td>${c}</td><td>${sci(a.fit_all[c] || 0)}</td>` +
    `<td>${sci(a.fit_filtered[c] || 0)}</td></tr>`).join("");
  if (a.finished && !finished) {
    finished = true;
    $("state").textContent =
      `finished: ${a.kernel} × ${a.input} on ${a.device}, ${a.injections} injections`;
  } else if (!finished) {
    $("state").textContent =
      `running: ${a.kernel} × ${a.input} on ${a.device} — ` +
      `${a.injections}/${a.declared_injections} injections folded`;
  }
}

// Prometheus text → {name: value} for the unlabeled series we chart.
function parseProm(text) {
  const vals = {};
  for (const line of text.split("\n")) {
    if (!line || line.startsWith('#')) continue;
    const sp = line.lastIndexOf(" ");
    if (sp > 0 && !line.includes("{")) vals[line.slice(0, sp)] = Number(line.slice(sp + 1));
  }
  return vals;
}

const us = ns => (ns / 1000).toLocaleString("en-US", {maximumFractionDigits: 0});

async function pollDaemon() {
  try {
    const m = parseProm(await (await fetch("/metrics")).text());
    const restores = m.radcrit_bucket_restores_total || 0;
    const forks = m.radcrit_bucket_forks_total || 0;
    const dead = m.radcrit_run_dead_strike_exits_total || 0;
    $("batching").textContent =
      `${restores} bucket restores · ${forks} forks ` +
      `(${restores ? (forks / restores).toFixed(1) : "–"} forks/restore) · ` +
      `${dead} dead-strike early exits`;
  } catch (e) { /* daemon restarting */ }
  try {
    const a = await (await fetch("/alerts")).json();
    const rules = a.alerts || [];
    const firing = rules.filter(r => r.state === "firing");
    $("alerts").innerHTML = firing.length
      ? firing.map(r =>
          `<span class="alert-firing${r.severity === "critical" ? " alert-critical" : ""}">` +
          `${r.rule}: ${r.message}</span>`).join("<br>")
      : `<span class="muted">all ${rules.length} rules quiet</span>`;
  } catch (e) { /* daemon restarting */ }
  try {
    const p = await (await fetch("/profile")).json();
    $("phases").innerHTML = (p.hot || []).map(h =>
      `<tr><td>${h.phase}</td><td>${us(h.self_ns)} µs</td><td>${h.count}</td></tr>`
    ).join("") || `<tr><td class="muted" colspan="3">no profiles yet</td></tr>`;
  } catch (e) { /* daemon restarting */ }
  if (!finished) setTimeout(pollDaemon, 5000);
}

async function poll() {
  try {
    const r = await fetch(`/jobs/${job}/analytics`);
    if (r.ok) render(await r.json());
  } catch (e) { /* daemon restarting: EventSource will reconnect */ }
  if (!finished) setTimeout(poll, 2000);
}

async function main() {
  job = job || await newestJob();
  if (!job) { $("state").textContent = "no jobs yet — submit one, then reload"; return; }
  $("job").textContent = job;
  es = new EventSource(`/jobs/${job}/stream`);
  es.onmessage = ev => tail(`#${ev.lastEventId} ${ev.data}`);
  es.addEventListener("end", () => { es.close(); poll(); });
  poll();
  pollDaemon();
}
main();
</script>
</body>
</html>
"#;
