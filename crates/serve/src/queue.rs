//! The daemon's job queue: priorities, bounded depth, cancellation-aware
//! blocking pop.
//!
//! The queue holds *job ids* only — specs, state and artifacts live with
//! the daemon — and is deliberately small: a `Mutex` + `Condvar` around a
//! sorted ready list. Depth is bounded at push time so an overloaded
//! daemon answers `429` instead of buffering unboundedly, and closing the
//! queue wakes every blocked worker for shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::spec::Priority;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at its configured depth (backpressure: HTTP 429).
    Full,
    /// The queue is closed (drain in progress: HTTP 503).
    Closed,
}

#[derive(Debug)]
struct State {
    /// Ready jobs as `(priority, fifo sequence, id)`.
    ready: VecDeque<(Priority, u64, String)>,
    seq: u64,
    closed: bool,
}

/// A bounded, priority-ordered, close-aware job queue.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<State>,
    available: Condvar,
    depth: usize,
}

impl JobQueue {
    /// Creates a queue refusing pushes beyond `depth` waiting jobs.
    pub fn new(depth: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                ready: VecDeque::new(),
                seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Enqueues `id` at `priority`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at depth, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn push(&self, id: &str, priority: Priority) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.ready.len() >= self.depth {
            return Err(PushError::Full);
        }
        let seq = s.seq;
        s.seq += 1;
        s.ready.push_back((priority, seq, id.to_owned()));
        self.available.notify_one();
        Ok(())
    }

    /// Enqueues `id` at `priority`, ignoring the depth bound.
    ///
    /// Only for journal replay at daemon start: the previous daemon may
    /// have died with `depth` jobs queued *plus* one per worker running
    /// (or the restart may use a smaller `--queue-depth`), so the number
    /// of legitimately in-flight jobs can exceed the bound. The bound
    /// exists for backpressure on *new* submissions; already-accepted
    /// jobs must never be refused on resume.
    pub fn push_unbounded(&self, id: &str, priority: Priority) {
        let mut s = self.state.lock().expect("queue lock");
        let seq = s.seq;
        s.seq += 1;
        s.ready.push_back((priority, seq, id.to_owned()));
        self.available.notify_one();
    }

    /// Blocks until a job is ready (highest priority first, FIFO within
    /// a priority) or the queue is closed *and* empty (`None`).
    pub fn pop(&self) -> Option<String> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(best) = s
                .ready
                .iter()
                .enumerate()
                .min_by_key(|(_, (p, seq, _))| (*p, *seq))
                .map(|(i, _)| i)
            {
                return s.ready.remove(best).map(|(_, _, id)| id);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue lock");
        }
    }

    /// Removes a not-yet-started job from the ready list. Returns
    /// whether it was still queued.
    pub fn remove(&self, id: &str) -> bool {
        let mut s = self.state.lock().expect("queue lock");
        let before = s.ready.len();
        s.ready.retain(|(_, _, queued)| queued != id);
        before != s.ready.len()
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").ready.len()
    }

    /// Whether no jobs wait.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pushes fail, blocked pops drain the remaining
    /// jobs and then return `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(8);
        q.push("n1", Priority::Normal).unwrap();
        q.push("l1", Priority::Low).unwrap();
        q.push("h1", Priority::High).unwrap();
        q.push("n2", Priority::Normal).unwrap();
        q.push("h2", Priority::High).unwrap();
        let order: Vec<String> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["h1", "h2", "n1", "n2", "l1"]);
    }

    #[test]
    fn depth_bound_gives_backpressure() {
        let q = JobQueue::new(2);
        q.push("a", Priority::Normal).unwrap();
        q.push("b", Priority::Normal).unwrap();
        assert_eq!(q.push("c", Priority::Normal), Err(PushError::Full));
        q.pop().unwrap();
        q.push("c", Priority::Normal).unwrap();
    }

    #[test]
    fn close_drains_then_unblocks() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        q.push("a", Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.push("b", Priority::Normal), Err(PushError::Closed));
        assert_eq!(q.pop().as_deref(), Some("a"), "drain continues");
        assert_eq!(q.pop(), None, "then wakes empty");

        // A blocked pop is woken by close from another thread.
        let q2 = std::sync::Arc::new(JobQueue::new(4));
        let waiter = {
            let q2 = std::sync::Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn push_unbounded_ignores_the_depth_bound() {
        let q = JobQueue::new(1);
        q.push("a", Priority::Normal).unwrap();
        assert_eq!(q.push("b", Priority::Normal), Err(PushError::Full));
        // Journal replay must be able to re-enqueue past the bound.
        q.push_unbounded("b", Priority::Normal);
        q.push_unbounded("c", Priority::High);
        assert_eq!(q.len(), 3);
        let order: Vec<String> = (0..3).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["c", "a", "b"]);
    }

    #[test]
    fn remove_cancels_queued_jobs() {
        let q = JobQueue::new(4);
        q.push("a", Priority::Normal).unwrap();
        q.push("b", Priority::Normal).unwrap();
        assert!(q.remove("a"));
        assert!(!q.remove("a"), "already gone");
        assert_eq!(q.pop().as_deref(), Some("b"));
    }
}
