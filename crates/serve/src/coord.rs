//! The campaign coordinator: one campaign, many worker daemons.
//!
//! ## Architecture
//!
//! A coordinator owns exactly one campaign. It splits the injection
//! index range `0..injections` into contiguous shards
//! ([`radcrit_fabric::plan_shards`]), dispatches each shard as a normal
//! [`JobSpec`] (with its `shard` range set) to a registered worker
//! daemon, and tails every shard job's SSE stream back into one
//! [`MergedStream`] — the idempotent per-index fold that backs the
//! coordinator's merged `/analytics`, `/dashboard`, `/metrics` and
//! federated `/jobs/:id/stream` endpoints. Shard placement is
//! rendezvous-hashed over the campaign's golden content address
//! ([`radcrit_fabric::rendezvous_rank`]), so a coordinator restart
//! re-dispatches every shard to the worker that already holds its
//! golden cache entry and checkpoint.
//!
//! ## Fault tolerance
//!
//! Workers are health-checked by heartbeat probes; a worker silent past
//! the timeout (or actively refusing connections) is swept dead and
//! every one of its incomplete shards is re-dispatched to a surviving
//! worker — as a *new* job covering only the shard's remaining index
//! range `[next_uncovered, end)`, because the merged stream already
//! holds the dead worker's streamed prefix. Every shard transition is
//! journaled ([`radcrit_fabric::FabricJournal`]) before it is acted on,
//! mirroring the daemon's job journal, so a killed coordinator restarted
//! on the same data directory resumes tailing and re-dispatching where
//! it left off. Stream idempotence makes all of this safe: re-delivered
//! indices are duplicates, not double counts, and the merged summary
//! stays bit-identical to a single-node run of the same spec.
//!
//! ## Data layout
//!
//! ```text
//! <data_dir>/fabric.jsonl    shard-transition journal
//! <data_dir>/merged.jsonl    merged analytic event skeleton
//! ```

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use radcrit_campaign::golden::GoldenKey;
use radcrit_campaign::CampaignSummary;
use radcrit_fabric::{
    plan_shards, rendezvous_rank, ClockProbe, FabricJournal, IngestOutcome, MergedStream,
    ShardRecord, ShardState, WorkerRegistry,
};
use radcrit_obs::{
    json, AlertConfig, AlertEngine, FleetTrace, HealthSample, MetricsRegistry, MetricsSnapshot,
    TraceContext, TraceRecorder,
};

use crate::client::Client;
use crate::error::ServeError;
use crate::http::{read_request, respond, respond_chunked, Request};
use crate::spec::JobSpec;

/// How a coordinator is launched.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Data directory for the fabric journal and merged stream.
    pub data_dir: PathBuf,
    /// The campaign to federate. Its `shard` must be `None` — the
    /// coordinator owns the split.
    pub spec: JobSpec,
    /// Shard count; `0` means one shard per initially known worker.
    pub shards: usize,
    /// Initially known worker daemon addresses (more can join via
    /// `POST /register`).
    pub workers: Vec<String>,
    /// Heartbeat probe period.
    pub heartbeat_interval: Duration,
    /// Silence past this declares a worker dead.
    pub heartbeat_timeout: Duration,
    /// Where to write the merged canonical summary once complete.
    pub summary_out: Option<PathBuf>,
    /// Where to write the merged fleet-wide Chrome trace once complete
    /// (the same artifact `GET /trace` serves live).
    pub trace_out: Option<PathBuf>,
}

impl CoordinatorConfig {
    /// A default-tuned config for `spec` (heartbeats every 500 ms,
    /// death after 5 s of silence).
    pub fn new(spec: JobSpec) -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("radcrit-fabric-data"),
            spec,
            shards: 0,
            workers: Vec::new(),
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(5),
            summary_out: None,
            trace_out: None,
        }
    }
}

/// Where one shard currently stands.
#[derive(Debug, Clone)]
struct ShardSlot {
    start: u64,
    end: u64,
    /// Worker the shard is currently assigned to (empty until first
    /// dispatch).
    worker: String,
    /// Job id on that worker (empty until dispatched).
    job: String,
    /// Superseded `(worker, job)` assignments, oldest first — the fleet
    /// trace still *tries* to fetch a dead worker's partial timeline,
    /// recording it as skipped when the daemon is gone.
    prior: Vec<(String, String)>,
    state: SlotState,
    /// Dispatch generation; stale tailer endings are recognised by it.
    generation: u64,
    /// Whether a tailer thread is attached to the current dispatch.
    tailing: bool,
    /// Times this shard was dispatched after its first assignment.
    redispatches: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Not yet (or no longer) assigned; the next planner pass
    /// dispatches it.
    Pending,
    /// Assigned and (presumed) running on `worker` as `job`.
    Dispatched,
    /// Every index of the shard's range is covered by the merge.
    Completed,
}

/// A shard tailer's exit report.
#[derive(Debug)]
struct TailEnd {
    shard: usize,
    generation: u64,
    result: Result<(), ServeError>,
}

/// Shared coordinator state.
///
/// Lock order: `slots` **before** `merged`, everywhere — the HTTP
/// handlers (`/shards`, `/metrics`), the completion scan, and the tail
/// drain all nest them that way, and a single inverted pair would
/// AB-BA deadlock the orchestrator against a dashboard poll. `registry`
/// and `journal` are only ever locked on their own (no other core lock
/// held), so they impose no ordering.
#[derive(Debug)]
struct Core {
    config: CoordinatorConfig,
    /// Canonical one-shot spec JSON (`shard: null`) — the journal's
    /// campaign identity and the workers' spec template.
    campaign_json: String,
    /// The golden content address shards are placed by.
    golden_key: String,
    total: u64,
    registry: Mutex<WorkerRegistry>,
    journal: Mutex<FabricJournal>,
    merged: Mutex<MergedStream>,
    merged_path: PathBuf,
    slots: Mutex<Vec<ShardSlot>>,
    metrics: Arc<MetricsRegistry>,
    /// Set by `POST /shutdown` (or the handle): stop orchestrating and
    /// accepting.
    stop: AtomicBool,
    /// Every shard completed and the merged summary written.
    done: AtomicBool,
    /// The coordinator's trace epoch (`ts = 0` of the fleet timeline);
    /// worker timestamps are rebased onto it via heartbeat clock probes.
    epoch: Instant,
    /// The coordinator's own span timeline: dispatch/redispatch spans,
    /// worker deaths, shard completions and the campaign umbrella.
    trace: TraceRecorder,
    /// Fleet health rules, fed one sample per heartbeat sweep and
    /// evaluated lazily by `GET /alerts` so alerts resolve while the
    /// HTTP plane outlives the finished campaign.
    alerts: Mutex<AlertEngine>,
}

/// A running coordinator: its address plus the thread handles to join.
#[derive(Debug)]
pub struct CoordinatorHandle {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    orchestrator: Option<JoinHandle<Result<(), ServeError>>>,
}

impl CoordinatorHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the merged campaign has completed.
    pub fn is_done(&self) -> bool {
        self.core.done.load(Ordering::SeqCst)
    }

    /// Blocks until the campaign completes (or `timeout` elapses).
    ///
    /// # Errors
    ///
    /// [`ServeError::Interrupted`] on timeout.
    pub fn wait_done(&self, timeout: Duration) -> Result<(), ServeError> {
        let deadline = Instant::now() + timeout;
        while !self.is_done() {
            if Instant::now() >= deadline {
                return Err(ServeError::Interrupted(format!(
                    "campaign still federating after {:.1}s",
                    timeout.as_secs_f64()
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Ok(())
    }

    /// Stops the coordinator and joins its threads, returning the
    /// orchestrator's outcome.
    ///
    /// # Errors
    ///
    /// Whatever error stopped the orchestrator first.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.core.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        match self.orchestrator.take() {
            Some(t) => t.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

/// Starts a coordinator from `config`.
///
/// # Errors
///
/// [`ServeError::Config`] for a spec that already carries a shard
/// range; [`ServeError::Io`] for data-dir, journal or listener
/// problems.
pub fn start(config: CoordinatorConfig) -> Result<CoordinatorHandle, ServeError> {
    if config.spec.shard.is_some() {
        return Err(ServeError::Config(
            "coordinator spec must not carry a shard range — the coordinator plans the split"
                .into(),
        ));
    }
    config.spec.validate()?;
    std::fs::create_dir_all(&config.data_dir)
        .map_err(|e| ServeError::Io(format!("data dir {}: {e}", config.data_dir.display())))?;
    let campaign = config.spec.campaign()?;
    let campaign_json = config.spec.to_json();
    let golden_key = GoldenKey::for_campaign(&campaign).as_str().to_owned();
    let total = config.spec.injections as u64;

    let merged_path = config.data_dir.join("merged.jsonl");
    let merged = MergedStream::resume(total, &merged_path).map_err(ServeError::Io)?;
    let requested_shards = if config.shards > 0 {
        config.shards
    } else {
        config.workers.len().max(1)
    };
    let (journal, shard_count, replayed) = FabricJournal::open(
        &config.data_dir.join("fabric.jsonl"),
        &campaign_json,
        requested_shards,
    )
    .map_err(ServeError::Protocol)?;

    // The shard plan. The journal header pins the campaign's shard
    // count, so a restarted coordinator re-derives exactly the split it
    // first journaled even if the shard-count flag changed; replayed
    // records then overlay their slots by ordinal. Shards with no
    // record — the crash predated their first dispatch — keep their
    // planned ranges and stay pending, so no index range is silently
    // dropped from the campaign.
    let slots = build_slots(total, shard_count, &replayed);

    let now = Instant::now();
    let mut registry = WorkerRegistry::new(config.heartbeat_timeout);
    for worker in &config.workers {
        registry.register(worker, now);
    }

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // The alert window must outlast one heartbeat death-and-recovery
    // cycle (sweep, re-dispatch, tail merge) so a single kill reads as
    // fire-then-resolve rather than a metastable flap.
    let alert_window = (config.heartbeat_timeout * 2).max(Duration::from_secs(2));
    let core = Arc::new(Core {
        campaign_json,
        golden_key,
        total,
        registry: Mutex::new(registry),
        journal: Mutex::new(journal),
        merged: Mutex::new(merged),
        merged_path,
        slots: Mutex::new(slots),
        metrics: Arc::new(MetricsRegistry::new()),
        stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        epoch: now,
        trace: TraceRecorder::with_epoch(now),
        alerts: Mutex::new(AlertEngine::new(AlertConfig {
            window: alert_window,
            ..AlertConfig::default()
        })),
        config,
    });

    let accept = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || accept_loop(&core, &listener))
    };
    let orchestrator = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || orchestrate(&core))
    };

    Ok(CoordinatorHandle {
        core,
        addr,
        accept: Some(accept),
        orchestrator: Some(orchestrator),
    })
}

/// Plans the campaign's slot table and overlays journal-replayed state
/// by shard ordinal, so slot positions always equal shard ordinals even
/// when only some shards were journaled before a crash. The planned
/// ranges are authoritative — the plan is pinned by the journal header,
/// and a record whose range disagrees with it (a corrupt or foreign
/// line) is ignored rather than smuggled into the table.
fn build_slots(total: u64, shard_count: usize, replayed: &[ShardRecord]) -> Vec<ShardSlot> {
    let mut slots: Vec<ShardSlot> = plan_shards(total, shard_count)
        .into_iter()
        .map(|(start, end)| ShardSlot {
            start,
            end,
            worker: String::new(),
            job: String::new(),
            prior: Vec::new(),
            state: SlotState::Pending,
            generation: 0,
            tailing: false,
            redispatches: 0,
        })
        .collect();
    for rec in replayed {
        let Some(s) = slots.get_mut(rec.shard) else {
            continue;
        };
        if (rec.start, rec.end) != (s.start, s.end) {
            continue;
        }
        s.worker = rec.worker.clone();
        s.job = rec.job.clone();
        // Everything incomplete is re-dispatched from the merged
        // stream's coverage — the journaled assignment may point at a
        // worker that died with the previous coordinator.
        s.state = match rec.state {
            ShardState::Completed => SlotState::Completed,
            _ => SlotState::Pending,
        };
        s.redispatches = u64::from(rec.state == ShardState::Redispatched);
    }
    slots
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

const ORCHESTRATE_TICK: Duration = Duration::from_millis(25);

/// The deterministic span id of shard `shard`'s `generation`-th
/// dispatch — the parentage edge workers stamp onto their spans. No
/// clocks or global counters, so re-runs of the same campaign mint the
/// same ids.
fn parent_span_id(shard: usize, generation: u64) -> u64 {
    shard as u64 * 1000 + generation
}

fn orchestrate(core: &Arc<Core>) -> Result<(), ServeError> {
    let result = orchestrate_loop(core);
    if let Err(e) = &result {
        // A failed journal write (or summary write) must halt the
        // orchestrator loudly: continuing would act on transitions the
        // journal never recorded, and a later restart would replay
        // stale state as if it were current.
        eprintln!("radcrit-coordinator: orchestrator stopped: {e}");
        core.stop.store(true, Ordering::SeqCst);
    }
    result
}

fn orchestrate_loop(core: &Arc<Core>) -> Result<(), ServeError> {
    let (tx, rx) = std::sync::mpsc::channel::<TailEnd>();
    let mut last_beat: Option<Instant> = None;
    loop {
        if core.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        dispatch_pending(core, &tx)?;
        drain_tail_endings(core, &rx)?;
        let now = Instant::now();
        if last_beat.is_none_or(|t| now.duration_since(t) >= core.config.heartbeat_interval) {
            last_beat = Some(now);
            heartbeat(core);
        }
        complete_covered_shards(core)?;
        if finish_if_done(core)? {
            return Ok(());
        }
        std::thread::sleep(ORCHESTRATE_TICK);
    }
}

/// Dispatches every pending shard whose range still has uncovered
/// indices, placing each by rendezvous rank over the live fleet.
///
/// # Errors
///
/// A journal write failure — the dispatch is abandoned (the shard slot
/// is untouched, still pending) and the orchestrator stops rather than
/// running a dispatch its journal never recorded.
fn dispatch_pending(core: &Arc<Core>, tx: &Sender<TailEnd>) -> Result<(), ServeError> {
    let pending: Vec<usize> = {
        let slots = core.slots.lock().expect("slots lock");
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SlotState::Pending && !s.tailing)
            .map(|(i, _)| i)
            .collect()
    };
    for shard in pending {
        let (start, end, prior_worker, had_assignment, generation) = {
            let slots = core.slots.lock().expect("slots lock");
            let s = &slots[shard];
            (
                s.start,
                s.end,
                s.worker.clone(),
                !s.job.is_empty(),
                s.generation,
            )
        };
        let resume_from = {
            let merged = core.merged.lock().expect("merged lock");
            merged.next_uncovered(start, end)
        };
        if resume_from == end {
            // The dead worker had streamed the whole shard before dying;
            // nothing to re-run.
            mark_completed(core, shard)?;
            continue;
        }
        let alive = core.registry.lock().expect("registry lock").alive();
        if alive.is_empty() {
            return Ok(()); // nobody to dispatch to; retry next tick
        }
        // Rendezvous placement over the golden content address: shard i
        // of this campaign ranks the fleet the same way on every
        // coordinator run. On re-dispatch the (dead) prior worker is
        // skipped when any alternative exists.
        let key = format!("{}#{shard}", core.golden_key);
        let rank = rendezvous_rank(&key, &alive);
        let candidates: Vec<&String> = rank
            .iter()
            .map(|&i| &alive[i])
            .filter(|w| !(had_assignment && alive.len() > 1 && **w == prior_worker))
            .collect();
        let mut spec = JobSpec::parse(&core.campaign_json).expect("own canonical spec");
        spec.shard = Some((resume_from as usize, end as usize));
        // The dispatch span's id is deterministic (shard and dispatch
        // generation, no clocks or counters) so two runs of the same
        // campaign mint identical parentage edges.
        let span_id = parent_span_id(shard, generation + 1);
        spec.trace = Some(TraceContext {
            campaign_id: core.golden_key.clone(),
            shard: shard as u64,
            parent_span: span_id,
        });
        for worker in candidates {
            let client = Client::new(worker.clone())
                .with_connect_timeout(Duration::from_secs(2))
                .with_read_timeout(Duration::from_secs(10));
            let submit_started = Instant::now();
            match client.submit(&spec) {
                Ok(job) => {
                    let state = if had_assignment {
                        ShardState::Redispatched
                    } else {
                        ShardState::Dispatched
                    };
                    journal_append(
                        core,
                        &ShardRecord {
                            shard,
                            start,
                            end,
                            worker: worker.clone(),
                            job: job.clone(),
                            state,
                            resume_from,
                        },
                    )?;
                    core.metrics.counter_add(
                        match state {
                            ShardState::Redispatched => "radcrit_fabric_shards_redispatched_total",
                            _ => "radcrit_fabric_shards_dispatched_total",
                        },
                        &[],
                        1,
                    );
                    core.trace.record(
                        match state {
                            ShardState::Redispatched => "redispatch",
                            _ => "dispatch",
                        },
                        shard as u64,
                        submit_started,
                        &[
                            ("shard", shard as u64),
                            ("span_id", span_id),
                            ("resume_from", resume_from),
                        ],
                    );
                    let generation = {
                        let mut slots = core.slots.lock().expect("slots lock");
                        let s = &mut slots[shard];
                        if !s.job.is_empty() {
                            s.prior.push((s.worker.clone(), s.job.clone()));
                        }
                        s.worker = worker.clone();
                        s.job = job.clone();
                        s.state = SlotState::Dispatched;
                        s.generation += 1;
                        s.tailing = true;
                        s.redispatches += u64::from(state == ShardState::Redispatched);
                        s.generation
                    };
                    spawn_tailer(core, shard, generation, worker.clone(), job, tx.clone());
                    break;
                }
                Err(ServeError::Unreachable(_)) => {
                    // Can't even connect: dead now, try the next rank.
                    let flipped = core
                        .registry
                        .lock()
                        .expect("registry lock")
                        .mark_dead(worker);
                    if flipped {
                        core.trace
                            .record(&format!("worker-dead {worker}"), 0, submit_started, &[]);
                    }
                }
                Err(ServeError::Io(_)) => {
                    // The connection was established, so the worker may
                    // have accepted the job before the failure (a read
                    // timeout on a slow-but-live daemon, say). Don't
                    // strike it from the fleet — skip to the next rank
                    // and let the heartbeat sweep decide liveness. A
                    // possibly orphaned duplicate is safe: the merge is
                    // idempotent per injection index.
                }
                Err(_) => {
                    // The worker answered but refused (queue full,
                    // draining): leave it alive, try the next rank.
                }
            }
        }
    }
    Ok(())
}

/// One tailer per dispatched shard: feeds the worker's SSE frames into
/// the merged stream, reconnecting (with `Last-Event-ID`) over transient
/// drops, and reports back when the stream ends or the worker dies.
fn spawn_tailer(
    core: &Arc<Core>,
    shard: usize,
    generation: u64,
    worker: String,
    job: String,
    tx: Sender<TailEnd>,
) {
    let core = Arc::clone(core);
    std::thread::spawn(move || {
        let client = Client::new(worker.clone())
            .with_connect_timeout(Duration::from_secs(2))
            .with_read_timeout(Duration::from_secs(60));
        let shard_label = shard.to_string();
        let mut last: Option<u64> = None;
        let mut failures = 0u32;
        let result = loop {
            let mut progressed = false;
            let outcome = client.stream_with(&job, last, &mut |ordinal, data| {
                progressed = true;
                last = Some(ordinal);
                {
                    let mut merged = core.merged.lock().expect("merged lock");
                    if let Ok(IngestOutcome::NewIndex(_)) = merged.ingest_line(data) {
                        core.metrics.counter_add(
                            "radcrit_shard_events_total",
                            &[("shard", &shard_label)],
                            1,
                        );
                        // Flush so the federated SSE tail sees the line.
                        let _ = merged.finish_if_complete();
                    }
                }
                // Frames flowing are better evidence than any probe.
                core.registry
                    .lock()
                    .expect("registry lock")
                    .mark_seen(&worker, Instant::now());
                !core.stop.load(Ordering::SeqCst)
            });
            match outcome {
                Ok(()) => break Ok(()),
                Err(e @ (ServeError::Io(_) | ServeError::Unreachable(_))) => {
                    failures = if progressed { 1 } else { failures + 1 };
                    if failures > 3 {
                        break Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(100 << failures));
                }
                Err(e) => break Err(e),
            }
        };
        let _ = tx.send(TailEnd {
            shard,
            generation,
            result,
        });
    });
}

fn drain_tail_endings(core: &Arc<Core>, rx: &Receiver<TailEnd>) -> Result<(), ServeError> {
    while let Ok(end) = rx.try_recv() {
        // Global lock order is slots before merged (everywhere: the
        // completion scan, /shards, /metrics) — copy the range out
        // while holding slots, then consult coverage.
        let (worker, start, stop) = {
            let mut slots = core.slots.lock().expect("slots lock");
            let s = &mut slots[end.shard];
            if s.generation != end.generation {
                continue; // a stale tailer from before a re-dispatch
            }
            s.tailing = false;
            (s.worker.clone(), s.start, s.end)
        };
        let covered = {
            let merged = core.merged.lock().expect("merged lock");
            merged.covered_in(start, stop) == stop - start
        };
        if covered {
            mark_completed(core, end.shard)?;
            continue;
        }
        // The stream ended but the shard is not covered: either the
        // worker died mid-stream, or its job ended without finishing
        // (cancelled / failed). Both paths re-dispatch the remainder;
        // a dead worker is also struck from the fleet immediately.
        if end.result.is_err() {
            let flipped = core
                .registry
                .lock()
                .expect("registry lock")
                .mark_dead(&worker);
            if flipped {
                core.trace
                    .record(&format!("worker-dead {worker}"), 0, Instant::now(), &[]);
            }
        }
        let mut slots = core.slots.lock().expect("slots lock");
        slots[end.shard].state = SlotState::Pending;
    }
    Ok(())
}

/// Probes every registered worker's `/healthz`, then sweeps the fleet:
/// newly dead workers get their incomplete shards re-dispatched (by
/// flipping them pending; the next planner pass does the rest).
///
/// Each successful probe doubles as a clock measurement: the worker's
/// body reports `now_us` on its own trace timeline, and the midpoint
/// method (`coordinator_midpoint - worker_now`, error bound RTT/2)
/// yields the offset the fleet trace rebases that worker's spans by.
fn heartbeat(core: &Arc<Core>) {
    let workers: Vec<String> = {
        let registry = core.registry.lock().expect("registry lock");
        registry.alive()
    };
    for worker in &workers {
        let client = Client::new(worker.clone())
            .with_connect_timeout(Duration::from_millis(500))
            .with_read_timeout(Duration::from_millis(500));
        let t0 = Instant::now();
        if let Ok(body) = client.healthz() {
            let t1 = Instant::now();
            let mut registry = core.registry.lock().expect("registry lock");
            registry.mark_seen(worker, t1);
            let rtt = t1.duration_since(t0);
            // Legacy daemons answer without `now_us`; they stay alive
            // but unsynchronized (the fleet trace uses offset 0).
            if let Some(worker_now_us) = parse_now_us(&body) {
                let midpoint_us = (t0 + rtt / 2)
                    .checked_duration_since(core.epoch)
                    .map_or(0, |d| d.as_micros() as i64);
                let offset_us = midpoint_us - worker_now_us;
                registry.record_probe(
                    worker,
                    ClockProbe {
                        at: t1,
                        rtt,
                        offset_us,
                    },
                );
                drop(registry);
                core.metrics.gauge_set(
                    "radcrit_trace_clock_offset_us",
                    &[("worker", worker)],
                    offset_us as f64,
                );
            }
        }
    }
    let sweep_started = Instant::now();
    let newly_dead = core
        .registry
        .lock()
        .expect("registry lock")
        .sweep_at(sweep_started);
    if !newly_dead.is_empty() {
        for worker in &newly_dead {
            core.trace
                .record(&format!("worker-dead {worker}"), 0, sweep_started, &[]);
        }
        let mut slots = core.slots.lock().expect("slots lock");
        for s in slots.iter_mut() {
            if s.state == SlotState::Dispatched && newly_dead.contains(&s.worker) {
                s.state = SlotState::Pending;
                // The tailer will error out on its own; its ending is
                // recognised as stale once the shard is re-dispatched.
                s.tailing = false;
            }
        }
    }
    core.metrics.gauge_set(
        "radcrit_fabric_workers_alive",
        &[],
        core.registry.lock().expect("registry lock").alive_count() as f64,
    );
    evaluate_alerts(core);
}

/// The worker's `now_us` trace-timeline clock from a `/healthz` body.
fn parse_now_us(body: &str) -> Option<i64> {
    let v = json::parse_line(body.trim()).ok()?;
    let obj = json::as_obj(&v).ok()?;
    json::get_u64(obj, "now_us").ok().map(|n| n as i64)
}

/// Feeds the fleet health rules one sample: cumulative worker deaths
/// and redispatches, merged coverage and the FIT confidence interval.
/// Firing/resolved edges land on stderr as structured JSONL lines and
/// on `/metrics` as `radcrit_alert_*` series.
fn evaluate_alerts(core: &Arc<Core>) {
    let deaths = core.registry.lock().expect("registry lock").deaths_total();
    let redispatches: u64 = {
        let slots = core.slots.lock().expect("slots lock");
        slots.iter().map(|s| s.redispatches).sum()
    };
    let (covered, ci_width, folded) = {
        let merged = core.merged.lock().expect("merged lock");
        (
            merged.covered_in(0, core.total),
            merged.aggregator().fit_ci_width(),
            merged.aggregator().injections(),
        )
    };
    let sample = HealthSample {
        worker_deaths_total: deaths,
        redispatches_total: redispatches,
        covered,
        total: core.total,
        done: core.done.load(Ordering::SeqCst),
        queue_depth: None,
        fit_ci_width: (folded > 0).then_some(ci_width),
        injections_folded: folded,
    };
    let mut engine = core.alerts.lock().expect("alerts lock");
    let edges = engine.observe(Instant::now(), sample);
    engine.export_gauges(&core.metrics);
    drop(engine);
    for edge in &edges {
        eprintln!("{}", edge.to_json_line());
    }
    radcrit_obs::alerts::export_edges(&edges, &core.metrics);
}

/// Journals and records completion for shards whose whole range became
/// covered (the tailer may still be attached when coverage arrives via
/// another shard's re-delivered prefix).
fn complete_covered_shards(core: &Arc<Core>) -> Result<(), ServeError> {
    let candidates: Vec<usize> = {
        let slots = core.slots.lock().expect("slots lock");
        let merged = core.merged.lock().expect("merged lock");
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.state == SlotState::Dispatched
                    && merged.covered_in(s.start, s.end) == s.end - s.start
            })
            .map(|(i, _)| i)
            .collect()
    };
    for shard in candidates {
        mark_completed(core, shard)?;
    }
    Ok(())
}

/// Transitions one shard to completed: merged stream flushed, then the
/// journal record, then the in-memory slot flip and metrics, then
/// (best-effort) the worker's per-job metrics snapshot merged into the
/// coordinator registry under a `shard` label.
///
/// # Errors
///
/// A merged-stream flush or journal write failure — the slot is left
/// untouched (still dispatched/pending) so a restart re-tails the shard
/// instead of trusting a completion that was never made durable.
fn mark_completed(core: &Arc<Core>, shard: usize) -> Result<(), ServeError> {
    let (record, worker, job) = {
        let slots = core.slots.lock().expect("slots lock");
        let s = &slots[shard];
        if s.state == SlotState::Completed {
            return Ok(());
        }
        (
            ShardRecord {
                shard,
                start: s.start,
                end: s.end,
                worker: s.worker.clone(),
                job: s.job.clone(),
                state: ShardState::Completed,
                resume_from: s.end,
            },
            s.worker.clone(),
            s.job.clone(),
        )
    };
    // The merged prefix must be durable before the journal claims the
    // shard complete — a crash between the two must re-tail, not skip —
    // and the journal must hold the transition before the slot acts on
    // it.
    core.merged
        .lock()
        .expect("merged lock")
        .finish_if_complete()
        .map_err(ServeError::Io)?;
    journal_append(core, &record)?;
    {
        let mut slots = core.slots.lock().expect("slots lock");
        let s = &mut slots[shard];
        s.state = SlotState::Completed;
        s.tailing = false;
    }
    core.metrics
        .counter_add("radcrit_fabric_shards_completed_total", &[], 1);
    core.trace.record(
        "shard-complete",
        shard as u64,
        Instant::now(),
        &[("shard", shard as u64)],
    );
    if !worker.is_empty() && !job.is_empty() {
        let client = Client::new(worker)
            .with_connect_timeout(Duration::from_secs(2))
            .with_read_timeout(Duration::from_secs(10));
        if let Ok(text) = client.job_metrics(&job) {
            if let Ok(snapshot) = MetricsSnapshot::from_json(text.trim()) {
                core.metrics
                    .merge_snapshot_labelled(&snapshot, ("shard", &shard.to_string()));
            }
        }
    }
    Ok(())
}

/// Once every shard completed: synthesize the merged `run_end`, write
/// the canonical summary, and flip the done flag.
fn finish_if_done(core: &Arc<Core>) -> Result<bool, ServeError> {
    let all_done = {
        let slots = core.slots.lock().expect("slots lock");
        !slots.is_empty() && slots.iter().all(|s| s.state == SlotState::Completed)
    };
    if !all_done {
        return Ok(false);
    }
    let summary = {
        let mut merged = core.merged.lock().expect("merged lock");
        merged.finish_if_complete().map_err(ServeError::Io)?;
        CampaignSummary::from_analytics(merged.aggregator())
    };
    if let Some(path) = &core.config.summary_out {
        std::fs::write(path, format!("{}\n", summary.to_json()))
            .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
    }
    // The campaign umbrella span closes the coordinator's own track
    // (epoch → now), then the merged fleet timeline is materialized
    // while the workers still hold their job traces.
    let shards = core.slots.lock().expect("slots lock").len() as u64;
    core.trace.record(
        "campaign",
        0,
        core.epoch,
        &[("injections", core.total), ("shards", shards)],
    );
    if let Some(path) = &core.config.trace_out {
        std::fs::write(path, build_fleet_trace(core))
            .map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))?;
    }
    core.done.store(true, Ordering::SeqCst);
    Ok(true)
}

/// Appends one shard transition to the fabric journal. A write failure
/// is an error the caller must treat as fatal for the transition: the
/// invariant is journal-before-act, so an unjournaled transition must
/// not proceed (a restart would otherwise replay stale state).
fn journal_append(core: &Arc<Core>, record: &ShardRecord) -> Result<(), ServeError> {
    core.journal
        .lock()
        .expect("journal lock")
        .append(record)
        .map_err(|e| ServeError::Io(format!("fabric journal append: {e}")))
}

// ---------------------------------------------------------------------
// HTTP routing
// ---------------------------------------------------------------------

fn accept_loop(core: &Arc<Core>, listener: &TcpListener) {
    loop {
        if core.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let core = Arc::clone(core);
                std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = handle_connection(&core, &mut stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(_) => {
            return respond(
                stream,
                400,
                "application/json",
                "{\"error\":\"bad request\"}",
            );
        }
    };
    route(core, stream, &request)
}

fn route(core: &Arc<Core>, stream: &mut TcpStream, req: &Request) -> Result<(), ServeError> {
    let path = req.path.split('?').next().unwrap_or(&req.path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["register"]) => post_register(core, stream, &req.body),
        ("GET", ["shards"]) => get_shards(core, stream),
        ("GET", ["analytics"]) => get_analytics(core, stream),
        ("GET", ["jobs"]) => get_jobs(core, stream),
        ("GET", ["jobs", _id]) => get_status(core, stream),
        ("GET", ["jobs", _id, "stream"]) => get_stream(core, stream, req),
        ("GET", ["jobs", _id, "events"]) => get_events(core, stream),
        ("GET", ["jobs", _id, "analytics"]) => {
            let merged = core.merged.lock().expect("merged lock");
            let body = merged.aggregator().to_json();
            drop(merged);
            respond(stream, 200, "application/json", &body)
        }
        ("GET", ["jobs", _id, "result"]) => get_result(core, stream),
        ("GET", ["dashboard"]) => respond(
            stream,
            200,
            "text/html; charset=utf-8",
            crate::dashboard::DASHBOARD_HTML,
        ),
        ("GET", ["metrics"]) => get_metrics(core, stream),
        ("GET", ["trace"]) => {
            let body = build_fleet_trace(core);
            respond(stream, 200, "application/json", &body)
        }
        ("GET", ["alerts"]) => get_alerts(core, stream),
        ("GET", ["healthz"]) => get_healthz(core, stream),
        ("POST", ["shutdown"]) => {
            core.stop.store(true, Ordering::SeqCst);
            respond(stream, 200, "application/json", "{\"draining\":true}")
        }
        (method, _) if !matches!(method, "GET" | "POST") => respond(
            stream,
            405,
            "application/json",
            "{\"error\":\"method not allowed\"}",
        ),
        _ => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no such route\"}",
        ),
    }
}

fn post_register(core: &Arc<Core>, stream: &mut TcpStream, body: &str) -> Result<(), ServeError> {
    let worker = json::parse_line(body)
        .and_then(|v| json::as_obj(&v).map(<[_]>::to_vec))
        .and_then(|obj| json::get_str(&obj, "worker").map(str::to_owned));
    let worker = match worker {
        Ok(w) if !w.is_empty() => w,
        _ => {
            return respond(
                stream,
                400,
                "application/json",
                "{\"error\":\"body must be {\\\"worker\\\":\\\"host:port\\\"}\"}",
            );
        }
    };
    let alive = {
        let mut registry = core.registry.lock().expect("registry lock");
        registry.register(&worker, Instant::now());
        registry.alive_count()
    };
    let body = format!(
        "{{\"registered\":\"{}\",\"workers_alive\":{alive}}}",
        json::escape(&worker)
    );
    respond(stream, 200, "application/json", &body)
}

fn get_shards(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let rows: Vec<String> = {
        let slots = core.slots.lock().expect("slots lock");
        let merged = core.merged.lock().expect("merged lock");
        slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{{\"shard\":{i},\"start\":{},\"end\":{},\"worker\":\"{}\",\
                     \"job\":\"{}\",\"state\":\"{}\",\"covered\":{},\"redispatches\":{}}}",
                    s.start,
                    s.end,
                    json::escape(&s.worker),
                    json::escape(&s.job),
                    match s.state {
                        SlotState::Pending => "pending",
                        SlotState::Dispatched => "dispatched",
                        SlotState::Completed => "completed",
                    },
                    merged.covered_in(s.start, s.end),
                    s.redispatches,
                )
            })
            .collect()
    };
    let body = format!("{{\"shards\":[{}]}}", rows.join(","));
    respond(stream, 200, "application/json", &body)
}

/// Merged rollup in the daemon's `GET /analytics` body shape, so the
/// shared dashboard renders a coordinator unchanged.
fn get_analytics(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let (shards, completed) = {
        let slots = core.slots.lock().expect("slots lock");
        (
            slots.len(),
            slots
                .iter()
                .filter(|s| s.state == SlotState::Completed)
                .count(),
        )
    };
    let rollup = {
        let merged = core.merged.lock().expect("merged lock");
        merged.aggregator().to_json()
    };
    let body = format!("{{\"jobs\":{shards},\"folded\":{completed},\"rollup\":{rollup}}}");
    respond(stream, 200, "application/json", &body)
}

fn get_jobs(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let status = if core.done.load(Ordering::SeqCst) {
        "done"
    } else {
        "running"
    };
    let body = format!("{{\"jobs\":[{{\"job\":\"merged\",\"status\":\"{status}\"}}]}}");
    respond(stream, 200, "application/json", &body)
}

fn get_status(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let status = if core.done.load(Ordering::SeqCst) {
        "done"
    } else {
        "running"
    };
    let body = format!("{{\"job\":\"merged\",\"status\":\"{status}\"}}");
    respond(stream, 200, "application/json", &body)
}

/// The federated stream: the merged analytic skeleton tailed as SSE,
/// resumable via `Last-Event-ID` exactly like a single daemon's stream.
fn get_stream(core: &Arc<Core>, stream: &mut TcpStream, req: &Request) -> Result<(), ServeError> {
    let resume_after = crate::live::parse_last_event_id(req.header("last-event-id"));
    let core_for_poll = Arc::clone(core);
    match crate::live::stream_sse(stream, &core.merged_path, resume_after, &move || {
        core_for_poll.done.load(Ordering::SeqCst) || core_for_poll.stop.load(Ordering::SeqCst)
    }) {
        Err(ServeError::Disconnected(_)) => Ok(()),
        other => other,
    }
}

fn get_events(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let mut file = match std::fs::File::open(&core.merged_path) {
        Ok(f) => f,
        Err(_) => {
            return respond(
                stream,
                404,
                "application/json",
                "{\"error\":\"no events yet\"}",
            );
        }
    };
    respond_chunked(stream, 200, "application/jsonl", |write| {
        use std::io::Read;
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                return Ok(());
            }
            write(&buf[..n])?;
        }
    })
}

fn get_result(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    if !core.done.load(Ordering::SeqCst) {
        return respond(
            stream,
            409,
            "application/json",
            "{\"error\":\"job is running, result not available\"}",
        );
    }
    let body = {
        let merged = core.merged.lock().expect("merged lock");
        format!(
            "{}\n",
            CampaignSummary::from_analytics(merged.aggregator()).to_json()
        )
    };
    respond(stream, 200, "application/json", &body)
}

fn get_metrics(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    // Scrape-time gauges: fleet health and per-shard coverage.
    core.metrics.gauge_set(
        "radcrit_fabric_workers_alive",
        &[],
        core.registry.lock().expect("registry lock").alive_count() as f64,
    );
    {
        let slots = core.slots.lock().expect("slots lock");
        let merged = core.merged.lock().expect("merged lock");
        for (i, s) in slots.iter().enumerate() {
            core.metrics.gauge_set(
                "radcrit_shard_covered",
                &[("shard", &i.to_string())],
                merged.covered_in(s.start, s.end) as f64,
            );
        }
    }
    respond(
        stream,
        200,
        "text/plain; version=0.0.4",
        &core.metrics.snapshot().to_prometheus(),
    )
}

/// Builds the merged fleet-wide Chrome trace: the coordinator's own
/// track (pid 1, offset 0) plus every shard job's trace fetched from
/// its worker (pid 2+registration ordinal), each rebased onto the
/// coordinator clock by that worker's best heartbeat probe. A dead or
/// torn source is recorded in `skipped_sources` without dropping the
/// rest of the timeline.
fn build_fleet_trace(core: &Arc<Core>) -> String {
    let mut fleet = FleetTrace::new();
    fleet.set_metadata(
        "campaign_id",
        format!("\"{}\"", json::escape(&core.golden_key)),
    );
    fleet.set_metadata("injections", core.total.to_string());
    fleet.add_process(1, "coordinator");
    let own = core.trace.to_chrome_json(&[]);
    if let Err(e) = fleet.add_trace(1, &own, 0) {
        fleet.skip("coordinator", &e);
    }
    // Worker pids follow registration order; the offset is the lowest-
    // RTT heartbeat probe's midpoint estimate (0 until one lands).
    let workers: Vec<(String, i64)> = {
        let registry = core.registry.lock().expect("registry lock");
        registry
            .workers()
            .iter()
            .map(|w| {
                (
                    w.addr.clone(),
                    registry.clock_offset(&w.addr).map_or(0, |e| e.offset_us),
                )
            })
            .collect()
    };
    for (i, (addr, _)) in workers.iter().enumerate() {
        fleet.add_process(2 + i as u64, &format!("worker {addr}"));
    }
    // Every assignment each shard ever had, current last — the fetches
    // happen with no core lock held (workers are remote HTTP calls).
    let sources: Vec<(String, String)> = {
        let slots = core.slots.lock().expect("slots lock");
        slots
            .iter()
            .flat_map(|s| {
                s.prior
                    .iter()
                    .cloned()
                    .chain((!s.job.is_empty()).then(|| (s.worker.clone(), s.job.clone())))
            })
            .collect()
    };
    for (worker, job) in &sources {
        let Some(pid) = workers
            .iter()
            .position(|(addr, _)| addr == worker)
            .map(|i| 2 + i as u64)
        else {
            fleet.skip(&format!("{worker}/{job}"), "worker not registered");
            continue;
        };
        let offset = workers
            .iter()
            .find(|(addr, _)| addr == worker)
            .map_or(0, |&(_, off)| off);
        let client = Client::new(worker.clone())
            .with_connect_timeout(Duration::from_secs(1))
            .with_read_timeout(Duration::from_secs(5));
        match client.trace(job) {
            Ok(doc) => {
                if let Err(e) = fleet.add_trace(pid, &doc, offset) {
                    fleet.skip(&format!("{worker}/{job}"), &e);
                }
            }
            Err(e) => fleet.skip(&format!("{worker}/{job}"), &e.to_string()),
        }
    }
    fleet.to_chrome_json()
}

/// The alert engine's current state, evaluated lazily at request time
/// so a fired alert resolves once its window drains even after the
/// campaign stops sweeping.
fn get_alerts(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let mut engine = core.alerts.lock().expect("alerts lock");
    let edges = engine.evaluate_at(Instant::now());
    engine.export_gauges(&core.metrics);
    let body = engine.to_json();
    drop(engine);
    for edge in &edges {
        eprintln!("{}", edge.to_json_line());
    }
    radcrit_obs::alerts::export_edges(&edges, &core.metrics);
    respond(stream, 200, "application/json", &body)
}

fn get_healthz(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let (shards, completed) = {
        let slots = core.slots.lock().expect("slots lock");
        (
            slots.len(),
            slots
                .iter()
                .filter(|s| s.state == SlotState::Completed)
                .count(),
        )
    };
    let covered = core
        .merged
        .lock()
        .expect("merged lock")
        .covered_in(0, core.total);
    let body = format!(
        "{{\"ok\":true,\"workers_alive\":{},\"shards\":{shards},\
         \"completed\":{completed},\"covered\":{covered},\"injections\":{},\"done\":{}}}",
        core.registry.lock().expect("registry lock").alive_count(),
        core.total,
        core.done.load(Ordering::SeqCst),
    );
    respond(stream, 200, "application/json", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(shard: usize, start: u64, end: u64, state: ShardState) -> ShardRecord {
        ShardRecord {
            shard,
            start,
            end,
            worker: format!("w{shard}:1"),
            job: format!("job-{shard:06}"),
            state,
            resume_from: start,
        }
    }

    #[test]
    fn unjournaled_shards_keep_their_planned_ranges() {
        // Only shard 1 of 4 was journaled before the crash: the other
        // three must survive the rebuild as pending planned ranges, not
        // vanish (which would "complete" the campaign with uncovered
        // indices).
        let planned = plan_shards(40, 4);
        let replayed = vec![rec(1, planned[1].0, planned[1].1, ShardState::Dispatched)];
        let slots = build_slots(40, 4, &replayed);
        assert_eq!(slots.len(), 4);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!((s.start, s.end), planned[i]);
            assert_eq!(s.state, SlotState::Pending);
        }
        assert_eq!(slots[1].worker, "w1:1", "replayed slot keeps its ordinal");
        assert_eq!(slots[1].job, "job-000001");
        assert!(slots[0].worker.is_empty());
        assert!(slots[2].worker.is_empty());
    }

    #[test]
    fn replayed_completions_overlay_by_ordinal() {
        let planned = plan_shards(30, 3);
        let replayed = vec![
            rec(0, planned[0].0, planned[0].1, ShardState::Completed),
            rec(2, planned[2].0, planned[2].1, ShardState::Redispatched),
        ];
        let slots = build_slots(30, 3, &replayed);
        assert_eq!(slots[0].state, SlotState::Completed);
        assert_eq!(slots[1].state, SlotState::Pending);
        assert_eq!(slots[2].state, SlotState::Pending);
        assert_eq!(slots[2].redispatches, 1);
    }

    #[test]
    fn records_disagreeing_with_the_plan_are_ignored() {
        // A record whose range does not match the pinned plan (corrupt
        // line, foreign journal) must not smuggle its range or state
        // into the table.
        let replayed = vec![rec(0, 5, 999, ShardState::Completed)];
        let slots = build_slots(20, 2, &replayed);
        assert_eq!((slots[0].start, slots[0].end), (0, 10));
        assert_eq!(slots[0].state, SlotState::Pending);
        assert!(slots[0].worker.is_empty());
    }

    #[test]
    fn out_of_range_ordinals_are_ignored() {
        let replayed = vec![rec(9, 0, 10, ShardState::Completed)];
        let slots = build_slots(20, 2, &replayed);
        assert_eq!(slots.len(), 2);
        assert!(slots.iter().all(|s| s.state == SlotState::Pending));
    }
}
