//! `radcrit-serve` — the long-running campaign service.
//!
//! Turns the one-shot campaign runner into a daemon: injection
//! campaigns are submitted as jobs over a std-only HTTP/1.1 API, run on
//! a persistent worker pool that shares a [`GoldenCache`] across jobs,
//! and survive crashes through a job-state journal plus the per-job
//! campaign checkpoints introduced in earlier PRs.
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /jobs` | submit a [`JobSpec`]; `202` + id, `429` full, `503` draining |
//! | `GET /jobs/:id` | job state |
//! | `GET /jobs/:id/result` | canonical summary JSON once done |
//! | `GET /jobs/:id/events` | chunked JSONL event stream |
//! | `GET /jobs/:id/stream` | live SSE tail, resumable via `Last-Event-ID` |
//! | `GET /jobs/:id/analytics` | rolling criticality fold of the job's events |
//! | `GET /jobs/:id/trace` | Chrome trace-event timeline of the job |
//! | `GET /jobs/:id/profile` | hierarchical phase profile of the job |
//! | `GET /jobs` | job listing |
//! | `GET /analytics` | daemon-wide criticality rollup |
//! | `GET /profile` | daemon-wide merged phase profile + hot phases |
//! | `GET /dashboard` | self-contained live HTML dashboard |
//! | `POST /jobs/:id/cancel` | cancel queued/running job |
//! | `GET /jobs/:id/metrics` | the finished job's metrics snapshot JSON |
//! | `GET /metrics` | Prometheus exposition |
//! | `GET /healthz` | liveness |
//! | `POST /shutdown` | graceful drain |
//!
//! The [`coord`] module federates many such daemons under one
//! coordinator for a single sharded campaign. The coordinator speaks a
//! compatible read API — `GET /analytics`, `/dashboard`, `/metrics`,
//! `/healthz` and the federated `GET /jobs/:id/stream` — plus:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /register` | `{"worker":"host:port"}` joins the fleet |
//! | `GET /shards` | shard table: range, worker, state, coverage |
//!
//! The crate also owns the `radcrit-campaign` binary (daemon + client +
//! coordinator + one-shot subcommands), moved here so the service and
//! CLI share one spec-to-[`Campaign`](radcrit_campaign::Campaign)
//! construction path.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod coord;
pub mod daemon;
pub mod dashboard;
pub mod error;
pub mod http;
pub mod journal;
pub mod live;
pub mod queue;
pub mod spec;

pub use client::{Client, JobStatus};
pub use coord::{CoordinatorConfig, CoordinatorHandle};
pub use daemon::{start, DaemonConfig, DaemonHandle};
pub use error::ServeError;
pub use journal::{JobState, Journal};
pub use queue::{JobQueue, PushError};
pub use spec::{DeviceKind, JobSpec, Priority};

// Re-exported so service consumers can size the shared cache without
// depending on the campaign crate directly.
pub use radcrit_campaign::{GoldenCache, GoldenCacheStats};
