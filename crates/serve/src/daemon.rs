//! The campaign daemon: a persistent worker pool behind an HTTP API.
//!
//! ## Architecture
//!
//! One accept thread owns a non-blocking [`TcpListener`] and spawns a
//! short-lived handler thread per connection (exchanges are single
//! request/response, `Connection: close`). A fixed pool of job workers
//! blocks on the [`JobQueue`]; each claimed job runs as a normal
//! [`Campaign`] with the runner's own internal parallelism, a
//! cooperative cancel flag, a per-job [`MetricsRegistry`] (folded into
//! the daemon-wide registry when the job ends) and the daemon's shared
//! [`GoldenCache`], so identical specs skip their golden phase.
//!
//! ## Durability
//!
//! Every state transition is appended to the crash-safe [`Journal`];
//! each job's injection records stream to its own checkpoint file. A
//! daemon restarted on the same data directory re-enqueues jobs that
//! were submitted or running when it died, and the checkpoint/event
//! machinery guarantees no injection index is recomputed or duplicated.
//!
//! ## Data layout
//!
//! ```text
//! <data_dir>/journal.jsonl                 job-state journal
//! <data_dir>/jobs/<id>/checkpoint.jsonl    streaming injection records
//! <data_dir>/jobs/<id>/events.jsonl        obs event stream
//! <data_dir>/jobs/<id>/result.json         canonical summary (when done)
//! <data_dir>/jobs/<id>/metrics.json        job metrics snapshot
//! <data_dir>/jobs/<id>/trace.json          Chrome trace-event timeline
//! <data_dir>/jobs/<id>/profile.json        hierarchical phase profile
//! ```
//!
//! ## Live analytics
//!
//! While (and after) a job runs, its event stream is consumable three
//! ways: `GET /jobs/:id/stream` tails it as Server-Sent Events
//! (resumable via `Last-Event-ID`, see [`crate::live`]),
//! `GET /jobs/:id/analytics` folds it into a
//! [`CriticalityAggregator`](radcrit_obs::CriticalityAggregator)
//! snapshot, and `GET /analytics` merges every job's fold into a
//! daemon-wide rollup. `GET /dashboard` serves the self-contained HTML
//! page in [`crate::dashboard`] that renders all of it live.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use radcrit_campaign::golden::GoldenCache;
use radcrit_campaign::{Campaign, RunOptions};
use radcrit_obs::{AlertConfig, AlertEngine, HealthSample, MetricsRegistry};

use crate::error::ServeError;
use crate::http::{read_request, respond, respond_chunked, Request};
use crate::journal::{job_id, job_number, JobState, Journal};
use crate::queue::{JobQueue, PushError};
use crate::spec::JobSpec;

/// How a daemon is launched.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Data directory for journal and job artifacts.
    pub data_dir: PathBuf,
    /// Concurrent jobs (the pool size). Each job still parallelizes
    /// internally per its spec's `workers`.
    pub pool: usize,
    /// Maximum queued (not yet running) jobs before `429`.
    pub queue_depth: usize,
    /// Byte budget of the shared golden cache.
    pub cache_bytes: usize,
    /// Disable differential injection execution: every job re-executes
    /// the kernel from tile 0 per injection, and golden cache entries
    /// carry no snapshot sets. Off by default — jobs resume from
    /// golden-prefix snapshots that the shared cache carries across
    /// jobs.
    pub full_execution: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_owned(),
            data_dir: PathBuf::from("radcrit-serve-data"),
            pool: 2,
            queue_depth: 64,
            cache_bytes: GoldenCache::DEFAULT_BYTES,
            full_execution: false,
        }
    }
}

/// One job's in-memory state.
#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
}

/// Shared daemon state.
#[derive(Debug)]
struct Core {
    config: DaemonConfig,
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    next_job: AtomicU64,
    queue: JobQueue,
    journal: Mutex<Journal>,
    cache: Arc<GoldenCache>,
    metrics: Arc<MetricsRegistry>,
    /// Jobs submitted but not yet terminal (queue depth + running).
    outstanding: AtomicUsize,
    /// Workers currently inside `run_job` (for the busy/idle gauges).
    busy: AtomicUsize,
    /// Set by `POST /shutdown`: refuse new jobs, drain, then exit.
    draining: AtomicBool,
    /// Set when the accept loop should exit.
    stop: AtomicBool,
    /// Testing hook: pretend the process died — skip terminal journal
    /// writes and result files for in-flight jobs.
    abrupt: AtomicBool,
    /// Process-wide trace epoch: every job trace measures its
    /// timestamps from this instant, and `/healthz` reports `now_us`
    /// on the same timeline so a coordinator can estimate this clock's
    /// offset from heartbeat round-trips.
    epoch: Instant,
    /// Daemon-local health rules (queue saturation is the daemon-level
    /// signal; fleet rules live on the coordinator). Evaluated lazily
    /// at `/alerts` and `/metrics` scrape time.
    alerts: Mutex<AlertEngine>,
}

/// A running daemon: its address plus the thread handles to join.
#[derive(Debug)]
pub struct DaemonHandle {
    core: Arc<Core>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon exits (a client must `POST /shutdown`).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Testing hook: stop like a crash. In-flight jobs are interrupted
    /// via their cancel flags but no terminal state is journaled and no
    /// result file is written — exactly what a `kill -9` leaves behind.
    /// A daemon restarted on the same data directory must resume them.
    pub fn shutdown_abrupt(mut self) {
        self.core.abrupt.store(true, Ordering::SeqCst);
        self.core.stop.store(true, Ordering::SeqCst);
        self.core.queue.close();
        for entry in self.core.jobs.lock().expect("jobs lock").values() {
            entry.cancel.store(true, Ordering::SeqCst);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Starts a daemon from `config`.
///
/// # Errors
///
/// [`ServeError::Io`] when the data directory or listener cannot be set
/// up, [`ServeError::Protocol`] when the journal is corrupt.
pub fn start(config: DaemonConfig) -> Result<DaemonHandle, ServeError> {
    std::fs::create_dir_all(config.data_dir.join("jobs"))
        .map_err(|e| ServeError::Io(format!("data dir {}: {e}", config.data_dir.display())))?;
    let (journal, replayed) = Journal::open(&config.data_dir.join("journal.jsonl"))?;

    let queue = JobQueue::new(config.queue_depth);
    let mut jobs = BTreeMap::new();
    let mut next = 1u64;
    let mut outstanding = 0usize;
    for job in replayed {
        next = next.max(job_number(&job.id).map_or(next, |n| n + 1));
        let state = match job.state {
            // In-flight when the previous daemon died: queue it again.
            // The campaign checkpoint replays finished indices, so the
            // rerun only computes what is missing.
            JobState::Submitted | JobState::Running => {
                // Unbounded on purpose: up to queue_depth + pool jobs can
                // be non-terminal at crash time (and this restart may use
                // a smaller depth); already-accepted work is never shed.
                queue.push_unbounded(&job.id, job.priority);
                outstanding += 1;
                JobState::Submitted
            }
            terminal => terminal,
        };
        jobs.insert(
            job.id.clone(),
            JobEntry {
                spec: job.spec,
                state,
                cancel: Arc::new(AtomicBool::new(false)),
            },
        );
    }

    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::Io(format!("bind {}: {e}", config.addr)))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let pool = config.pool.max(1);
    let alerts = AlertEngine::new(AlertConfig {
        queue_capacity: Some(config.queue_depth as u64),
        ..AlertConfig::default()
    });
    let core = Arc::new(Core {
        cache: Arc::new(GoldenCache::new(config.cache_bytes)),
        config,
        jobs: Mutex::new(jobs),
        next_job: AtomicU64::new(next),
        queue,
        journal: Mutex::new(journal),
        metrics: Arc::new(MetricsRegistry::new()),
        outstanding: AtomicUsize::new(outstanding),
        busy: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        abrupt: AtomicBool::new(false),
        epoch: Instant::now(),
        alerts: Mutex::new(alerts),
    });

    // The host's SIMD dispatch is fixed for the daemon's lifetime
    // (jobs may still pin scalar per-run): log it once and expose it
    // as a labelled constant gauge for fleet-wide scrapes.
    let isa = radcrit_core::exec::active();
    eprintln!("radcrit-serve: listening on {addr}, simd isa {isa}");
    core.metrics
        .gauge_set("radcrit_simd_isa", &[("isa", isa.name())], 1.0);

    let workers = (0..pool)
        .map(|_| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || worker_loop(&core))
        })
        .collect();
    let accept = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || accept_loop(&core, &listener))
    };

    Ok(DaemonHandle {
        core,
        addr,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(core: &Arc<Core>, listener: &TcpListener) {
    loop {
        if core.stop.load(Ordering::SeqCst) {
            break;
        }
        if core.draining.load(Ordering::SeqCst) && core.outstanding.load(Ordering::SeqCst) == 0 {
            // Drained: release the workers and stop accepting.
            core.queue.close();
            break;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                let core = Arc::clone(core);
                std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = handle_connection(&core, &mut stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(core: &Arc<Core>) {
    while let Some(id) = core.queue.pop() {
        // Claim: only still-submitted jobs run (a queued job may have
        // been cancelled between push and pop).
        let claimed = {
            let mut jobs = core.jobs.lock().expect("jobs lock");
            match jobs.get_mut(&id) {
                Some(e) if e.state == JobState::Submitted => {
                    e.state = JobState::Running;
                    Some((e.spec.clone(), Arc::clone(&e.cancel)))
                }
                _ => None,
            }
        };
        let Some((spec, cancel)) = claimed else {
            continue;
        };
        journal_append(core, &id, &JobState::Running, None);

        core.busy.fetch_add(1, Ordering::SeqCst);
        let outcome = run_job(core, &id, &spec, &cancel);
        core.busy.fetch_sub(1, Ordering::SeqCst);

        if core.abrupt.load(Ordering::SeqCst) {
            // Crash simulation: die without the terminal journal write.
            continue;
        }
        let terminal = match outcome {
            Ok(true) => JobState::Done,
            Ok(false) => JobState::Cancelled,
            Err(e) => JobState::Failed(e.to_string()),
        };
        core.metrics.counter_add(
            "radcrit_serve_jobs_total",
            &[("state", terminal.wire_name())],
            1,
        );
        journal_append(core, &id, &terminal, None);
        core.jobs
            .lock()
            .expect("jobs lock")
            .get_mut(&id)
            .expect("claimed job exists")
            .state = terminal;
        core.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one job to completion (or cancellation). Returns whether every
/// injection finished.
fn run_job(
    core: &Arc<Core>,
    id: &str,
    spec: &JobSpec,
    cancel: &Arc<AtomicBool>,
) -> Result<bool, ServeError> {
    let job_dir = core.config.data_dir.join("jobs").join(id);
    std::fs::create_dir_all(&job_dir)
        .map_err(|e| ServeError::Io(format!("job dir {}: {e}", job_dir.display())))?;
    let campaign: Campaign = spec.campaign()?;
    let checkpoint = job_dir.join("checkpoint.jsonl");
    let job_metrics = Arc::new(MetricsRegistry::new());
    let options = RunOptions {
        resume: checkpoint.exists(),
        checkpoint: Some(checkpoint),
        events_out: Some(job_dir.join("events.jsonl")),
        events_sample: spec.events_sample,
        trace_out: Some(job_dir.join("trace.json")),
        trace_context: spec.trace.clone(),
        trace_epoch: Some(core.epoch),
        profile_out: Some(job_dir.join("profile.json")),
        golden_cache: Some(Arc::clone(&core.cache)),
        cancel: Some(Arc::clone(cancel)),
        metrics: Some(Arc::clone(&job_metrics)),
        full_execution: core.config.full_execution,
        shard: spec.shard,
        force_scalar: spec.force_scalar,
        ..RunOptions::default()
    };
    let result = campaign
        .run_with(&options)
        .map_err(|e| ServeError::Io(format!("campaign: {e}")));

    // Fold the job's metrics into the daemon-wide registry whatever the
    // outcome — failed jobs still spent engine time.
    core.metrics.merge_snapshot(&job_metrics.snapshot());

    let result = result?;
    if !result.is_complete() {
        return Ok(false);
    }
    if core.abrupt.load(Ordering::SeqCst) {
        // Simulated crash between finishing and persisting: the restart
        // replays the checkpoint and rewrites these.
        return Ok(true);
    }
    let summary = result.summary();
    let write = |name: &str, text: String| -> Result<(), ServeError> {
        let path = job_dir.join(name);
        std::fs::write(&path, text).map_err(|e| ServeError::Io(format!("{}: {e}", path.display())))
    };
    write("result.json", format!("{}\n", summary.to_json()))?;
    write(
        "metrics.json",
        format!("{}\n", job_metrics.snapshot().to_json()),
    )?;
    Ok(true)
}

fn journal_append(
    core: &Arc<Core>,
    id: &str,
    state: &JobState,
    submission: Option<(&JobSpec, crate::spec::Priority)>,
) {
    if let Err(e) = core
        .journal
        .lock()
        .expect("journal lock")
        .append(id, state, submission)
    {
        eprintln!("radcrit-serve: journal write failed: {e}");
    }
}

// ---------------------------------------------------------------------
// HTTP routing
// ---------------------------------------------------------------------

fn handle_connection(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(_) => {
            return respond(
                stream,
                400,
                "application/json",
                "{\"error\":\"bad request\"}",
            );
        }
    };
    route(core, stream, &request)
}

fn route(core: &Arc<Core>, stream: &mut TcpStream, req: &Request) -> Result<(), ServeError> {
    // The dashboard links carry `?job=<id>` selectors; routing only
    // looks at the path proper.
    let path = req.path.split('?').next().unwrap_or(&req.path);
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => post_job(core, stream, &req.body),
        ("GET", ["jobs"]) => get_jobs(core, stream),
        ("GET", ["jobs", id]) => get_status(core, stream, id),
        ("GET", ["jobs", id, "result"]) => get_result(core, stream, id),
        ("GET", ["jobs", id, "events"]) => get_events(core, stream, id),
        ("GET", ["jobs", id, "stream"]) => get_stream(core, stream, id, req),
        ("GET", ["jobs", id, "analytics"]) => get_analytics(core, stream, id),
        ("GET", ["jobs", id, "trace"]) => get_trace(core, stream, id),
        ("GET", ["jobs", id, "profile"]) => get_profile(core, stream, id),
        ("GET", ["jobs", id, "metrics"]) => get_job_metrics(core, stream, id),
        ("POST", ["jobs", id, "cancel"]) => post_cancel(core, stream, id),
        ("GET", ["analytics"]) => get_rollup(core, stream),
        ("GET", ["profile"]) => get_profile_rollup(core, stream),
        ("GET", ["dashboard"]) => respond(
            stream,
            200,
            "text/html; charset=utf-8",
            crate::dashboard::DASHBOARD_HTML,
        ),
        ("GET", ["metrics"]) => get_metrics(core, stream),
        ("GET", ["alerts"]) => get_alerts(core, stream),
        ("GET", ["healthz"]) => {
            // Enriched liveness: `"ok":true` stays the first key so
            // plain-text consumers (`curl | grep '"ok":true'`) keep
            // working; `now_us` is the daemon's trace-epoch clock the
            // coordinator probes for offset estimation.
            let busy = core.busy.load(Ordering::SeqCst);
            let pool = core.config.pool.max(1);
            // The daemon's trace epoch is its start time, so uptime and
            // the trace-timeline clock are the same number.
            let now_us = core.epoch.elapsed().as_micros();
            let body = format!(
                "{{\"ok\":true,\"version\":\"{}\",\"isa\":\"{}\",\"uptime_us\":{now_us},\
                 \"now_us\":{now_us},\"workers_busy\":{busy},\"workers_idle\":{},\
                 \"queue_depth\":{},\"outstanding\":{},\"draining\":{}}}",
                env!("CARGO_PKG_VERSION"),
                radcrit_core::exec::active().name(),
                pool.saturating_sub(busy),
                core.queue.len(),
                core.outstanding.load(Ordering::SeqCst),
                core.draining.load(Ordering::SeqCst),
            );
            respond(stream, 200, "application/json", &body)
        }
        ("POST", ["shutdown"]) => {
            core.draining.store(true, Ordering::SeqCst);
            respond(stream, 200, "application/json", "{\"draining\":true}")
        }
        (method, _) if !matches!(method, "GET" | "POST") => respond(
            stream,
            405,
            "application/json",
            "{\"error\":\"method not allowed\"}",
        ),
        _ => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no such route\"}",
        ),
    }
}

fn post_job(core: &Arc<Core>, stream: &mut TcpStream, body: &str) -> Result<(), ServeError> {
    if core.draining.load(Ordering::SeqCst) {
        return respond(
            stream,
            503,
            "application/json",
            "{\"error\":\"draining: the daemon is shutting down\"}",
        );
    }
    let spec = match JobSpec::parse(body) {
        Ok(s) => s,
        Err(e) => {
            let body = format!(
                "{{\"error\":\"{}\"}}",
                radcrit_obs::json::escape(&e.to_string())
            );
            return respond(stream, 400, "application/json", &body);
        }
    };
    // Reserve the id and register the job *before* queueing it, so a
    // worker can never pop an id the map does not know yet.
    let id = job_id(core.next_job.fetch_add(1, Ordering::SeqCst));
    core.jobs.lock().expect("jobs lock").insert(
        id.clone(),
        JobEntry {
            spec: spec.clone(),
            state: JobState::Submitted,
            cancel: Arc::new(AtomicBool::new(false)),
        },
    );
    core.outstanding.fetch_add(1, Ordering::SeqCst);
    // The Submitted record (the only one carrying the spec) must hit the
    // journal *before* the id becomes poppable: an idle worker claims a
    // pushed job immediately and appends its Running record, and replay
    // needs the spec-bearing record first. A refused push is compensated
    // below with a terminal Cancelled record.
    journal_append(
        core,
        &id,
        &JobState::Submitted,
        Some((&spec, spec.priority)),
    );
    match core.queue.push(&id, spec.priority) {
        Ok(()) => {
            core.metrics
                .counter_add("radcrit_serve_jobs_submitted_total", &[], 1);
            let body = format!("{{\"job\":\"{id}\",\"status\":\"submitted\"}}");
            respond(stream, 202, "application/json", &body)
        }
        Err(refusal) => {
            // Only unwind if a concurrent cancel has not already turned
            // the entry terminal (it journals and decrements itself).
            let still_submitted = {
                let mut jobs = core.jobs.lock().expect("jobs lock");
                match jobs.get(&id) {
                    Some(e) if e.state == JobState::Submitted => {
                        jobs.remove(&id);
                        true
                    }
                    _ => false,
                }
            };
            if still_submitted {
                journal_append(core, &id, &JobState::Cancelled, None);
                core.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            let (status, error) = match refusal {
                PushError::Full => (429, "queue full: retry later"),
                PushError::Closed => (503, "draining: the daemon is shutting down"),
            };
            let body = format!("{{\"error\":\"{error}\"}}");
            respond(stream, status, "application/json", &body)
        }
    }
}

fn get_status(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    let jobs = core.jobs.lock().expect("jobs lock");
    let Some(entry) = jobs.get(id) else {
        drop(jobs);
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    };
    let mut body = format!(
        "{{\"job\":\"{id}\",\"status\":\"{}\"",
        entry.state.wire_name()
    );
    if let JobState::Failed(error) = &entry.state {
        body.push_str(&format!(
            ",\"error\":\"{}\"",
            radcrit_obs::json::escape(error)
        ));
    }
    body.push('}');
    drop(jobs);
    respond(stream, 200, "application/json", &body)
}

fn get_result(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    let state = {
        let jobs = core.jobs.lock().expect("jobs lock");
        jobs.get(id).map(|e| e.state.clone())
    };
    match state {
        None => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        ),
        Some(JobState::Done) => {
            let path = core
                .config
                .data_dir
                .join("jobs")
                .join(id)
                .join("result.json");
            match std::fs::read_to_string(&path) {
                Ok(body) => respond(stream, 200, "application/json", &body),
                Err(e) => {
                    let body = format!(
                        "{{\"error\":\"result missing: {}\"}}",
                        radcrit_obs::json::escape(&e.to_string())
                    );
                    respond(stream, 500, "application/json", &body)
                }
            }
        }
        Some(JobState::Failed(error)) => {
            let body = format!(
                "{{\"error\":\"job failed: {}\"}}",
                radcrit_obs::json::escape(&error)
            );
            respond(stream, 409, "application/json", &body)
        }
        Some(state) => {
            let body = format!(
                "{{\"error\":\"job is {}, result not available\"}}",
                state.wire_name()
            );
            respond(stream, 409, "application/json", &body)
        }
    }
}

fn get_events(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    if !core.jobs.lock().expect("jobs lock").contains_key(id) {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("events.jsonl");
    let mut file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(_) => {
            return respond(
                stream,
                404,
                "application/json",
                "{\"error\":\"no events yet\"}",
            );
        }
    };
    respond_chunked(stream, 200, "application/jsonl", |write| {
        use std::io::Read;
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                return Ok(());
            }
            write(&buf[..n])?;
        }
    })
}

fn get_jobs(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let jobs = core.jobs.lock().expect("jobs lock");
    let rows: Vec<String> = jobs
        .iter()
        .map(|(id, e)| {
            format!(
                "{{\"job\":\"{id}\",\"status\":\"{}\"}}",
                e.state.wire_name()
            )
        })
        .collect();
    drop(jobs);
    let body = format!("{{\"jobs\":[{}]}}", rows.join(","));
    respond(stream, 200, "application/json", &body)
}

/// Whether `id` is known, and if so whether it has reached a terminal
/// state. `None` means unknown job.
fn job_terminal(core: &Arc<Core>, id: &str) -> Option<bool> {
    let jobs = core.jobs.lock().expect("jobs lock");
    jobs.get(id).map(|e| {
        matches!(
            e.state,
            JobState::Done | JobState::Cancelled | JobState::Failed(_)
        )
    })
}

fn get_stream(
    core: &Arc<Core>,
    stream: &mut TcpStream,
    id: &str,
    req: &Request,
) -> Result<(), ServeError> {
    if job_terminal(core, id).is_none() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("events.jsonl");
    let resume_after = crate::live::parse_last_event_id(req.header("last-event-id"));
    let core_for_poll = Arc::clone(core);
    let id = id.to_owned();
    match crate::live::stream_sse(stream, &path, resume_after, &move || {
        // A job deleted mid-stream (never happens today) ends the tail
        // rather than spinning forever.
        job_terminal(&core_for_poll, &id) != Some(false)
    }) {
        Err(ServeError::Disconnected(_)) => Ok(()), // reap quietly
        other => other,
    }
}

fn get_analytics(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    if job_terminal(core, id).is_none() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("events.jsonl");
    if !path.exists() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no events yet\"}",
        );
    }
    match crate::live::fold_events_file(&path) {
        Ok(agg) => respond(stream, 200, "application/json", &agg.to_json()),
        Err(e) => {
            let body = format!(
                "{{\"error\":\"{}\"}}",
                radcrit_obs::json::escape(&e.to_string())
            );
            respond(stream, 500, "application/json", &body)
        }
    }
}

fn get_rollup(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let ids: Vec<String> = core
        .jobs
        .lock()
        .expect("jobs lock")
        .keys()
        .cloned()
        .collect();
    let mut rollup = radcrit_obs::CriticalityAggregator::new();
    let mut folded = 0usize;
    for id in &ids {
        let path = core
            .config
            .data_dir
            .join("jobs")
            .join(id)
            .join("events.jsonl");
        if let Ok(agg) = crate::live::fold_events_file(&path) {
            rollup.merge(&agg);
            folded += 1;
        }
    }
    let body = format!(
        "{{\"jobs\":{},\"folded\":{folded},\"rollup\":{}}}",
        ids.len(),
        rollup.to_json()
    );
    respond(stream, 200, "application/json", &body)
}

fn get_trace(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    if job_terminal(core, id).is_none() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("trace.json");
    match std::fs::read_to_string(&path) {
        Ok(body) => respond(stream, 200, "application/json", &body),
        Err(_) => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no trace yet\"}",
        ),
    }
}

fn get_profile(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    if job_terminal(core, id).is_none() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("profile.json");
    match std::fs::read_to_string(&path) {
        Ok(body) => respond(stream, 200, "application/json", &body),
        Err(_) => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no profile yet\"}",
        ),
    }
}

/// One finished job's metrics snapshot (the JSON the coordinator pulls
/// per shard to build its labelled federation-wide exposition).
fn get_job_metrics(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    if job_terminal(core, id).is_none() {
        return respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        );
    }
    let path = core
        .config
        .data_dir
        .join("jobs")
        .join(id)
        .join("metrics.json");
    match std::fs::read_to_string(&path) {
        Ok(body) => respond(stream, 200, "application/json", &body),
        Err(_) => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"no metrics yet\"}",
        ),
    }
}

/// Daemon-wide phase profile: every finished job's `profile.json`
/// merged into one tree, plus the top self-time phases the dashboard's
/// hot-phases panel renders directly.
fn get_profile_rollup(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    let ids: Vec<String> = core
        .jobs
        .lock()
        .expect("jobs lock")
        .keys()
        .cloned()
        .collect();
    let mut merged = radcrit_obs::ProfileTree::new();
    let mut folded = 0usize;
    for id in &ids {
        let path = core
            .config
            .data_dir
            .join("jobs")
            .join(id)
            .join("profile.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(tree) = radcrit_obs::ProfileTree::from_json(&text) {
                merged.merge(&tree);
                folded += 1;
            }
        }
    }
    let hot: Vec<String> = merged
        .hot_phases(8)
        .iter()
        .map(|(phase, self_ns, count)| {
            format!(
                "{{\"phase\":\"{}\",\"self_ns\":{self_ns},\"count\":{count}}}",
                radcrit_obs::json::escape(phase)
            )
        })
        .collect();
    let body = format!(
        "{{\"jobs\":{},\"folded\":{folded},\"hot\":[{}],\"profile\":{}}}",
        ids.len(),
        hot.join(","),
        merged.to_json()
    );
    respond(stream, 200, "application/json", &body)
}

fn post_cancel(core: &Arc<Core>, stream: &mut TcpStream, id: &str) -> Result<(), ServeError> {
    let verdict = {
        let mut jobs = core.jobs.lock().expect("jobs lock");
        match jobs.get_mut(id) {
            None => None,
            Some(entry) => match &entry.state {
                JobState::Submitted => {
                    core.queue.remove(id);
                    entry.state = JobState::Cancelled;
                    Some(("cancelled", true))
                }
                JobState::Running => {
                    // Cooperative: the worker notices the flag, stops
                    // dispatching, and journals the terminal state.
                    entry.cancel.store(true, Ordering::SeqCst);
                    Some(("cancelling", false))
                }
                terminal => Some((terminal.wire_name(), false)),
            },
        }
    };
    match verdict {
        None => respond(
            stream,
            404,
            "application/json",
            "{\"error\":\"unknown job\"}",
        ),
        Some((status, was_queued)) => {
            if was_queued {
                journal_append(core, id, &JobState::Cancelled, None);
                core.metrics
                    .counter_add("radcrit_serve_jobs_total", &[("state", "cancelled")], 1);
                core.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
            let body = format!("{{\"job\":\"{id}\",\"status\":\"{status}\"}}");
            respond(stream, 200, "application/json", &body)
        }
    }
}

/// Feeds the daemon's health rules one fresh sample (queue depth is the
/// daemon-level signal; the fleet rules stay idle without coordinator
/// inputs), logs any firing/resolved edges as structured JSONL lines,
/// and mirrors the engine's state onto the metrics registry.
fn evaluate_alerts(core: &Arc<Core>) {
    let sample = HealthSample {
        queue_depth: Some(core.queue.len() as u64),
        ..HealthSample::default()
    };
    let mut engine = core.alerts.lock().expect("alerts lock");
    let edges = engine.observe(Instant::now(), sample);
    for edge in &edges {
        eprintln!("{}", edge.to_json_line());
    }
    radcrit_obs::alerts::export_edges(&edges, &core.metrics);
    engine.export_gauges(&core.metrics);
}

fn get_alerts(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    evaluate_alerts(core);
    let body = core.alerts.lock().expect("alerts lock").to_json();
    respond(stream, 200, "application/json", &body)
}

fn get_metrics(core: &Arc<Core>, stream: &mut TcpStream) -> Result<(), ServeError> {
    evaluate_alerts(core);
    // Scrape-time gauges: queue, worker occupancy and cache residency.
    let m = &core.metrics;
    let queued = core.queue.len();
    let busy = core.busy.load(Ordering::SeqCst);
    let pool = core.config.pool.max(1);
    m.gauge_set("radcrit_queue_depth", &[], queued as f64);
    m.gauge_set("radcrit_workers_busy", &[], busy as f64);
    m.gauge_set(
        "radcrit_workers_idle",
        &[],
        pool.saturating_sub(busy) as f64,
    );
    m.gauge_set("radcrit_serve_queue_depth", &[], queued as f64);
    m.gauge_set(
        "radcrit_serve_outstanding_jobs",
        &[],
        core.outstanding.load(Ordering::SeqCst) as f64,
    );
    let cache = core.cache.stats();
    m.gauge_set("radcrit_golden_cache_entries", &[], cache.entries as f64);
    m.gauge_set("radcrit_golden_cache_bytes", &[], cache.bytes as f64);
    respond(
        stream,
        200,
        "text/plain; version=0.0.4",
        &m.snapshot().to_prometheus(),
    )
}
