//! Live analytics plumbing: SSE tailing of a job's event stream and
//! on-demand [`CriticalityAggregator`] folds of event files.
//!
//! ## SSE framing
//!
//! `GET /jobs/:id/stream` replays a job's `events.jsonl` as
//! `text/event-stream` frames and keeps tailing the file while the job
//! runs:
//!
//! ```text
//! id: 41
//! data: {"e":"provenance","i":41,...}
//!
//! ```
//!
//! The frame id is the 0-based *line ordinal* of the event file — stable
//! across daemon restarts because the [`radcrit_obs::EventWriter`]
//! emits a deterministic stream for a fixed seed. A client reconnecting
//! with `Last-Event-ID: N` (which browsers' `EventSource` sends
//! automatically) resumes at line `N + 1`. Only newline-terminated lines
//! are ever framed, so a torn tail left by a crash mid-write is simply
//! held back until the resumed job completes the line.
//!
//! A client that goes away mid-stream surfaces as
//! [`ServeError::Disconnected`]: the handler reaps the connection and
//! the job keeps running.

use std::io::{Read, Seek, SeekFrom};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use radcrit_obs::CriticalityAggregator;

use crate::error::ServeError;
use crate::http::respond_chunked;

/// How often the SSE tail re-checks a live event file for new lines.
pub const TAIL_POLL: Duration = Duration::from_millis(50);

/// How long an SSE stream may stay silent before a `: ping` comment
/// frame is emitted. Keep-alives defeat idle-connection reaping by
/// proxies and let clients distinguish "no events yet" from a dead
/// socket. Comment frames carry no `id:`, so line ordinals — and
/// `Last-Event-ID` resume — are unaffected by however many pings a
/// connection saw.
pub const SSE_PING_INTERVAL: Duration = Duration::from_secs(15);

/// Folds an event file into a [`CriticalityAggregator`].
///
/// # Errors
///
/// [`ServeError::Io`] when the file cannot be read or an event line is
/// structurally broken (a trailing torn line is tolerated, not an
/// error).
pub fn fold_events_file(path: &Path) -> Result<CriticalityAggregator, ServeError> {
    CriticalityAggregator::from_events_path(path)
        .map_err(|e| ServeError::Io(format!("fold {}: {e}", path.display())))
}

/// Streams `events_path` to `stream` as Server-Sent Events.
///
/// Emits every complete line with ordinal `> resume_after` (all lines
/// when `None`), then keeps tailing until `is_terminal()` reports the
/// job finished *and* the file is exhausted; a final id-less
/// `event: end` frame tells well-behaved clients to close instead of
/// auto-reconnecting. The file may not exist yet (job still queued) —
/// the tail waits for it to appear. After [`SSE_PING_INTERVAL`] of
/// silence a `: ping` comment frame keeps the connection warm.
///
/// # Errors
///
/// [`ServeError::Disconnected`] when the client goes away mid-stream,
/// [`ServeError::Io`] on file errors.
pub fn stream_sse(
    stream: &mut TcpStream,
    events_path: &Path,
    resume_after: Option<u64>,
    is_terminal: &dyn Fn() -> bool,
) -> Result<(), ServeError> {
    stream_sse_with_ping(
        stream,
        events_path,
        resume_after,
        is_terminal,
        SSE_PING_INTERVAL,
    )
}

/// [`stream_sse`] with an explicit keep-alive interval (tests shrink it
/// to observe pings without waiting 15 s).
fn stream_sse_with_ping(
    stream: &mut TcpStream,
    events_path: &Path,
    resume_after: Option<u64>,
    is_terminal: &dyn Fn() -> bool,
    ping_interval: Duration,
) -> Result<(), ServeError> {
    let first = resume_after.map_or(0, |n| n.saturating_add(1));
    let mut client_gone: Option<String> = None;
    let result = respond_chunked(stream, 200, "text/event-stream", |write| {
        // Wrapper marking failures that came from the *client* socket,
        // so they can be retyped as Disconnected rather than Io below.
        let mut send = |frame: &str| -> std::io::Result<()> {
            write(frame.as_bytes()).inspect_err(|e| client_gone = Some(e.to_string()))
        };

        let mut file: Option<std::fs::File> = None;
        let mut pos: u64 = 0; // byte offset of the first unframed line
        let mut line_no: u64 = 0; // ordinal of the line starting at pos
        let mut last_sent = std::time::Instant::now();
        loop {
            // The file appears only once the worker claims the job.
            let settled = is_terminal();
            if file.is_none() {
                file = std::fs::File::open(events_path).ok();
            }
            let mut progressed = false;
            if let Some(f) = &mut file {
                f.seek(SeekFrom::Start(pos))?;
                let mut fresh = String::new();
                f.read_to_string(&mut fresh)?;
                // Frame complete lines only; a torn tail stays pending.
                while let Some(nl) = fresh.find('\n') {
                    let line: String = fresh.drain(..=nl).collect();
                    pos += line.len() as u64;
                    let line = line.trim_end();
                    if line_no >= first && !line.is_empty() {
                        send(&format!("id: {line_no}\ndata: {line}\n\n"))?;
                        progressed = true;
                    }
                    line_no += 1;
                }
            }
            // Ordering matters: terminal was sampled *before* the read,
            // so a line appended in between is picked up next round, not
            // lost.
            if settled && !progressed {
                send("event: end\ndata: {}\n\n")?;
                return Ok(());
            }
            // A file deleted mid-tail can never complete its stream: the
            // stale descriptor reads nothing and a recreated file would
            // restart the ordinals. Surface it as a clean end so clients
            // close instead of polling (or reconnecting) into the hole —
            // even when the job never reaches a terminal state.
            if !progressed && file.is_some() && !events_path.exists() {
                send("event: end\ndata: {}\n\n")?;
                return Ok(());
            }
            if progressed {
                last_sent = std::time::Instant::now();
            } else {
                if last_sent.elapsed() >= ping_interval {
                    send(": ping\n\n")?;
                    last_sent = std::time::Instant::now();
                }
                std::thread::sleep(TAIL_POLL);
            }
        }
    });
    match (result, client_gone) {
        (Err(_), Some(reason)) => Err(ServeError::Disconnected(reason)),
        (other, _) => other,
    }
}

/// Parses the `Last-Event-ID` header value (`None` when absent or not a
/// number — a malformed value degrades to a full replay, never an
/// error).
pub fn parse_last_event_id(value: Option<&str>) -> Option<u64> {
    value.and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use crate::http::read_response;

    fn temp_events(tag: &str, lines: &[&str]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("radcrit-live-{tag}-{}.jsonl", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        for l in lines {
            writeln!(f, "{l}").unwrap();
        }
        path
    }

    /// Runs `stream_sse` over a real socket pair and returns the decoded
    /// client-side body.
    fn sse_exchange(path: &std::path::Path, resume_after: Option<u64>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let path = path.to_path_buf();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream_sse(&mut stream, &path, resume_after, &|| true).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let response = read_response(&mut client).unwrap();
        server.join().unwrap();
        assert_eq!(response.status, 200);
        response.body
    }

    #[test]
    fn frames_carry_the_line_ordinal_as_id() {
        let path = temp_events("ids", &["{\"e\":\"a\"}", "{\"e\":\"b\"}"]);
        let body = sse_exchange(&path, None);
        assert!(body.contains("id: 0\ndata: {\"e\":\"a\"}\n\n"), "{body}");
        assert!(body.contains("id: 1\ndata: {\"e\":\"b\"}\n\n"), "{body}");
        assert!(body.ends_with("event: end\ndata: {}\n\n"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_event_id_resumes_past_already_seen_lines() {
        let path = temp_events(
            "resume",
            &["{\"e\":\"a\"}", "{\"e\":\"b\"}", "{\"e\":\"c\"}"],
        );
        let body = sse_exchange(&path, Some(1));
        assert!(!body.contains("id: 0\n"), "{body}");
        assert!(!body.contains("id: 1\n"), "{body}");
        assert!(body.contains("id: 2\ndata: {\"e\":\"c\"}\n\n"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_held_back_until_completed() {
        let path = temp_events("torn", &["{\"e\":\"a\"}"]);
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"e\":\"tor").unwrap(); // no newline: torn
        }
        let terminal = Arc::new(AtomicBool::new(false));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let path = path.clone();
            let terminal = Arc::clone(&terminal);
            std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                stream_sse(&mut stream, &path, None, &|| {
                    terminal.load(Ordering::SeqCst)
                })
                .unwrap();
            })
        };
        let mut client = TcpStream::connect(addr).unwrap();
        // Give the tail a moment, then finish the torn line and only
        // afterwards declare the job terminal.
        std::thread::sleep(Duration::from_millis(120));
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "n\"}}").unwrap();
        }
        terminal.store(true, Ordering::SeqCst);
        let body = read_response(&mut client).unwrap().body;
        server.join().unwrap();
        assert!(
            body.contains("id: 1\ndata: {\"e\":\"torn\"}\n\n"),
            "completed torn line must be framed whole: {body}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deleted_event_file_ends_the_stream_cleanly() {
        let path = temp_events("deleted", &["{\"e\":\"a\"}"]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let path = path.clone();
            std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                // Never terminal: only the deletion can end the tail.
                stream_sse(&mut stream, &path, None, &|| false)
            })
        };
        let mut client = TcpStream::connect(addr).unwrap();
        // Let the tail frame the existing line, then pull the file out
        // from under it.
        std::thread::sleep(Duration::from_millis(120));
        std::fs::remove_file(&path).unwrap();
        let body = read_response(&mut client).unwrap().body;
        let result = server.join().unwrap();
        assert!(result.is_ok(), "deletion must end the tail: {result:?}");
        assert!(body.contains("id: 0\ndata: {\"e\":\"a\"}\n\n"), "{body}");
        assert!(body.ends_with("event: end\ndata: {}\n\n"), "{body}");
    }

    #[test]
    fn a_vanishing_client_is_a_typed_disconnect() {
        let path = temp_events("gone", &["{\"e\":\"a\"}"]);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let path = path.clone();
            std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                // Never terminal: the tail keeps writing until the
                // client-side drop turns writes into errors.
                stream_sse(&mut stream, &path, None, &|| false)
            })
        };
        drop(TcpStream::connect(addr).unwrap());
        // Keep the file growing so the server keeps writing into the
        // dead socket (one small frame may land in kernel buffers).
        for i in 0..200 {
            if server.is_finished() {
                break;
            }
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(
                f,
                "{{\"e\":\"fill\",\"i\":{i},\"pad\":\"{}\"}}",
                "x".repeat(4096)
            )
            .unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let result = server.join().unwrap();
        assert!(
            matches!(result, Err(ServeError::Disconnected(_))),
            "expected Disconnected, got {result:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// Runs `stream_sse_with_ping` with a tiny ping interval over a
    /// socket pair, appending `late_line` and flipping terminal after
    /// `quiet`, and returns the decoded body.
    fn sse_exchange_with_pings(
        path: &std::path::Path,
        resume_after: Option<u64>,
        quiet: Duration,
        late_line: &str,
    ) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let terminal = Arc::new(AtomicBool::new(false));
        let server = {
            let path = path.to_path_buf();
            let terminal = Arc::clone(&terminal);
            std::thread::spawn(move || {
                let (mut stream, _) = listener.accept().unwrap();
                stream_sse_with_ping(
                    &mut stream,
                    &path,
                    resume_after,
                    &|| terminal.load(Ordering::SeqCst),
                    Duration::from_millis(30),
                )
                .unwrap();
            })
        };
        let mut client = TcpStream::connect(addr).unwrap();
        // Stay silent long enough for several pings, then append the
        // late line and let the stream finish.
        std::thread::sleep(quiet);
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new().append(true).open(path).unwrap();
            writeln!(f, "{late_line}").unwrap();
        }
        terminal.store(true, Ordering::SeqCst);
        let body = read_response(&mut client).unwrap().body;
        server.join().unwrap();
        body
    }

    #[test]
    fn idle_stream_interleaves_ping_comment_frames_without_ids() {
        let path = temp_events("ping", &["{\"e\":\"a\"}"]);
        let body =
            sse_exchange_with_pings(&path, None, Duration::from_millis(200), "{\"e\":\"b\"}");
        // Data frames stay ordinal-addressed around the pings.
        assert!(body.contains("id: 0\ndata: {\"e\":\"a\"}\n\n"), "{body}");
        assert!(body.contains("id: 1\ndata: {\"e\":\"b\"}\n\n"), "{body}");
        // Several keep-alives landed between the two data frames, and
        // none of them carries an id.
        let between = &body[body.find("id: 0").unwrap()..body.find("id: 1").unwrap()];
        assert!(
            between.matches(": ping\n\n").count() >= 2,
            "expected >=2 pings in the quiet window: {body}"
        );
        for frame in body.split("\n\n") {
            if frame.contains("ping") {
                assert!(
                    !frame.contains("id:"),
                    "ping frames must not carry ids: {frame}"
                );
            }
        }
        assert!(body.ends_with("event: end\ndata: {}\n\n"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_event_id_resume_is_unaffected_by_pings() {
        let path = temp_events("ping-resume", &["{\"e\":\"a\"}", "{\"e\":\"b\"}"]);
        // A client that saw id 0 (plus any number of pings) reconnects
        // with Last-Event-ID: 0 and must get exactly ids 1 and 2.
        let body =
            sse_exchange_with_pings(&path, Some(0), Duration::from_millis(150), "{\"e\":\"c\"}");
        assert!(!body.contains("id: 0\n"), "{body}");
        assert!(body.contains("id: 1\ndata: {\"e\":\"b\"}\n\n"), "{body}");
        assert!(body.contains("id: 2\ndata: {\"e\":\"c\"}\n\n"), "{body}");
        assert!(body.contains(": ping\n\n"), "{body}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_event_id_parsing_is_lenient() {
        assert_eq!(parse_last_event_id(None), None);
        assert_eq!(parse_last_event_id(Some("17")), Some(17));
        assert_eq!(parse_last_event_id(Some(" 3 ")), Some(3));
        assert_eq!(parse_last_event_id(Some("nope")), None);
    }
}
