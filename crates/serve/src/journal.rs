//! The crash-safe job-state journal.
//!
//! One append-only JSONL file (`journal.jsonl` in the daemon's data
//! directory) records every job transition, in the same spirit as the
//! campaign checkpoint: a versioned header line, one self-contained JSON
//! line per transition, flushed per append, and a *torn final line is
//! tolerated* on replay — a daemon killed mid-write restarts cleanly.
//!
//! Replay folds the lines into the latest state per job. Jobs whose last
//! state is `submitted` or `running` were in flight when the previous
//! daemon died; the restarted daemon re-enqueues them, and the campaign
//! checkpoint inside the job directory takes care of not re-running
//! injection indices that already finished.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use radcrit_obs::json;

use crate::error::ServeError;
use crate::spec::{JobSpec, Priority};

/// Journal format version accepted by this build.
pub const JOURNAL_VERSION: usize = 1;

/// One job-state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and queued.
    Submitted,
    /// Claimed by a worker.
    Running,
    /// Finished; `result.json` exists.
    Done,
    /// Failed with an error message.
    Failed(String),
    /// Cancelled by a client.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn wire_name(&self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is terminal (the job will never run again).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// A job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// The job id (`job-NNNNNN`).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Queue priority.
    pub priority: Priority,
    /// The job's latest journaled state.
    pub state: JobState,
}

/// Append handle over the journal file.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and replays it.
    ///
    /// Returns the handle positioned for appending plus every job seen,
    /// in first-submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem problems, [`ServeError::Protocol`]
    /// when an interior line (not the torn tail) is damaged or the header
    /// version is unknown.
    pub fn open(path: &Path) -> Result<(Self, Vec<ReplayedJob>), ServeError> {
        let io = |e: std::io::Error| ServeError::Io(format!("journal {}: {e}", path.display()));
        let mut text = String::new();
        let existed = match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text).map_err(io)?;
                true
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(io(e)),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            // Drop the torn tail (a kill mid-write) so the next append
            // starts on a clean line and later replays never see the
            // damaged fragment as a "complete" record.
            let keep = text.rfind('\n').map_or(0, |i| i + 1);
            OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(keep as u64))
                .map_err(io)?;
            text.truncate(keep);
        }
        let jobs = if existed {
            replay(&text, path)?
        } else {
            Vec::new()
        };

        // Compact a journal that has accumulated many transitions per
        // job: rewrite it as one spec-bearing record per job at its
        // latest state. Without this, the append-only file grows without
        // bound and every restart replays the full history.
        let lines = text.lines().count();
        let mut compacted = false;
        if lines > jobs.len() * COMPACT_FACTOR + COMPACT_SLACK {
            compact(path, &jobs).map_err(io)?;
            compacted = true;
        }

        let mut writer = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(io)?,
        );
        if (!existed || text.is_empty()) && !compacted {
            writeln!(writer, "{{\"radcrit_job_journal\":{JOURNAL_VERSION}}}").map_err(io)?;
            writer.flush().map_err(io)?;
        }
        Ok((
            Journal {
                writer,
                path: path.to_owned(),
            },
            jobs,
        ))
    }

    /// Appends one transition and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the write fails.
    pub fn append(
        &mut self,
        id: &str,
        state: &JobState,
        submission: Option<(&JobSpec, Priority)>,
    ) -> Result<(), ServeError> {
        writeln!(self.writer, "{}", render_line(id, state, submission))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io(format!("journal {}: {e}", self.path.display())))
    }
}

/// Renders one journal record.
fn render_line(id: &str, state: &JobState, submission: Option<(&JobSpec, Priority)>) -> String {
    let mut line = format!(
        "{{\"job\":\"{}\",\"state\":\"{}\"",
        json::escape(id),
        state.wire_name()
    );
    if let JobState::Failed(error) = state {
        line.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
    }
    if let Some((spec, priority)) = submission {
        line.push_str(&format!(
            ",\"priority\":\"{}\",\"spec\":{}",
            priority.wire_name(),
            spec.to_json()
        ));
    }
    line.push('}');
    line
}

/// Compaction kicks in when the journal holds more than
/// `jobs * COMPACT_FACTOR + COMPACT_SLACK` lines — roughly "several
/// transitions of history per job", so steady-state daemons rewrite the
/// file rarely and small journals never.
const COMPACT_FACTOR: usize = 4;
const COMPACT_SLACK: usize = 16;

/// Rewrites the journal as one record per job (its latest state, with
/// spec and priority) via a temp file + atomic rename, so a crash during
/// compaction leaves either the old or the new journal, never a mix.
fn compact(path: &Path, jobs: &[ReplayedJob]) -> std::io::Result<()> {
    let tmp = path.with_extension("jsonl.compact");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        writeln!(w, "{{\"radcrit_job_journal\":{JOURNAL_VERSION}}}")?;
        for job in jobs {
            writeln!(
                w,
                "{}",
                render_line(&job.id, &job.state, Some((&job.spec, job.priority)))
            )?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Folds journal text into per-job latest states. The final line may be
/// torn (kill mid-write) and is then ignored; damage anywhere else is an
/// error.
///
/// A state record *preceding* the submission record of its id is
/// tolerated: the concurrent submit/cancel paths serialize journal
/// appends so the spec-bearing record lands first, but journals written
/// by older daemons (which pushed before journaling) can hold a worker's
/// `running` line ahead of the `submitted` one. Such an orphan state
/// wins over the later submission record's state — it was appended by a
/// worker or cancel that acted *after* the submission. An orphan whose
/// spec record never arrives is dropped (it cannot be run).
fn replay(text: &str, path: &Path) -> Result<Vec<ReplayedJob>, ServeError> {
    let corrupt = |line_no: usize, m: String| {
        ServeError::Protocol(format!("journal {} line {line_no}: {m}", path.display()))
    };
    let lines: Vec<&str> = text.lines().collect();
    let complete = if text.ends_with('\n') {
        lines.len()
    } else {
        lines.len().saturating_sub(1)
    };

    let mut jobs: Vec<ReplayedJob> = Vec::new();
    // Index into `jobs` so replay stays O(lines) while keeping
    // first-submission order in the Vec itself.
    let mut by_id: HashMap<String, usize> = HashMap::new();
    // States seen before their id's submission record (see above).
    let mut orphans: HashMap<String, JobState> = HashMap::new();
    for (i, line) in lines.iter().take(complete).enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // The unterminated tail was already excluded from `complete`;
        // every remaining line is a full record and must parse.
        let v = json::parse_line(line).map_err(|m| corrupt(i + 1, m))?;
        let obj = json::as_obj(&v).map_err(|m| corrupt(i + 1, m))?;
        if let Ok(version) = json::get_usize(obj, "radcrit_job_journal") {
            if version != JOURNAL_VERSION {
                return Err(corrupt(
                    i + 1,
                    format!("unsupported journal version {version}"),
                ));
            }
            continue;
        }
        let id = json::get_str(obj, "job").map_err(|m| corrupt(i + 1, m))?;
        let state = match json::get_str(obj, "state").map_err(|m| corrupt(i + 1, m))? {
            "submitted" => JobState::Submitted,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed(
                json::get_str(obj, "error")
                    .map(str::to_owned)
                    .unwrap_or_else(|_| "unknown error".to_owned()),
            ),
            "cancelled" => JobState::Cancelled,
            other => return Err(corrupt(i + 1, format!("unknown state {other:?}"))),
        };
        match by_id.get(id) {
            Some(&at) => jobs[at].state = state,
            None => match json::get(obj, "spec") {
                Ok(spec_value) => {
                    let spec = JobSpec::from_value(spec_value)
                        .map_err(|e| corrupt(i + 1, e.to_string()))?;
                    let priority = json::get_str(obj, "priority")
                        .ok()
                        .map_or(Ok(Priority::Normal), Priority::from_wire)
                        .map_err(|e| corrupt(i + 1, e.to_string()))?;
                    by_id.insert(id.to_owned(), jobs.len());
                    jobs.push(ReplayedJob {
                        id: id.to_owned(),
                        spec,
                        priority,
                        // The orphan acted after the submission: it wins.
                        state: orphans.remove(id).unwrap_or(state),
                    });
                }
                Err(_) => {
                    orphans.insert(id.to_owned(), state);
                }
            },
        }
    }
    Ok(jobs)
}

/// The numeric suffix of `job-NNNNNN` ids, for allocating the next one.
pub fn job_number(id: &str) -> Option<u64> {
    id.strip_prefix("job-")?.parse().ok()
}

/// Renders a job id from its number.
pub fn job_id(number: u64) -> String {
    format!("job-{number:06}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_campaign::KernelSpec;

    use crate::spec::DeviceKind;

    fn temp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "radcrit-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&p).ok();
        p
    }

    fn spec() -> JobSpec {
        JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n: 32 }, 10, 7)
    }

    #[test]
    fn transitions_fold_to_latest_state() {
        let path = temp("fold");
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::High)),
            )
            .unwrap();
            j.append(
                "job-000002",
                &JobState::Submitted,
                Some((&spec(), Priority::Low)),
            )
            .unwrap();
            j.append("job-000001", &JobState::Running, None).unwrap();
            j.append("job-000001", &JobState::Done, None).unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id, "job-000001");
        assert_eq!(replayed[0].state, JobState::Done);
        assert_eq!(replayed[0].priority, Priority::High);
        assert_eq!(replayed[0].spec, spec());
        assert_eq!(replayed[1].state, JobState::Submitted);
        assert_eq!(replayed[1].priority, Priority::Low);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_terminated() {
        let path = temp("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
            j.append("job-000001", &JobState::Running, None).unwrap();
        }
        // Simulate a kill mid-write: append half a line without newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"job-0000").unwrap();
        drop(f);

        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].state, JobState::Running, "tail ignored");
        // The journal still appends cleanly after the torn tail.
        j.append("job-000001", &JobState::Done, None).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed[0].state, JobState::Done);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_record_before_submission_is_tolerated() {
        // Journals written by older daemons (push before journal) can
        // hold a worker's `running` line ahead of the spec-bearing
        // `submitted` one; replay must not refuse to start over it.
        let path = temp("orphan");
        let spec_json = spec().to_json();
        std::fs::write(
            &path,
            format!(
                "{{\"radcrit_job_journal\":{JOURNAL_VERSION}}}\n\
                 {{\"job\":\"job-000001\",\"state\":\"running\"}}\n\
                 {{\"job\":\"job-000001\",\"state\":\"submitted\",\
                   \"priority\":\"high\",\"spec\":{spec_json}}}\n\
                 {{\"job\":\"job-000002\",\"state\":\"running\"}}\n"
            ),
        )
        .unwrap();
        let (_, replayed) = Journal::open(&path).unwrap();
        // The orphan state wins (the worker acted after the submission),
        // and an orphan whose spec never arrives is dropped.
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].id, "job-000001");
        assert_eq!(replayed[0].state, JobState::Running);
        assert_eq!(replayed[0].priority, Priority::High);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn long_journals_compact_to_one_line_per_job() {
        let path = temp("compact");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            for n in 1..=4u64 {
                j.append(
                    &job_id(n),
                    &JobState::Submitted,
                    Some((&spec(), Priority::Normal)),
                )
                .unwrap();
            }
            // Churn well past the compaction threshold.
            for _ in 0..20 {
                for n in 1..=4u64 {
                    j.append(&job_id(n), &JobState::Running, None).unwrap();
                    j.append(&job_id(n), &JobState::Submitted, None).unwrap();
                }
            }
            for n in 1..=3u64 {
                j.append(&job_id(n), &JobState::Done, None).unwrap();
            }
            j.append(&job_id(4), &JobState::Failed("boom".into()), None)
                .unwrap();
        }
        let before = std::fs::read_to_string(&path).unwrap().lines().count();
        let (mut j, replayed) = Journal::open(&path).unwrap();
        let after = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(after, 1 + 4, "header plus one line per job, had {before}");
        assert_eq!(replayed.len(), 4);
        // The compacted journal replays identically and still appends.
        assert_eq!(replayed[2].state, JobState::Done);
        assert_eq!(replayed[3].state, JobState::Failed("boom".into()));
        j.append(
            &job_id(5),
            &JobState::Submitted,
            Some((&spec(), Priority::Low)),
        )
        .unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[0].state, JobState::Done);
        assert_eq!(replayed[0].spec, spec());
        assert_eq!(replayed[4].state, JobState::Submitted);
        assert_eq!(replayed[4].priority, Priority::Low);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_damage_is_an_error() {
        let path = temp("damage");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("submitted", "sub\"bad")).unwrap();
        assert!(matches!(Journal::open(&path), Err(ServeError::Protocol(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_state_round_trips_its_message() {
        let path = temp("failed");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
            j.append(
                "job-000001",
                &JobState::Failed("strike \"x\" out of range".into()),
                None,
            )
            .unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(
            replayed[0].state,
            JobState::Failed("strike \"x\" out of range".into())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_id_numbering() {
        assert_eq!(job_id(7), "job-000007");
        assert_eq!(job_number("job-000007"), Some(7));
        assert_eq!(job_number("job-1000000"), Some(1_000_000));
        assert_eq!(job_number("nope"), None);
    }
}
