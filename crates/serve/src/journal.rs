//! The crash-safe job-state journal.
//!
//! One append-only JSONL file (`journal.jsonl` in the daemon's data
//! directory) records every job transition, in the same spirit as the
//! campaign checkpoint: a versioned header line, one self-contained JSON
//! line per transition, flushed per append, and a *torn final line is
//! tolerated* on replay — a daemon killed mid-write restarts cleanly.
//!
//! Replay folds the lines into the latest state per job. Jobs whose last
//! state is `submitted` or `running` were in flight when the previous
//! daemon died; the restarted daemon re-enqueues them, and the campaign
//! checkpoint inside the job directory takes care of not re-running
//! injection indices that already finished.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use radcrit_obs::json;

use crate::error::ServeError;
use crate::spec::{JobSpec, Priority};

/// Journal format version accepted by this build.
pub const JOURNAL_VERSION: usize = 1;

/// One job-state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and queued.
    Submitted,
    /// Claimed by a worker.
    Running,
    /// Finished; `result.json` exists.
    Done,
    /// Failed with an error message.
    Failed(String),
    /// Cancelled by a client.
    Cancelled,
}

impl JobState {
    /// The wire name of the state.
    pub fn wire_name(&self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is terminal (the job will never run again).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed(_) | JobState::Cancelled
        )
    }
}

/// A job reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct ReplayedJob {
    /// The job id (`job-NNNNNN`).
    pub id: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Queue priority.
    pub priority: Priority,
    /// The job's latest journaled state.
    pub state: JobState,
}

/// Append handle over the journal file.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and replays it.
    ///
    /// Returns the handle positioned for appending plus every job seen,
    /// in first-submission order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem problems, [`ServeError::Protocol`]
    /// when an interior line (not the torn tail) is damaged or the header
    /// version is unknown.
    pub fn open(path: &Path) -> Result<(Self, Vec<ReplayedJob>), ServeError> {
        let io = |e: std::io::Error| ServeError::Io(format!("journal {}: {e}", path.display()));
        let mut text = String::new();
        let existed = match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text).map_err(io)?;
                true
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
            Err(e) => return Err(io(e)),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            // Drop the torn tail (a kill mid-write) so the next append
            // starts on a clean line and later replays never see the
            // damaged fragment as a "complete" record.
            let keep = text.rfind('\n').map_or(0, |i| i + 1);
            OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(keep as u64))
                .map_err(io)?;
            text.truncate(keep);
        }
        let jobs = if existed {
            replay(&text, path)?
        } else {
            Vec::new()
        };

        let mut writer = BufWriter::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(io)?,
        );
        if !existed || text.is_empty() {
            writeln!(writer, "{{\"radcrit_job_journal\":{JOURNAL_VERSION}}}").map_err(io)?;
            writer.flush().map_err(io)?;
        }
        Ok((
            Journal {
                writer,
                path: path.to_owned(),
            },
            jobs,
        ))
    }

    /// Appends one transition and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the write fails.
    pub fn append(
        &mut self,
        id: &str,
        state: &JobState,
        submission: Option<(&JobSpec, Priority)>,
    ) -> Result<(), ServeError> {
        let mut line = format!(
            "{{\"job\":\"{}\",\"state\":\"{}\"",
            json::escape(id),
            state.wire_name()
        );
        if let JobState::Failed(error) = state {
            line.push_str(&format!(",\"error\":\"{}\"", json::escape(error)));
        }
        if let Some((spec, priority)) = submission {
            line.push_str(&format!(
                ",\"priority\":\"{}\",\"spec\":{}",
                priority.wire_name(),
                spec.to_json()
            ));
        }
        line.push('}');
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io(format!("journal {}: {e}", self.path.display())))
    }
}

/// Folds journal text into per-job latest states. The final line may be
/// torn (kill mid-write) and is then ignored; damage anywhere else is an
/// error.
fn replay(text: &str, path: &Path) -> Result<Vec<ReplayedJob>, ServeError> {
    let corrupt = |line_no: usize, m: String| {
        ServeError::Protocol(format!("journal {} line {line_no}: {m}", path.display()))
    };
    let lines: Vec<&str> = text.lines().collect();
    let complete = if text.ends_with('\n') {
        lines.len()
    } else {
        lines.len().saturating_sub(1)
    };

    let mut jobs: Vec<ReplayedJob> = Vec::new();
    for (i, line) in lines.iter().take(complete).enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // The unterminated tail was already excluded from `complete`;
        // every remaining line is a full record and must parse.
        let v = json::parse_line(line).map_err(|m| corrupt(i + 1, m))?;
        let obj = json::as_obj(&v).map_err(|m| corrupt(i + 1, m))?;
        if let Ok(version) = json::get_usize(obj, "radcrit_job_journal") {
            if version != JOURNAL_VERSION {
                return Err(corrupt(
                    i + 1,
                    format!("unsupported journal version {version}"),
                ));
            }
            continue;
        }
        let id = json::get_str(obj, "job").map_err(|m| corrupt(i + 1, m))?;
        let state = match json::get_str(obj, "state").map_err(|m| corrupt(i + 1, m))? {
            "submitted" => JobState::Submitted,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed(
                json::get_str(obj, "error")
                    .map(str::to_owned)
                    .unwrap_or_else(|_| "unknown error".to_owned()),
            ),
            "cancelled" => JobState::Cancelled,
            other => return Err(corrupt(i + 1, format!("unknown state {other:?}"))),
        };
        match jobs.iter_mut().find(|j| j.id == id) {
            Some(job) => job.state = state,
            None => {
                let spec_value = json::get(obj, "spec").map_err(|m| corrupt(i + 1, m))?;
                let spec =
                    JobSpec::from_value(spec_value).map_err(|e| corrupt(i + 1, e.to_string()))?;
                let priority = json::get_str(obj, "priority")
                    .ok()
                    .map_or(Ok(Priority::Normal), Priority::from_wire)
                    .map_err(|e| corrupt(i + 1, e.to_string()))?;
                jobs.push(ReplayedJob {
                    id: id.to_owned(),
                    spec,
                    priority,
                    state,
                });
            }
        }
    }
    Ok(jobs)
}

/// The numeric suffix of `job-NNNNNN` ids, for allocating the next one.
pub fn job_number(id: &str) -> Option<u64> {
    id.strip_prefix("job-")?.parse().ok()
}

/// Renders a job id from its number.
pub fn job_id(number: u64) -> String {
    format!("job-{number:06}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_campaign::KernelSpec;

    use crate::spec::DeviceKind;

    fn temp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "radcrit-journal-{tag}-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&p).ok();
        p
    }

    fn spec() -> JobSpec {
        JobSpec::new(DeviceKind::K40, KernelSpec::Dgemm { n: 32 }, 10, 7)
    }

    #[test]
    fn transitions_fold_to_latest_state() {
        let path = temp("fold");
        {
            let (mut j, replayed) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::High)),
            )
            .unwrap();
            j.append(
                "job-000002",
                &JobState::Submitted,
                Some((&spec(), Priority::Low)),
            )
            .unwrap();
            j.append("job-000001", &JobState::Running, None).unwrap();
            j.append("job-000001", &JobState::Done, None).unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].id, "job-000001");
        assert_eq!(replayed[0].state, JobState::Done);
        assert_eq!(replayed[0].priority, Priority::High);
        assert_eq!(replayed[0].spec, spec());
        assert_eq!(replayed[1].state, JobState::Submitted);
        assert_eq!(replayed[1].priority, Priority::Low);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_terminated() {
        let path = temp("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
            j.append("job-000001", &JobState::Running, None).unwrap();
        }
        // Simulate a kill mid-write: append half a line without newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"job-0000").unwrap();
        drop(f);

        let (mut j, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].state, JobState::Running, "tail ignored");
        // The journal still appends cleanly after the torn tail.
        j.append("job-000001", &JobState::Done, None).unwrap();
        drop(j);
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(replayed[0].state, JobState::Done);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_damage_is_an_error() {
        let path = temp("damage");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("submitted", "sub\"bad")).unwrap();
        assert!(matches!(Journal::open(&path), Err(ServeError::Protocol(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_state_round_trips_its_message() {
        let path = temp("failed");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append(
                "job-000001",
                &JobState::Submitted,
                Some((&spec(), Priority::Normal)),
            )
            .unwrap();
            j.append(
                "job-000001",
                &JobState::Failed("strike \"x\" out of range".into()),
                None,
            )
            .unwrap();
        }
        let (_, replayed) = Journal::open(&path).unwrap();
        assert_eq!(
            replayed[0].state,
            JobState::Failed("strike \"x\" out of range".into())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_id_numbering() {
        assert_eq!(job_id(7), "job-000007");
        assert_eq!(job_number("job-000007"), Some(7));
        assert_eq!(job_number("job-1000000"), Some(1_000_000));
        assert_eq!(job_number("nope"), None);
    }
}
