//! The service's error type.

use std::fmt;

/// Everything that can go wrong in the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A malformed job spec, daemon configuration or request.
    Config(String),
    /// An I/O failure (sockets, journal, job artifacts). For client
    /// calls this means the connection was established, so the server
    /// may have received — and acted on — the request before the
    /// failure (e.g. a read timeout waiting for the response).
    Io(String),
    /// A connection could not even be established (resolve or connect
    /// failure): the request never reached the server. Distinguished
    /// from [`ServeError::Io`] so callers can treat a provably
    /// unreached peer (safe to declare dead, safe to resubmit) apart
    /// from one that may have accepted work.
    Unreachable(String),
    /// A server-side HTTP error response with its status code.
    Http {
        /// The HTTP status code of the response.
        status: u16,
        /// The response body text.
        body: String,
    },
    /// A violated wire-protocol expectation (bad framing, bad JSON).
    Protocol(String),
    /// The operation was interrupted (daemon shut down, job cancelled).
    Interrupted(String),
    /// The peer went away mid-stream (a tailing SSE client closed its
    /// connection). Expected during normal operation: handlers log and
    /// reap the connection, never the daemon.
    Disconnected(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "configuration error: {m}"),
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::Unreachable(m) => write!(f, "unreachable: {m}"),
            ServeError::Http { status, body } => write!(f, "HTTP {status}: {body}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Interrupted(m) => write!(f, "interrupted: {m}"),
            ServeError::Disconnected(m) => write!(f, "client disconnected: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
