//! # radcrit-faults
//!
//! The neutron-beam and fault-injection layer of the radcrit workspace:
//! everything between "a neutron arrives" and "a concrete corruption is
//! delivered to the simulated machine".
//!
//! * [`beam`] — accelerated-beam facility presets (LANSCE, ISIS), fluence
//!   bookkeeping, de-rating and the §IV-D single-strike-per-execution
//!   criterion;
//! * [`calib`] — every calibration constant of the sensitivity model, in
//!   one place, each documented with the paper observation motivating it;
//! * [`site`] — the strike-site taxonomy and the per-site cross-section
//!   table derived from a device configuration plus an execution profile;
//! * [`sampler`] — turns cross sections into sampled injection plans:
//!   crash, hang, or a concrete [`radcrit_accel::strike::StrikeSpec`];
//! * [`injector`] — a SASSIFI/GPU-Qin-class *software* fault injector
//!   restricted to architecturally visible sites, the baseline §IV-D
//!   argues beam testing improves upon.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod beam;
pub mod calib;
pub mod injector;
pub mod sampler;
pub mod site;

pub use beam::{BeamSession, Facility};
pub use injector::SoftwareInjector;
pub use sampler::{FaultSampler, InjectionPlan};
pub use site::{Site, SiteTable};
