//! Strike sites and their cross-section table.
//!
//! Beam experiments irradiate *everything* on the die — caches, register
//! files, functional units, scheduler and control logic (§IV-D: fault
//! injectors reach only a subset of these, which is why the paper uses a
//! beam). The probability that a given neutron upsets a given structure
//! is proportional to that structure's exposed sensitive area, which
//! depends on the device *and* on the running program (occupied cache
//! bytes, live registers, pending scheduler entries).

use rand::Rng;
use serde::{Deserialize, Serialize};

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_accel::scheduler::ExposureModel;

use crate::calib::{self, Protection};

/// A machine structure a neutron can upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Site {
    /// Shared L2 cache data.
    CacheL2,
    /// Per-unit L1 cache data.
    CacheL1,
    /// Register file / operand-collector state (scalar devices).
    RegisterFile,
    /// Wide vector register state (Phi's 512-bit VPU).
    VectorRegister,
    /// FPU pipeline latches.
    Fpu,
    /// Transcendental-unit pipeline latches (devices with an exposed
    /// SFU).
    Sfu,
    /// Core control path (store queues, address generation) — the
    /// complex-core site (§V-E).
    CoreControl,
    /// Scheduler state (hardware queue on the K40, per-core task state on
    /// the Phi).
    Scheduler,
    /// Always-fatal logic (instruction fetch, PCIe, clocking).
    FatalLogic,
}

impl Site {
    /// All sites, for iteration.
    pub const ALL: [Site; 9] = [
        Site::CacheL2,
        Site::CacheL1,
        Site::RegisterFile,
        Site::VectorRegister,
        Site::Fpu,
        Site::Sfu,
        Site::CoreControl,
        Site::Scheduler,
        Site::FatalLogic,
    ];

    /// A short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Site::CacheL2 => "l2",
            Site::CacheL1 => "l1",
            Site::RegisterFile => "register_file",
            Site::VectorRegister => "vector_register",
            Site::Fpu => "fpu",
            Site::Sfu => "sfu",
            Site::CoreControl => "core_control",
            Site::Scheduler => "scheduler",
            Site::FatalLogic => "fatal_logic",
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Site {
    type Err = String;

    /// Parses the [`Site::name`] form back into the site. The strings are
    /// a stable external ID: they appear in campaign records, event
    /// streams and provenance reports, and parsing is the exact inverse
    /// of [`std::fmt::Display`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Site::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| format!("unknown fault site {s:?}"))
    }
}

/// Per-site cross sections (in byte-equivalents, see
/// [`calib`]) for one `(device, program)` pair.
///
/// # Examples
///
/// ```
/// use radcrit_accel::{config::DeviceConfig, engine::Engine};
/// use radcrit_faults::site::{Site, SiteTable};
/// # use radcrit_accel::{error::AccelError, memory::{BufferId, DeviceMemory},
/// #                     program::{TileCtx, TileId, TiledProgram}};
/// # use radcrit_core::shape::OutputShape;
/// # #[derive(Debug)] struct Noop(Option<BufferId>);
/// # impl TiledProgram for Noop {
/// #     fn name(&self) -> &str { "noop" }
/// #     fn tile_count(&self) -> usize { 1 }
/// #     fn threads_per_tile(&self) -> usize { 1 }
/// #     fn setup(&mut self, mem: &mut DeviceMemory) -> Result<(), AccelError> {
/// #         self.0 = Some(mem.alloc("o", 1)); Ok(())
/// #     }
/// #     fn execute_tile(&mut self, _: TileId, ctx: &mut TileCtx<'_>) -> Result<(), AccelError> {
/// #         let v = ctx.op(1.0); ctx.write_one(self.0.unwrap(), 0, v)
/// #     }
/// #     fn output(&self) -> BufferId { self.0.unwrap() }
/// #     fn output_shape(&self) -> OutputShape { OutputShape::d1(1) }
/// # }
/// let cfg = DeviceConfig::kepler_k40();
/// let engine = Engine::new(cfg.clone());
/// let mut program = Noop(None);
/// let golden = engine.golden(&mut program).map_err(|e| e.to_string())?;
/// let table = SiteTable::for_program(&cfg, &golden.profile);
/// assert!(table.total() > 0.0);
/// assert!(table.weight(Site::Fpu) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteTable {
    weights: Vec<(Site, f64)>,
    total: f64,
}

impl SiteTable {
    /// Builds the table for a device and an execution profile (from a
    /// golden run).
    pub fn for_program(cfg: &DeviceConfig, profile: &ExecutionProfile) -> Self {
        let prot = Protection::for_config(cfg);
        let sens = cfg.per_bit_sensitivity();
        let exposure = ExposureModel::for_program(
            cfg,
            // Per-launch thread counts: what one kernel launch exposes.
            profile.instantiated_threads,
            profile.resident_threads,
            profile.l2_avg_resident_bytes,
            profile.l1_avg_resident_bytes,
        );

        let mut weights = Vec::new();
        let mut push = |site: Site, w: f64| {
            if w > 0.0 {
                weights.push((site, w));
            }
        };

        push(Site::CacheL2, exposure.l2 * sens * prot.cache);
        push(
            Site::CacheL1,
            exposure.l1 * sens * prot.cache * calib::L1_FACTOR,
        );

        let rf = exposure.register_file * sens * prot.register_file * (1.0 - cfg.ecc_coverage());
        if cfg.vector_lanes_f64() > 1 {
            push(Site::VectorRegister, rf);
        } else {
            push(Site::RegisterFile, rf);
        }

        let units = cfg.units() as f64;
        push(
            Site::Fpu,
            calib::FPU_AREA_PER_UNIT * units * sens * prot.fpu,
        );

        if cfg.exposed_sfu() && profile.transcendental_ops > 0 {
            let util = (profile.transcendental_fraction() * calib::SFU_UTILIZATION_GAIN).min(1.0);
            push(Site::Sfu, calib::SFU_AREA_PER_UNIT * units * sens * util);
        }

        push(
            Site::CoreControl,
            calib::CONTROL_AREA_PER_UNIT * units * sens * prot.control,
        );

        // SCHED_ENTRY_FACTOR is already folded into ExposureModel's
        // per-warp constant; prot.scheduler scales it per device.
        push(Site::Scheduler, exposure.scheduler * sens * prot.scheduler);

        push(
            Site::FatalLogic,
            calib::FATAL_AREA_PER_UNIT * units * sens * prot.fatal,
        );

        let total = weights.iter().map(|(_, w)| w).sum();
        SiteTable { weights, total }
    }

    /// The weight of one site (0 when absent).
    pub fn weight(&self, site: Site) -> f64 {
        self.weights
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// The site's share of the total cross-section.
    pub fn share(&self, site: Site) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.weight(site) / self.total
        }
    }

    /// Total cross-section in byte-equivalents.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Total cross-section in the pseudo-cm² of the single-strike
    /// criterion.
    pub fn total_cm2(&self) -> f64 {
        self.total * calib::BYTE_EQUIV_TO_CM2
    }

    /// Samples a site proportionally to its weight.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty (a program with no exposed state).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Site {
        assert!(self.total > 0.0, "cannot sample from an empty site table");
        let mut x = rng.gen_range(0.0..self.total);
        for (site, w) in &self.weights {
            if x < *w {
                return *site;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }

    /// Iterates `(site, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Site, f64)> + '_ {
        self.weights.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::cache::CacheStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile(tiles: usize, threads: usize, l2_bytes: f64, trans: u64) -> ExecutionProfile {
        ExecutionProfile {
            tiles,
            threads_per_tile: threads,
            instantiated_threads: tiles * threads,
            resident_threads: tiles * threads,
            wave_size: tiles.max(1),
            total_ops: 1_000_000,
            transcendental_ops: trans,
            loads: 100_000,
            stores: 10_000,
            cache: CacheStats::default(),
            l2_avg_resident_bytes: l2_bytes,
            l1_avg_resident_bytes: l2_bytes / 10.0,
        }
    }

    #[test]
    fn site_names_round_trip_through_display_and_from_str() {
        for site in Site::ALL {
            let name = site.to_string();
            assert_eq!(name, site.name());
            assert_eq!(name.parse::<Site>().unwrap(), site, "{name}");
        }
        assert!("l3".parse::<Site>().is_err());
        assert!("".parse::<Site>().is_err());
        assert!("L2".parse::<Site>().is_err(), "IDs are case-sensitive");
    }

    #[test]
    fn k40_has_sfu_and_hw_scheduler_sites() {
        let cfg = DeviceConfig::kepler_k40();
        let t = SiteTable::for_program(&cfg, &profile(4096, 16, 1.0e6, 50_000));
        assert!(t.weight(Site::Sfu) > 0.0, "exposed SFU");
        assert!(t.weight(Site::Scheduler) > 0.0);
        assert!(t.weight(Site::RegisterFile) > 0.0);
        assert_eq!(t.weight(Site::VectorRegister), 0.0, "scalar registers");
    }

    #[test]
    fn phi_has_vector_site_and_no_sfu() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let t = SiteTable::for_program(&cfg, &profile(4096, 4, 1.0e6, 50_000));
        assert_eq!(t.weight(Site::Sfu), 0.0);
        assert!(t.weight(Site::VectorRegister) > 0.0);
        assert_eq!(t.weight(Site::RegisterFile), 0.0);
    }

    #[test]
    fn no_transcendentals_no_sfu_site() {
        let cfg = DeviceConfig::kepler_k40();
        let t = SiteTable::for_program(&cfg, &profile(4096, 16, 1.0e6, 0));
        assert_eq!(t.weight(Site::Sfu), 0.0);
    }

    #[test]
    fn k40_scheduler_weight_grows_with_threads() {
        let cfg = DeviceConfig::kepler_k40();
        let small = SiteTable::for_program(&cfg, &profile(4096, 16, 1.0e6, 0));
        let large = SiteTable::for_program(&cfg, &profile(65536, 16, 1.0e6, 0));
        assert!(
            large.weight(Site::Scheduler) / small.weight(Site::Scheduler) > 10.0,
            "hardware scheduler queue grows with pending blocks"
        );
        // Total cross-section grows markedly: the paper's DGEMM FIT
        // growth driver (§V-A).
        assert!(large.total() / small.total() > 2.0);
    }

    #[test]
    fn phi_total_is_flat_in_threads() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let small = SiteTable::for_program(&cfg, &profile(4096, 4, 1.0e6, 0));
        let large = SiteTable::for_program(&cfg, &profile(65536, 4, 1.0e6, 0));
        let growth = large.total() / small.total();
        assert!(
            growth < 1.3,
            "OS scheduler in DRAM: total must stay nearly flat, grew {growth}"
        );
    }

    #[test]
    fn cache_weight_scales_with_occupancy() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let a = SiteTable::for_program(&cfg, &profile(4096, 4, 1.0e6, 0));
        let b = SiteTable::for_program(&cfg, &profile(4096, 4, 2.0e6, 0));
        let ratio = b.weight(Site::CacheL2) / a.weight(Site::CacheL2);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shares_sum_to_one() {
        let cfg = DeviceConfig::kepler_k40();
        let t = SiteTable::for_program(&cfg, &profile(4096, 16, 1.0e6, 100));
        let sum: f64 = Site::ALL.iter().map(|&s| t.share(s)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_weights() {
        let cfg = DeviceConfig::kepler_k40();
        let t = SiteTable::for_program(&cfg, &profile(65536, 16, 1.0e6, 100_000));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(t.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for site in Site::ALL {
            let expected = t.share(site);
            let observed = *counts.get(&site).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (expected - observed).abs() < 0.01,
                "{site}: expected {expected:.3}, observed {observed:.3}"
            );
        }
    }
}
