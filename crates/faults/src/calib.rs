//! Calibration constants of the sensitivity model.
//!
//! The paper cannot publish absolute cross sections (business-sensitive,
//! §V) and circuit-level sensitivities are proprietary (§IV-A), so this
//! module collects every free constant of the model in one place. Each
//! constant is expressed in *byte-equivalents of exposed SRAM* — the
//! cross-section of one site is
//!
//! ```text
//! σ(site) = exposed_byte_equivalents × per_bit_sensitivity(device) × protection(site, device)
//! ```
//!
//! and only ratios between sites/devices matter (all FIT output is in
//! arbitrary units, like the paper's). Values were tuned so that the
//! relative results of §V hold: who wins, by roughly what factor, where
//! the crossovers fall. They are `pub` so that sensitivity studies can
//! sweep them.

use radcrit_accel::config::{DeviceConfig, DeviceKind};

/// §IV-D: observed output error rates are kept below 10⁻³
/// errors/execution so that at most one neutron corrupts a run.
pub const MAX_ERRORS_PER_EXECUTION: f64 = 1e-3;

/// Conversion from byte-equivalents to the pseudo-cm² used by the
/// single-strike criterion (arbitrary; chosen so realistic kernels pass
/// the §IV-D criterion at LANSCE flux).
pub const BYTE_EQUIV_TO_CM2: f64 = 1e-16;

/// Probability that a fatal event manifests as a crash rather than a
/// hang (the paper reports both, with crashes more common).
pub const CRASH_VS_HANG: f64 = 0.75;

/// Probability that a corrupted scheduler entry kills the kernel instead
/// of mis-dispatching it (§V-A: scheduler corruption "could range from
/// the crash of a device to several improperly scheduled threads").
pub const SCHEDULER_FATAL: f64 = 0.55;

/// Probability that an SRAM strike upsets multiple adjacent bits
/// (multi-bit upsets are a significant fraction at modern nodes, §II-A
/// "single or multiple bit-flips").
pub const MBU_PROBABILITY: f64 = 0.25;

/// Maximum adjacent bits flipped by an MBU.
pub const MBU_MAX_BITS: u32 = 4;

/// Exposed FPU pipeline latch area per execution unit
/// (byte-equivalents).
pub const FPU_AREA_PER_UNIT: f64 = 1500.0;

/// Exposed transcendental-unit (SFU) latch area per unit. Only devices
/// with [`DeviceConfig::exposed_sfu`] have this site; §V-E hypothesises
/// the K40's SFU "is more prone to corruption".
/// Sized so that transcendental-heavy kernels (LavaMD) see the SFU as a
/// major site on the K40, consistent with the paper's ~4x higher LavaMD
/// FIT scale (Fig. 5a vs Fig. 3a) and its "all K40 LavaMD SDCs are
/// significantly different from the expected value" (SS V-B).
pub const SFU_AREA_PER_UNIT: f64 = 20_000.0;

/// Probability that a core-control strike corrupts the unit's task
/// state (garbling its remaining chunk) rather than its store queue.
pub const CONTROL_UNIT_GARBLE: f64 = 0.85;

/// Exposed core control-path area per unit, *before* the per-device
/// complexity factor in [`Protection::control`]. Complex in-order x86
/// cores (Phi) expose far more control state per unit than the K40's
/// simple CUDA cores (§V-E: GPUs "have shortened and faster pipelines
/// compared to CPUs", making purely arithmetic codes more reliable
/// there).
pub const CONTROL_AREA_PER_UNIT: f64 = 600.0;

/// Always-fatal logic area per unit (PCIe interface, instruction fetch,
/// clocking): strikes here crash or hang the device.
pub const FATAL_AREA_PER_UNIT: f64 = 900.0;

/// Scale of one hardware-scheduler entry in byte-equivalents per managed
/// warp (queue slot, dependency and dispatch state).
pub const SCHED_ENTRY_FACTOR: f64 = 8.0;

/// L1 strikes are less productive than L2 strikes (smaller, refilled
/// constantly, write-through): relative factor on occupied L1 bytes.
pub const L1_FACTOR: f64 = 0.5;

/// SFU utilization saturates quickly: the exposure factor is
/// `min(1, trans_fraction × SFU_UTILIZATION_GAIN)`.
pub const SFU_UTILIZATION_GAIN: f64 = 10.0;

/// Per-device, per-structure protection/derating factors (ECC, parity,
/// hardened latches, interleaving). None of these are published for
/// either device; they are the model's calibration surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Protection {
    /// Residual sensitivity of cache data (after ECC/parity).
    pub cache: f64,
    /// Residual sensitivity of register state beyond the explicit ECC
    /// coverage already modeled in the device config.
    pub register_file: f64,
    /// FPU pipeline latch factor.
    pub fpu: f64,
    /// Control-path complexity factor.
    pub control: f64,
    /// Scheduler state factor.
    pub scheduler: f64,
    /// Always-fatal logic factor.
    pub fatal: f64,
}

impl Protection {
    /// Protection profile for a device kind.
    ///
    /// * **K40**: caches carry ECC but the planar cells' MBU rate leaves
    ///   a residual; its hardware scheduler queue is unprotected; simple
    ///   cores expose little control state.
    /// * **Xeon Phi**: caches carry ECC on robust Tri-gate cells (small
    ///   residual); no hardware scheduler queue; complex in-order x86
    ///   cores with wide vector pipelines expose much more control state
    ///   per unit.
    /// * **Custom**: neutral factors.
    pub fn for_device(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::KeplerK40 => Protection {
                cache: 0.06,
                register_file: 1.0,
                fpu: 1.0,
                control: 1.0,
                scheduler: 1.0,
                fatal: 1.0,
            },
            DeviceKind::XeonPhi3120A => Protection {
                cache: 0.03,
                register_file: 1.0,
                fpu: 1.0,
                control: 35.0,
                scheduler: 1.0,
                fatal: 8.0,
            },
            DeviceKind::Custom => Protection {
                cache: 0.5,
                register_file: 1.0,
                fpu: 1.0,
                control: 1.0,
                scheduler: 1.0,
                fatal: 1.0,
            },
        }
    }

    /// Convenience: protection for a full configuration.
    pub fn for_config(cfg: &DeviceConfig) -> Self {
        Self::for_device(cfg.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_valid() {
        for p in [CRASH_VS_HANG, SCHEDULER_FATAL, MBU_PROBABILITY] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn phi_control_exceeds_k40_control() {
        // §V-E: complex CPU cores vs. simple GPU cores.
        let k40 = Protection::for_device(DeviceKind::KeplerK40);
        let phi = Protection::for_device(DeviceKind::XeonPhi3120A);
        assert!(phi.control > k40.control);
    }

    #[test]
    fn all_factors_positive() {
        for kind in [
            DeviceKind::KeplerK40,
            DeviceKind::XeonPhi3120A,
            DeviceKind::Custom,
        ] {
            let p = Protection::for_device(kind);
            for v in [
                p.cache,
                p.register_file,
                p.fpu,
                p.control,
                p.scheduler,
                p.fatal,
            ] {
                assert!(v > 0.0);
            }
        }
    }
}
