//! The fault sampler: from "a neutron struck the die" to a concrete
//! injection plan.
//!
//! Beam statistics sample *which* structure is upset proportionally to
//! its exposed cross-section ([`SiteTable`]), then the structure
//! determines the observable effect: an immediately fatal event (crash or
//! hang), or a [`StrikeSpec`] delivered to the engine. Corruption
//! patterns follow the physics:
//!
//! * SRAM strikes flip one bit, or 2–[`calib::MBU_MAX_BITS`] *adjacent*
//!   bits for multi-bit upsets;
//! * logic/pipeline strikes flip one bit of one in-flight result;
//! * a 512-bit vector-register strike corrupts the same bit in several
//!   consecutive lanes;
//! * core-control strikes replay stale store-queue data over a short
//!   store burst.

use rand::Rng;
use serde::{Deserialize, Serialize};

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_accel::strike::{SchedulerEffect, StrikeSpec, StrikeTarget};

use crate::calib;
use crate::site::{Site, SiteTable};

/// What one sampled neutron does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectionPlan {
    /// The device crashes: the application is killed and restarted
    /// (detectable, §II-A outcome 3).
    Crash,
    /// The node hangs and must be rebooted (outcome 4).
    Hang,
    /// A corruption is delivered to the machine; whether it becomes an
    /// SDC or is masked is decided by running the program and comparing
    /// outputs.
    Strike(StrikeSpec),
}

impl InjectionPlan {
    /// Whether the plan is immediately fatal.
    pub fn is_fatal(&self) -> bool {
        matches!(self, InjectionPlan::Crash | InjectionPlan::Hang)
    }
}

/// Samples injection plans for one `(device, program)` pair.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    table: SiteTable,
    tiles: usize,
    ops_per_tile: u64,
    trans_per_tile: u64,
    stores_per_tile: u64,
    vector_lanes: u32,
}

impl FaultSampler {
    /// Builds a sampler from the device configuration and the golden
    /// execution profile.
    pub fn new(cfg: &DeviceConfig, profile: &ExecutionProfile) -> Self {
        let tiles = profile.tiles.max(1);
        FaultSampler {
            table: SiteTable::for_program(cfg, profile),
            tiles,
            ops_per_tile: (profile.total_ops / tiles as u64).max(1),
            trans_per_tile: (profile.transcendental_ops / tiles as u64).max(1),
            stores_per_tile: (profile.stores / tiles as u64).max(1),
            vector_lanes: cfg.vector_lanes_f64() as u32,
        }
    }

    /// The underlying cross-section table.
    pub fn table(&self) -> &SiteTable {
        &self.table
    }

    /// Samples one injection plan.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> InjectionPlan {
        let site = self.table.sample(rng);
        self.plan_for(site, rng)
    }

    /// Samples a plan conditioned on a given site (used by per-site
    /// studies and tests).
    pub fn plan_for<R: Rng + ?Sized>(&self, site: Site, rng: &mut R) -> InjectionPlan {
        let at_tile = rng.gen_range(0..self.tiles);
        match site {
            Site::FatalLogic => self.fatal(rng),
            Site::Scheduler => {
                if rng.gen_bool(calib::SCHEDULER_FATAL) {
                    self.fatal(rng)
                } else {
                    let effect = match rng.gen_range(0..3u8) {
                        0 => SchedulerEffect::SkipTile,
                        1 => SchedulerEffect::RedirectTile,
                        _ => SchedulerEffect::GarbleTile,
                    };
                    InjectionPlan::Strike(StrikeSpec::new(at_tile, StrikeTarget::Scheduler(effect)))
                }
            }
            Site::CacheL2 => InjectionPlan::Strike(StrikeSpec::new(
                at_tile,
                StrikeTarget::L2 {
                    mask: sram_mask(rng),
                },
            )),
            Site::CacheL1 => InjectionPlan::Strike(StrikeSpec::new(
                at_tile,
                StrikeTarget::L1 {
                    mask: sram_mask(rng),
                },
            )),
            Site::RegisterFile => InjectionPlan::Strike(StrikeSpec::new(
                at_tile,
                StrikeTarget::RegisterFile {
                    mask: single_bit(rng),
                    op_index: rng.gen_range(0..self.ops_per_tile),
                },
            )),
            Site::VectorRegister => {
                let lanes = rng.gen_range(2..=self.vector_lanes.max(2));
                InjectionPlan::Strike(StrikeSpec::new(
                    at_tile,
                    StrikeTarget::VectorRegister {
                        mask: single_bit(rng),
                        lanes,
                        op_index: rng.gen_range(0..self.ops_per_tile),
                    },
                ))
            }
            Site::Fpu => InjectionPlan::Strike(StrikeSpec::new(
                at_tile,
                StrikeTarget::Fpu {
                    mask: single_bit(rng),
                    op_index: rng.gen_range(0..self.ops_per_tile),
                },
            )),
            Site::Sfu => InjectionPlan::Strike(StrikeSpec::new(
                at_tile,
                StrikeTarget::Sfu {
                    // Table-based SFUs are dominated by their range-
                    // reduction/exponent stages: an upset there scales
                    // the effective argument by ± powers of two, which is
                    // what makes corrupted transcendentals explode
                    // (§V-B).
                    scale: -(f64::powi(2.0, rng.gen_range(3..8))),
                    op_index: rng.gen_range(0..self.trans_per_tile),
                },
            )),
            Site::CoreControl => {
                if rng.gen_bool(calib::CONTROL_UNIT_GARBLE) {
                    // Task-state corruption: the core's remaining chunk
                    // computes garbage.
                    InjectionPlan::Strike(StrikeSpec::new(at_tile, StrikeTarget::UnitGarble))
                } else {
                    // Store-queue corruption: a short burst of stale
                    // stores.
                    InjectionPlan::Strike(StrikeSpec::new(
                        at_tile,
                        StrikeTarget::CoreControl {
                            elems: rng.gen_range(1..=4),
                            store_index: rng.gen_range(0..self.stores_per_tile),
                        },
                    ))
                }
            }
        }
    }

    /// Samples the strikes of one execution under a flux where the
    /// expected number of state-corrupting neutrons per run is
    /// `mean_strikes` — the quantity §IV-D keeps below 10⁻³. Draws
    /// `k ~ Poisson(mean_strikes)` plans; any fatal plan aborts the run
    /// immediately (crash/hang), otherwise all sampled strikes land in
    /// the same execution.
    ///
    /// # Panics
    ///
    /// Panics if `mean_strikes` is not positive and finite.
    pub fn sample_burst<R: Rng + ?Sized>(&self, rng: &mut R, mean_strikes: f64) -> BurstPlan {
        assert!(
            mean_strikes.is_finite() && mean_strikes > 0.0,
            "mean strikes must be positive, got {mean_strikes}"
        );
        let k = poisson(rng, mean_strikes);
        let mut strikes = Vec::with_capacity(k);
        for _ in 0..k {
            match self.sample(rng) {
                InjectionPlan::Crash => return BurstPlan::Crash,
                InjectionPlan::Hang => return BurstPlan::Hang,
                InjectionPlan::Strike(spec) => strikes.push(spec),
            }
        }
        BurstPlan::Strikes(strikes)
    }

    fn fatal<R: Rng + ?Sized>(&self, rng: &mut R) -> InjectionPlan {
        if rng.gen_bool(calib::CRASH_VS_HANG) {
            InjectionPlan::Crash
        } else {
            InjectionPlan::Hang
        }
    }
}

/// The outcome of sampling one execution's worth of neutron arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BurstPlan {
    /// A fatal event ends the run.
    Crash,
    /// A fatal hang ends the run.
    Hang,
    /// Zero or more strikes land in the same execution.
    Strikes(Vec<StrikeSpec>),
}

/// Knuth's Poisson sampler (adequate for the small means of §IV-D
/// studies; O(mean) time).
fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological means
        }
    }
}

/// One random bit of an f64.
fn single_bit<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    1u64 << rng.gen_range(0..64)
}

/// An SRAM strike pattern: usually one bit, sometimes a burst of
/// adjacent bits (MBU).
fn sram_mask<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    if rng.gen_bool(calib::MBU_PROBABILITY) {
        let bits = rng.gen_range(2..=calib::MBU_MAX_BITS);
        let start = rng.gen_range(0..(64 - bits));
        (((1u128 << bits) - 1) as u64) << start
    } else {
        single_bit(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::cache::CacheStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> ExecutionProfile {
        ExecutionProfile {
            tiles: 100,
            threads_per_tile: 16,
            instantiated_threads: 1600,
            resident_threads: 1600,
            wave_size: 100,
            total_ops: 1_000_000,
            transcendental_ops: 100_000,
            loads: 500_000,
            stores: 50_000,
            cache: CacheStats::default(),
            l2_avg_resident_bytes: 1.0e6,
            l1_avg_resident_bytes: 1.0e5,
        }
    }

    fn sampler(cfg: &DeviceConfig) -> FaultSampler {
        FaultSampler::new(cfg, &profile())
    }

    #[test]
    fn plans_are_well_formed() {
        let cfg = DeviceConfig::kepler_k40();
        let s = sampler(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10_000 {
            match s.sample(&mut rng) {
                InjectionPlan::Crash | InjectionPlan::Hang => {}
                InjectionPlan::Strike(spec) => {
                    assert!(spec.at_tile < 100);
                    match spec.target {
                        StrikeTarget::L2 { mask } | StrikeTarget::L1 { mask } => {
                            assert_ne!(mask, 0);
                            assert!(mask.count_ones() <= calib::MBU_MAX_BITS);
                        }
                        StrikeTarget::RegisterFile { mask, op_index }
                        | StrikeTarget::Fpu { mask, op_index } => {
                            assert_eq!(mask.count_ones(), 1);
                            assert!(op_index < 10_000);
                        }
                        StrikeTarget::VectorRegister { mask, lanes, .. } => {
                            assert_eq!(mask.count_ones(), 1);
                            assert!((2..=8).contains(&lanes));
                        }
                        StrikeTarget::Sfu { scale, op_index } => {
                            assert!(scale.abs() >= 8.0 && scale.abs() <= 128.0);
                            assert!(op_index < 1_000);
                        }
                        StrikeTarget::CoreControl { elems, store_index } => {
                            assert!((1..=4).contains(&elems));
                            assert!(store_index < 500);
                        }
                        StrikeTarget::UnitGarble => {}
                        StrikeTarget::Scheduler(_) => {}
                    }
                }
            }
        }
    }

    #[test]
    fn mbu_masks_are_adjacent_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let m = sram_mask(&mut rng);
            assert_ne!(m, 0);
            // An adjacent-bit burst divided by its lowest set bit is
            // 2^k - 1 (all ones).
            let norm = m >> m.trailing_zeros();
            assert_eq!(norm & (norm + 1), 0, "mask {m:#x} not contiguous");
        }
    }

    #[test]
    fn k40_dgemm_like_profiles_sample_scheduler_strikes() {
        let cfg = DeviceConfig::kepler_k40();
        let s = sampler(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..20_000 {
            match s.sample(&mut rng) {
                InjectionPlan::Crash => kinds.insert("crash"),
                InjectionPlan::Hang => kinds.insert("hang"),
                InjectionPlan::Strike(spec) => kinds.insert(spec.target.site_name()),
            };
        }
        for expected in ["crash", "hang", "l2", "fpu", "register_file"] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
    }

    #[test]
    fn phi_samples_vector_and_control_strikes() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let s = sampler(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..20_000 {
            if let InjectionPlan::Strike(spec) = s.sample(&mut rng) {
                kinds.insert(spec.target.site_name());
            }
        }
        assert!(kinds.contains("vector_register"));
        assert!(kinds.contains("core_control") || kinds.contains("unit_garble"));
        assert!(kinds.contains("unit_garble"));
        assert!(!kinds.contains("sfu"), "Phi has no exposed SFU");
    }

    #[test]
    fn burst_sampling_matches_poisson_mean() {
        let cfg = DeviceConfig::kepler_k40();
        let s = sampler(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mean = 0.8f64;
        let (mut total, mut fatal) = (0usize, 0usize);
        let n = 20_000;
        for _ in 0..n {
            match s.sample_burst(&mut rng, mean) {
                BurstPlan::Crash | BurstPlan::Hang => fatal += 1,
                BurstPlan::Strikes(v) => total += v.len(),
            }
        }
        // Fatal runs truncate their bursts, so the surviving strike count
        // sits below n x mean but well above zero.
        assert!(total > 0 && total < n * 2);
        assert!(fatal > 0, "some bursts must hit fatal logic");
        // At the paper's 1e-3 regime, almost every run is strike-free.
        let mut quiet = 0;
        for _ in 0..5_000 {
            if s.sample_burst(&mut rng, 1e-3) == BurstPlan::Strikes(vec![]) {
                quiet += 1;
            }
        }
        assert!(quiet > 4_950, "quiet runs: {quiet}");
    }

    #[test]
    fn crash_hang_ratio_matches_calibration() {
        let cfg = DeviceConfig::kepler_k40();
        let s = sampler(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (mut crash, mut hang) = (0u32, 0u32);
        for _ in 0..50_000 {
            match s.plan_for(Site::FatalLogic, &mut rng) {
                InjectionPlan::Crash => crash += 1,
                InjectionPlan::Hang => hang += 1,
                InjectionPlan::Strike(_) => panic!("fatal site cannot strike"),
            }
        }
        let ratio = f64::from(crash) / f64::from(crash + hang);
        assert!((ratio - calib::CRASH_VS_HANG).abs() < 0.01);
    }
}
