//! Accelerated neutron-beam facilities and campaign bookkeeping (§IV-D).
//!
//! LANSCE (Los Alamos) and ISIS (Rutherford Appleton) provide spallation
//! neutron spectra suitable to mimic the terrestrial flux; error rates
//! measured there, scaled down to the natural flux, predict field FIT
//! rates. The paper accumulated over 400 beam hours per device (800
//! effective hours with two boards in parallel), equivalent to at least
//! 8×10⁸ hours — about 91 000 years — of natural exposure.

use radcrit_core::fit::{Fluence, SEA_LEVEL_FLUX_N_CM2_H};
use serde::{Deserialize, Serialize};

use crate::calib;

/// A neutron-beam facility preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Facility {
    /// Los Alamos Neutron Science Center: ~1×10⁵ n/(cm²·s) (§IV-D lower
    /// bound of the quoted range).
    Lansce,
    /// ISIS, Rutherford Appleton Laboratories: ~2.5×10⁶ n/(cm²·s) (§IV-D
    /// upper bound).
    Isis,
}

impl Facility {
    /// Beam flux in n/(cm²·s).
    pub fn flux_n_cm2_s(&self) -> f64 {
        match self {
            Facility::Lansce => 1.0e5,
            Facility::Isis => 2.5e6,
        }
    }

    /// Acceleration factor over the sea-level natural flux (§IV-D quotes
    /// 6–8 orders of magnitude).
    pub fn acceleration_factor(&self) -> f64 {
        self.flux_n_cm2_s() * 3600.0 / SEA_LEVEL_FLUX_N_CM2_H
    }
}

impl std::fmt::Display for Facility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Facility::Lansce => f.write_str("LANSCE"),
            Facility::Isis => f.write_str("ISIS"),
        }
    }
}

/// One beam-time session: a facility, hours of beam, the number of boards
/// irradiated in parallel, and a distance de-rating factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeamSession {
    facility: Facility,
    hours: f64,
    boards: usize,
    derating: f64,
}

impl BeamSession {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics when `hours` is not positive, `boards` is zero, or
    /// `derating` is outside `(0, 1]` (a board farther from the source
    /// sees an attenuated flux, §IV-D).
    pub fn new(facility: Facility, hours: f64, boards: usize, derating: f64) -> Self {
        assert!(hours > 0.0, "beam hours must be positive, got {hours}");
        assert!(boards > 0, "at least one board must be irradiated");
        assert!(
            derating > 0.0 && derating <= 1.0,
            "derating must be in (0, 1], got {derating}"
        );
        BeamSession {
            facility,
            hours,
            boards,
            derating,
        }
    }

    /// The paper's reference campaign: 400+ beam hours with two boards in
    /// parallel at LANSCE (800 effective hours per architecture).
    pub fn paper_reference() -> Self {
        BeamSession::new(Facility::Lansce, 400.0, 2, 1.0)
    }

    /// The facility used.
    pub fn facility(&self) -> Facility {
        self.facility
    }

    /// Beam hours of the session.
    pub fn hours(&self) -> f64 {
        self.hours
    }

    /// Effective test hours (hours × boards, §IV-D).
    pub fn effective_hours(&self) -> f64 {
        self.hours * self.boards as f64
    }

    /// Accumulated fluence per board after de-rating, in n/cm².
    pub fn fluence(&self) -> Fluence {
        Fluence::from_flux(
            self.facility.flux_n_cm2_s() * self.derating,
            self.hours * 3600.0,
        )
        .expect("positive construction parameters imply positive fluence")
    }

    /// Total fluence summed over the boards (for FIT statistics pooling
    /// the boards' events together).
    pub fn total_fluence(&self) -> Fluence {
        Fluence::new(self.fluence().n_per_cm2() * self.boards as f64)
            .expect("positive fluence times positive boards")
    }

    /// Equivalent natural-exposure hours of the session.
    pub fn natural_equivalent_hours(&self) -> f64 {
        self.total_fluence().n_per_cm2() / SEA_LEVEL_FLUX_N_CM2_H
    }

    /// Expected strikes *hitting exposed state* during one execution of
    /// `wall_seconds`, for a device/program with total cross-section
    /// `sigma_cm2`. The experimental design requires this to stay below
    /// ~10⁻³ so that at most one neutron corrupts any single execution
    /// (§IV-D).
    pub fn strikes_per_execution(&self, sigma_cm2: f64, wall_seconds: f64) -> f64 {
        self.facility.flux_n_cm2_s() * self.derating * sigma_cm2 * wall_seconds
    }

    /// Whether the single-strike criterion holds for the given program.
    pub fn single_strike_criterion(&self, sigma_cm2: f64, wall_seconds: f64) -> bool {
        self.strikes_per_execution(sigma_cm2, wall_seconds) < calib::MAX_ERRORS_PER_EXECUTION
    }
}

/// Relative neutron-flux acceleration at `altitude_m` metres above sea
/// level, following the JESD89A exponential model (§II-A: "the number of
/// neutrons increases exponentially with altitude"). Returns the factor
/// to multiply the sea-level flux by: ~1 at sea level, ~2.2 at 1 km,
/// ~10-12 around 3.1 km (Leadville), ~300 at avionics altitudes.
///
/// The scale height used is 1433 g/cm² atmospheric depth converted to a
/// simple exponential in altitude with L ≈ 1000 m / ln(2.2) — adequate
/// below ~5 km, which covers every terrestrial HPC site.
pub fn altitude_acceleration(altitude_m: f64) -> f64 {
    let altitude_m = altitude_m.max(0.0);
    // Flux doubles roughly every 870 m in the lower atmosphere.
    const DOUBLING_M: f64 = 870.0;
    2f64.powf(altitude_m / DOUBLING_M)
}

/// Projected Mean Time Between Failures, in hours, for a fleet of
/// `devices` identical accelerators whose per-device rate is `fit`
/// failures per 10⁹ h, at `altitude_m` metres.
///
/// The paper's motivating example: Titan's ~18 000 K40-class GPUs show a
/// radiation-induced MTBF of dozens of hours. With relative (a.u.) FIT
/// inputs the result is a relative MTBF — only ratios are meaningful,
/// matching the paper's reporting.
pub fn fleet_mtbf_hours(fit: radcrit_core::fit::FitRate, devices: usize, altitude_m: f64) -> f64 {
    let rate_per_hour = fit.value() / radcrit_core::fit::FIT_HOURS
        * devices as f64
        * altitude_acceleration(altitude_m);
    if rate_per_hour <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / rate_per_hour
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facility_fluxes_match_paper_range() {
        assert_eq!(Facility::Lansce.flux_n_cm2_s(), 1.0e5);
        assert_eq!(Facility::Isis.flux_n_cm2_s(), 2.5e6);
    }

    #[test]
    fn acceleration_is_six_to_eight_orders_of_magnitude() {
        for f in [Facility::Lansce, Facility::Isis] {
            let acc = f.acceleration_factor();
            assert!(
                (1.0e6..1.0e9).contains(&acc),
                "{f} acceleration {acc:.2e} outside the paper's 6-8 orders"
            );
        }
    }

    #[test]
    fn paper_reference_campaign_covers_91000_years() {
        let s = BeamSession::paper_reference();
        assert_eq!(s.effective_hours(), 800.0);
        let years = s.natural_equivalent_hours() / (24.0 * 365.0);
        // §IV-D: "at least 8x10^8 hours ... about 91,000 years".
        assert!(years > 90_000.0, "only {years:.0} years");
    }

    #[test]
    fn derating_attenuates_fluence() {
        let near = BeamSession::new(Facility::Lansce, 10.0, 1, 1.0);
        let far = BeamSession::new(Facility::Lansce, 10.0, 1, 0.5);
        assert!(far.fluence().n_per_cm2() < near.fluence().n_per_cm2());
        assert!((far.fluence().n_per_cm2() * 2.0 - near.fluence().n_per_cm2()).abs() < 1.0);
    }

    #[test]
    fn single_strike_criterion_detects_violation() {
        let s = BeamSession::new(Facility::Isis, 1.0, 1, 1.0);
        // A tiny cross-section passes, an enormous one fails.
        assert!(s.single_strike_criterion(1e-12, 1.0));
        assert!(!s.single_strike_criterion(1e-6, 10.0));
    }

    #[test]
    #[should_panic(expected = "beam hours")]
    fn zero_hours_rejected() {
        BeamSession::new(Facility::Lansce, 0.0, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "derating")]
    fn bad_derating_rejected() {
        BeamSession::new(Facility::Lansce, 1.0, 1, 1.5);
    }

    #[test]
    fn altitude_acceleration_grows_exponentially() {
        assert!((altitude_acceleration(0.0) - 1.0).abs() < 1e-12);
        let one_km = altitude_acceleration(1000.0);
        assert!((2.0..2.5).contains(&one_km), "1 km factor {one_km}");
        // Los Alamos sits at ~2.2 km: roughly 5-7x sea level.
        let lanl = altitude_acceleration(2230.0);
        assert!((4.0..8.0).contains(&lanl), "LANL factor {lanl}");
        // Negative altitudes clamp to sea level.
        assert_eq!(altitude_acceleration(-100.0), 1.0);
    }

    #[test]
    fn fleet_mtbf_scales_inversely_with_fleet_and_rate() {
        use radcrit_core::fit::FitRate;
        let fit = FitRate::from_raw(1000.0);
        let one = fleet_mtbf_hours(fit, 1, 0.0);
        let fleet = fleet_mtbf_hours(fit, 18_000, 0.0);
        assert!((one / fleet - 18_000.0).abs() < 1e-6);
        let double_rate = fleet_mtbf_hours(FitRate::from_raw(2000.0), 1, 0.0);
        assert!((one / double_rate - 2.0).abs() < 1e-9);
        assert_eq!(fleet_mtbf_hours(FitRate::ZERO, 10, 0.0), f64::INFINITY);
    }
}
