//! A software fault-injector baseline (SASSIFI / GPU-Qin class).
//!
//! §IV-D: "Fault injectors provide the user with access to only a limited
//! set of GPU resources. Thus, not all the possible sources of errors can
//! be considered. Hardware schedulers and dispatchers as well as the PCIe
//! controller, for instance, are among the inaccessible resources. Due to
//! the limitations of fault injection, we take advantage of the
//! controlled neutron beam."
//!
//! This module implements exactly that limited tool against our simulated
//! machine: an injector that can flip bits only in *architecturally
//! visible* state — register values (instruction outputs) and memory/cache
//! data — and knows nothing of schedulers, dispatch queues, SFU pipelines
//! or core control paths. Comparing an injector campaign with a beam
//! campaign quantifies what the invisible resources contribute, turning
//! the paper's qualitative argument into numbers.

use rand::Rng;

use radcrit_accel::config::DeviceConfig;
use radcrit_accel::profile::ExecutionProfile;
use radcrit_accel::strike::{StrikeSpec, StrikeTarget};

use crate::sampler::InjectionPlan;
use crate::site::{Site, SiteTable};

/// Which sites a SASSIFI/GPU-Qin-class tool can reach.
pub const INJECTABLE_SITES: [Site; 5] = [
    Site::CacheL2,
    Site::CacheL1,
    Site::RegisterFile,
    Site::VectorRegister,
    Site::Fpu,
];

/// Whether a software injector can target `site`.
pub fn injectable(site: Site) -> bool {
    INJECTABLE_SITES.contains(&site)
}

/// A software fault injector: like [`crate::sampler::FaultSampler`], but
/// restricted to the architecturally visible sites and — like real
/// injector studies — sampling them *uniformly per instruction/value*
/// rather than by physical cross-section.
#[derive(Debug, Clone)]
pub struct SoftwareInjector {
    tiles: usize,
    ops_per_tile: u64,
    vector_lanes: u32,
}

impl SoftwareInjector {
    /// Builds an injector for a profiled program.
    pub fn new(cfg: &DeviceConfig, profile: &ExecutionProfile) -> Self {
        let tiles = profile.tiles.max(1);
        SoftwareInjector {
            tiles,
            ops_per_tile: (profile.total_ops / tiles as u64).max(1),
            vector_lanes: cfg.vector_lanes_f64() as u32,
        }
    }

    /// Samples one injection: a single bit flip in a dynamically chosen
    /// destination register value (the SASSIFI "IOV" mode) or in a cached
    /// data element.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> InjectionPlan {
        let at_tile = rng.gen_range(0..self.tiles);
        let mask = 1u64 << rng.gen_range(0..64);
        // Injector studies weight by dynamic instruction/value counts:
        // most visible values are instruction outputs, the rest memory.
        let target = if rng.gen_bool(0.7) {
            if self.vector_lanes > 1 && rng.gen_bool(0.5) {
                StrikeTarget::VectorRegister {
                    mask,
                    lanes: 1,
                    op_index: rng.gen_range(0..self.ops_per_tile),
                }
            } else {
                StrikeTarget::RegisterFile {
                    mask,
                    op_index: rng.gen_range(0..self.ops_per_tile),
                }
            }
        } else if rng.gen_bool(0.7) {
            StrikeTarget::L2 { mask }
        } else {
            StrikeTarget::L1 { mask }
        };
        InjectionPlan::Strike(StrikeSpec::new(at_tile, target))
    }

    /// The fraction of the *physical* cross-section a software injector
    /// can see for this program — the coverage gap of §IV-D. Computed
    /// from the beam model's site table.
    pub fn visible_cross_section_fraction(table: &SiteTable) -> f64 {
        let visible: f64 = INJECTABLE_SITES.iter().map(|&s| table.weight(s)).sum();
        if table.total() == 0.0 {
            0.0
        } else {
            visible / table.total()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radcrit_accel::cache::CacheStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> ExecutionProfile {
        ExecutionProfile {
            tiles: 64,
            threads_per_tile: 16,
            instantiated_threads: 1024,
            resident_threads: 1024,
            wave_size: 64,
            total_ops: 100_000,
            transcendental_ops: 1_000,
            loads: 10_000,
            stores: 1_000,
            cache: CacheStats::default(),
            l2_avg_resident_bytes: 1.0e5,
            l1_avg_resident_bytes: 1.0e4,
        }
    }

    #[test]
    fn injector_never_reaches_hidden_sites() {
        let cfg = DeviceConfig::kepler_k40();
        let injector = SoftwareInjector::new(&cfg, &profile());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20_000 {
            match injector.sample(&mut rng) {
                InjectionPlan::Strike(spec) => {
                    let name = spec.target.site_name();
                    assert!(
                        ["l2", "l1", "register_file", "vector_register", "fpu"].contains(&name),
                        "injector reached hidden site {name}"
                    );
                    assert!(spec.at_tile < 64);
                }
                fatal => panic!("software injection cannot crash the node by itself: {fatal:?}"),
            }
        }
    }

    #[test]
    fn phi_injector_uses_vector_registers() {
        let cfg = DeviceConfig::xeon_phi_3120a();
        let injector = SoftwareInjector::new(&cfg, &profile());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut saw_vector = false;
        for _ in 0..1_000 {
            if let InjectionPlan::Strike(spec) = injector.sample(&mut rng) {
                if spec.target.site_name() == "vector_register" {
                    saw_vector = true;
                    break;
                }
            }
        }
        assert!(saw_vector);
    }

    #[test]
    fn visible_fraction_is_a_proper_fraction_and_misses_coverage() {
        let cfg = DeviceConfig::kepler_k40();
        let table = SiteTable::for_program(&cfg, &profile());
        let frac = SoftwareInjector::visible_cross_section_fraction(&table);
        assert!(frac > 0.0 && frac < 1.0, "visible fraction {frac}");
        // The hidden remainder is exactly the scheduler/control/SFU/fatal
        // share.
        let hidden: f64 = [
            Site::Sfu,
            Site::CoreControl,
            Site::Scheduler,
            Site::FatalLogic,
        ]
        .iter()
        .map(|&s| table.share(s))
        .sum();
        assert!((frac + hidden - 1.0).abs() < 1e-9);
    }

    #[test]
    fn injectable_predicate_matches_list() {
        assert!(injectable(Site::CacheL2));
        assert!(injectable(Site::Fpu));
        assert!(!injectable(Site::Scheduler));
        assert!(!injectable(Site::Sfu));
        assert!(!injectable(Site::CoreControl));
        assert!(!injectable(Site::FatalLogic));
    }
}
