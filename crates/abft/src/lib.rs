//! # radcrit-abft
//!
//! Algorithm-Based Fault Tolerance for matrix multiplication after Huang
//! & Abraham, as discussed in §III and §V-A of the criticality paper:
//! checksum rows/columns detect and *correct* single and line errors in
//! linear time, but square and random patterns defeat them. Knowing the
//! spatial locality of radiation-induced errors therefore tells you
//! whether ABFT is worth deploying — the paper estimates that with ABFT,
//! DGEMM "would be affected by only 20 % to 40 % of all errors on K40,
//! and 60 % to 80 % on Xeon Phi".
//!
//! The implementation here is the full checksum scheme on host matrices:
//!
//! * the expected **row-sum vector** `f = A · rowsum(B)` and
//!   **column-sum vector** `e = colsum(A) · B` are computed from the
//!   *inputs*, so they are not themselves affected by an output
//!   corruption;
//! * [`AbftDgemm::check`] compares the corrupted product's row/column
//!   sums against `f`/`e` under a relative tolerance;
//! * single errors are corrected from their row residual, line errors
//!   element-wise from the crossing checksums.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use radcrit_core::locality::SpatialClass;

/// The verdict of one ABFT pass over a (possibly corrupted) product.
#[derive(Debug, Clone, PartialEq)]
pub enum AbftOutcome {
    /// All checksums hold: no (detectable) corruption.
    Clean,
    /// Corruption was located and corrected; the count is the number of
    /// elements repaired.
    Corrected(usize),
    /// Corruption was detected but is not correctable (inconsistent
    /// residual geometry: a square/random pattern).
    DetectedUncorrectable {
        /// Rows whose checksum failed.
        rows: Vec<usize>,
        /// Columns whose checksum failed.
        cols: Vec<usize>,
    },
}

impl AbftOutcome {
    /// Whether the pass ended with a trustworthy matrix (clean or fully
    /// corrected).
    pub fn is_protected(&self) -> bool {
        matches!(self, AbftOutcome::Clean | AbftOutcome::Corrected(_))
    }
}

/// Checksum-based fault tolerance for one `n × n` multiplication.
#[derive(Debug, Clone)]
pub struct AbftDgemm {
    n: usize,
    /// Expected row sums of C (`A · rowsum(B)`).
    row_expect: Vec<f64>,
    /// Expected column sums of C (`colsum(A) · B`).
    col_expect: Vec<f64>,
    /// Relative tolerance for checksum comparison (floating-point sums
    /// of `n` products are not exact).
    rel_tol: f64,
}

impl AbftDgemm {
    /// Builds the checker from the *inputs* of `C = A × B` (row-major
    /// `n × n` each).
    ///
    /// # Panics
    ///
    /// Panics if the slices are not `n × n` or `rel_tol` is not positive.
    pub fn from_inputs(a: &[f64], b: &[f64], n: usize, rel_tol: f64) -> Self {
        assert_eq!(a.len(), n * n, "A must be n x n");
        assert_eq!(b.len(), n * n, "B must be n x n");
        assert!(rel_tol > 0.0, "tolerance must be positive");

        // rowsum(B): column vector s with s_k = sum_j b[k][j].
        let mut b_rowsum = vec![0.0f64; n];
        for k in 0..n {
            b_rowsum[k] = b[k * n..(k + 1) * n].iter().sum();
        }
        // f_i = sum_k a[i][k] * s_k = expected row sum of C.
        let mut row_expect = vec![0.0f64; n];
        for (i, slot) in row_expect.iter_mut().enumerate() {
            *slot = (0..n).map(|k| a[i * n + k] * b_rowsum[k]).sum();
        }
        // colsum(A): row vector t with t_k = sum_i a[i][k].
        let mut a_colsum = vec![0.0f64; n];
        for i in 0..n {
            for (k, slot) in a_colsum.iter_mut().enumerate() {
                *slot += a[i * n + k];
            }
        }
        // e_j = sum_k t_k * b[k][j] = expected column sum of C.
        let mut col_expect = vec![0.0f64; n];
        for k in 0..n {
            let t = a_colsum[k];
            for (j, slot) in col_expect.iter_mut().enumerate() {
                *slot += t * b[k * n + j];
            }
        }
        AbftDgemm {
            n,
            row_expect,
            col_expect,
            rel_tol,
        }
    }

    /// The matrix side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Checks `c` against the checksums; corrects in place when the
    /// residual geometry allows it (single error, or a line along one
    /// row/column).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not `n × n`.
    pub fn check(&self, c: &mut [f64]) -> AbftOutcome {
        assert_eq!(c.len(), self.n * self.n, "C must be n x n");
        let n = self.n;

        let bad_rows: Vec<usize> = (0..n)
            .filter(|&i| {
                let sum: f64 = c[i * n..(i + 1) * n].iter().sum();
                !self.close(sum, self.row_expect[i])
            })
            .collect();
        let bad_cols: Vec<usize> = (0..n)
            .filter(|&j| {
                let sum: f64 = (0..n).map(|i| c[i * n + j]).sum();
                !self.close(sum, self.col_expect[j])
            })
            .collect();

        match (bad_rows.len(), bad_cols.len()) {
            (0, 0) => AbftOutcome::Clean,
            (1, 1) => {
                // Single error at the crossing.
                let (i, j) = (bad_rows[0], bad_cols[0]);
                let sum: f64 = c[i * n..(i + 1) * n].iter().sum();
                c[i * n + j] += self.row_expect[i] - sum;
                AbftOutcome::Corrected(1)
            }
            (1, _) => {
                // A row line: repair each flagged column from its column
                // checksum.
                let i = bad_rows[0];
                for &j in &bad_cols {
                    let sum: f64 = (0..n).map(|r| c[r * n + j]).sum();
                    c[i * n + j] += self.col_expect[j] - sum;
                }
                AbftOutcome::Corrected(bad_cols.len())
            }
            (_, 1) => {
                // A column line: repair each flagged row from its row
                // checksum.
                let j = bad_cols[0];
                for &i in &bad_rows {
                    let sum: f64 = c[i * n..(i + 1) * n].iter().sum();
                    c[i * n + j] += self.row_expect[i] - sum;
                }
                AbftOutcome::Corrected(bad_rows.len())
            }
            // Detected rows without any flagged column (or vice versa)
            // would mean compensating corruptions inside a line — treat
            // as uncorrectable, like multi-row-multi-column patterns.
            _ => AbftOutcome::DetectedUncorrectable {
                rows: bad_rows,
                cols: bad_cols,
            },
        }
    }

    /// Whether ABFT is expected to correct an error of class `class`
    /// (the paper's rule of thumb, §III).
    pub fn class_correctable(class: SpatialClass) -> bool {
        class.abft_correctable()
    }

    fn close(&self, got: f64, expect: f64) -> bool {
        let scale = expect.abs().max(1.0);
        (got - expect).abs() <= self.rel_tol * scale
    }
}

/// The residual error-rate fraction under ABFT given per-class FIT
/// fractions: everything except single and line errors survives (§V-A).
pub fn residual_fraction(breakdown: &radcrit_core::fit::FitBreakdown) -> f64 {
    1.0 - breakdown.abft_correctable_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use radcrit_core::fit::{FitBreakdown, FitRate};

    const N: usize = 16;
    const TOL: f64 = 1e-9;

    fn inputs() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..N * N)
            .map(|i| radcrit_kernels::input::unit_value(1, i as u64))
            .collect();
        let b: Vec<f64> = (0..N * N)
            .map(|i| radcrit_kernels::input::unit_value(2, i as u64))
            .collect();
        let mut c = vec![0.0; N * N];
        for i in 0..N {
            for k in 0..N {
                let av = a[i * N + k];
                for j in 0..N {
                    c[i * N + j] += av * b[k * N + j];
                }
            }
        }
        (a, b, c)
    }

    #[test]
    fn clean_product_passes() {
        let (a, b, mut c) = inputs();
        let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
        assert_eq!(abft.check(&mut c), AbftOutcome::Clean);
    }

    #[test]
    fn single_error_corrected_exactly() {
        let (a, b, mut c) = inputs();
        let golden = c.clone();
        let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
        c[5 * N + 9] += 123.456;
        assert_eq!(abft.check(&mut c), AbftOutcome::Corrected(1));
        for (i, (&got, &want)) in c.iter().zip(&golden).enumerate() {
            assert!((got - want).abs() < 1e-6, "element {i} not restored");
        }
    }

    #[test]
    fn row_line_error_corrected() {
        let (a, b, mut c) = inputs();
        let golden = c.clone();
        let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
        for j in [2, 7, 11] {
            c[3 * N + j] -= 55.5;
        }
        assert_eq!(abft.check(&mut c), AbftOutcome::Corrected(3));
        for (i, (&got, &want)) in c.iter().zip(&golden).enumerate() {
            assert!((got - want).abs() < 1e-6, "element {i} not restored");
        }
    }

    #[test]
    fn column_line_error_corrected() {
        let (a, b, mut c) = inputs();
        let golden = c.clone();
        let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
        for i in [0, 8, 15] {
            c[i * N + 6] *= 1.5;
        }
        assert_eq!(abft.check(&mut c), AbftOutcome::Corrected(3));
        for (i, (&got, &want)) in c.iter().zip(&golden).enumerate() {
            assert!((got - want).abs() < 1e-5, "element {i} not restored");
        }
    }

    #[test]
    fn square_error_detected_but_uncorrectable() {
        let (a, b, mut c) = inputs();
        let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
        for i in [4, 5] {
            for j in [9, 10] {
                c[i * N + j] += 77.0;
            }
        }
        match abft.check(&mut c) {
            AbftOutcome::DetectedUncorrectable { rows, cols } => {
                assert_eq!(rows, vec![4, 5]);
                assert_eq!(cols, vec![9, 10]);
            }
            other => panic!("expected uncorrectable, got {other:?}"),
        }
    }

    #[test]
    fn tiny_corruption_within_tolerance_is_invisible() {
        // ABFT's practical blind spot: corruption below the checksum
        // tolerance passes as clean (the flip side of FP tolerance).
        let (a, b, mut c) = inputs();
        let abft = AbftDgemm::from_inputs(&a, &b, N, 1e-6);
        c[0] += 1e-10;
        assert_eq!(abft.check(&mut c), AbftOutcome::Clean);
    }

    #[test]
    fn class_rule_matches_core() {
        assert!(AbftDgemm::class_correctable(SpatialClass::Single));
        assert!(AbftDgemm::class_correctable(SpatialClass::Line));
        assert!(!AbftDgemm::class_correctable(SpatialClass::Square));
        assert!(!AbftDgemm::class_correctable(SpatialClass::Random));
    }

    #[test]
    fn residual_fraction_complements_correctable() {
        let mut b = FitBreakdown::new();
        b.add(SpatialClass::Single, FitRate::from_raw(30.0));
        b.add(SpatialClass::Square, FitRate::from_raw(70.0));
        assert!((residual_fraction(&b) - 0.7).abs() < 1e-12);
    }

    proptest! {
        /// Any single-element corruption of any magnitude above tolerance
        /// is corrected back to the golden value.
        #[test]
        fn prop_single_corrected(i in 0usize..N, j in 0usize..N,
                                 delta in prop::sample::select(
                                     vec![1e-3, 0.5, 3.0, -7.0, 1e6, -1e6])) {
            let (a, b, mut c) = inputs();
            let golden = c.clone();
            let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
            c[i * N + j] += delta;
            prop_assert_eq!(abft.check(&mut c), AbftOutcome::Corrected(1));
            for (k, (&got, &want)) in c.iter().zip(&golden).enumerate() {
                prop_assert!((got - want).abs() < 1e-5, "element {} not restored", k);
            }
        }

        /// Any row-line corruption (distinct columns, one row) is
        /// corrected.
        #[test]
        fn prop_row_line_corrected(row in 0usize..N,
                                   cols in prop::collection::hash_set(0usize..N, 2..6)) {
            let (a, b, mut c) = inputs();
            let golden = c.clone();
            let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
            for &j in &cols {
                c[row * N + j] += 11.0 + j as f64;
            }
            prop_assert_eq!(abft.check(&mut c), AbftOutcome::Corrected(cols.len()));
            for (k, (&got, &want)) in c.iter().zip(&golden).enumerate() {
                prop_assert!((got - want).abs() < 1e-5, "element {} not restored", k);
            }
        }

        /// Any pattern spanning at least two rows and two columns is
        /// never silently mis-corrected: it is reported uncorrectable.
        #[test]
        fn prop_block_uncorrectable(
            r0 in 0usize..N-1, c0 in 0usize..N-1) {
            let (a, b, mut c) = inputs();
            let abft = AbftDgemm::from_inputs(&a, &b, N, TOL);
            for i in [r0, r0 + 1] {
                for j in [c0, c0 + 1] {
                    c[i * N + j] += 42.0;
                }
            }
            match abft.check(&mut c) {
                AbftOutcome::DetectedUncorrectable { rows, cols } => {
                    prop_assert_eq!(rows.len(), 2);
                    prop_assert_eq!(cols.len(), 2);
                }
                other => prop_assert!(false, "expected uncorrectable, got {:?}", other),
            }
        }
    }
}
