//! Shard planning and rendezvous placement.

/// Splits the injection range `0..total` into at most `shards`
/// contiguous, non-empty, near-equal ranges covering the whole range.
/// The first `total % shards` ranges are one longer, so any two ranges
/// differ in length by at most one. Asking for more shards than
/// injections yields one single-index shard per injection.
pub fn plan_shards(total: u64, shards: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let k = (shards.max(1) as u64).min(total);
    let base = total / k;
    let extra = total % k;
    let mut ranges = Vec::with_capacity(k as usize);
    let mut start = 0;
    for i in 0..k {
        let len = base + u64::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

/// FNV-1a over a byte string — the fabric's placement hash. Not
/// cryptographic; it only needs to be stable across processes and well
/// spread over worker identities.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Ranks workers for a content key by highest-random-weight (rendezvous)
/// hashing: returns indices into `workers` ordered best-first. Every
/// participant computing this rank for the same key and worker set gets
/// the same order, and removing a worker only reshuffles the keys that
/// ranked it first — so a campaign's shards land on the same daemons
/// across coordinator restarts, and their golden caches stay warm.
///
/// Ties (identical scores) break by worker identity, keeping the order
/// total and deterministic.
pub fn rendezvous_rank(key: &str, workers: &[String]) -> Vec<usize> {
    let mut scored: Vec<(u64, &str, usize)> = workers
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let score = fnv1a(key.bytes().chain(std::iter::once(0xff)).chain(w.bytes()));
            (score, w.as_str(), i)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored.into_iter().map(|(_, _, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shards_partition_the_range() {
        for (total, k) in [(10u64, 3usize), (7, 7), (5, 9), (100, 1), (1, 1)] {
            let ranges = plan_shards(total, k);
            assert!(ranges.len() <= k);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, total);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            for &(s, e) in &ranges {
                assert!(s < e, "non-empty");
            }
        }
        assert!(plan_shards(0, 3).is_empty());
    }

    #[test]
    fn more_shards_than_injections_degrades_to_singletons() {
        let ranges = plan_shards(3, 8);
        assert_eq!(ranges, [(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn rendezvous_is_stable_and_total() {
        let workers: Vec<String> = (0..5).map(|i| format!("127.0.0.1:90{i}")).collect();
        let rank = rendezvous_rank("golden:dgemm-32-seed7", &workers);
        assert_eq!(rank, rendezvous_rank("golden:dgemm-32-seed7", &workers));
        let mut sorted = rank.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2, 3, 4], "a permutation of all workers");
        // Distinct keys spread: across a handful of keys, at least two
        // must rank the fleet differently.
        let ranks: Vec<Vec<usize>> = (0..8)
            .map(|i| rendezvous_rank(&format!("golden:kernel-{i}"), &workers))
            .collect();
        assert!(
            ranks.iter().any(|r| *r != ranks[0]),
            "8 distinct keys all ranked identically: {ranks:?}"
        );
    }

    #[test]
    fn removing_a_loser_does_not_move_the_winner() {
        let workers: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        let rank = rendezvous_rank("k", &workers);
        let winner = workers[rank[0]].clone();
        let loser = rank[3];
        let survivors: Vec<String> = workers
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != loser)
            .map(|(_, w)| w.clone())
            .collect();
        let new_rank = rendezvous_rank("k", &survivors);
        assert_eq!(survivors[new_rank[0]], winner);
    }

    proptest! {
        #[test]
        fn plan_always_partitions(total in 1u64..10_000, k in 1usize..64) {
            let ranges = plan_shards(total, k);
            let mut cursor = 0;
            for (s, e) in ranges {
                prop_assert_eq!(s, cursor);
                prop_assert!(e > s);
                cursor = e;
            }
            prop_assert_eq!(cursor, total);
        }

        #[test]
        fn shard_lengths_differ_by_at_most_one(total in 1u64..10_000, k in 1usize..64) {
            let lens: Vec<u64> =
                plan_shards(total, k).iter().map(|(s, e)| e - s).collect();
            let min = *lens.iter().min().unwrap();
            let max = *lens.iter().max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
