//! The coordinator's crash-safe shard journal.
//!
//! Append-only JSONL, mirroring the daemon's job journal: a versioned
//! header line pinning the campaign, then one record per shard state
//! transition, each flushed before the transition is acted on. On open,
//! a torn final line (the coordinator died mid-append) is truncated
//! away and the surviving lines replay to the latest state per shard —
//! so a restarted coordinator knows which shards were dispatched where
//! and which completed, and can resume tailing / re-dispatch the rest.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use radcrit_obs::json::{self, escape};

/// Journal format version, written in the header line.
pub const FABRIC_JOURNAL_VERSION: u64 = 1;

/// Lifecycle state of one shard, as journaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// First assignment to a worker.
    Dispatched,
    /// Remaining range re-assigned after its worker died.
    Redispatched,
    /// The shard's whole index range is covered by the merged stream.
    Completed,
}

impl ShardState {
    /// The state's wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            ShardState::Dispatched => "dispatched",
            ShardState::Redispatched => "redispatched",
            ShardState::Completed => "completed",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "dispatched" => Ok(ShardState::Dispatched),
            "redispatched" => Ok(ShardState::Redispatched),
            "completed" => Ok(ShardState::Completed),
            other => Err(format!("unknown shard state {other:?}")),
        }
    }
}

/// One journaled shard state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard ordinal within the campaign's plan.
    pub shard: usize,
    /// Shard range start (inclusive, global injection index).
    pub start: u64,
    /// Shard range end (exclusive).
    pub end: u64,
    /// Worker address the shard is (or was last) assigned to.
    pub worker: String,
    /// Job id on that worker, empty until known.
    pub job: String,
    /// The transition.
    pub state: ShardState,
    /// First index not yet covered by the merged stream at the time of
    /// this transition — where a re-dispatch resumes from.
    pub resume_from: u64,
}

impl ShardRecord {
    fn render(&self) -> String {
        format!(
            "{{\"shard\":{},\"start\":{},\"end\":{},\"worker\":\"{}\",\
             \"job\":\"{}\",\"state\":\"{}\",\"resume_from\":{}}}",
            self.shard,
            self.start,
            self.end,
            escape(&self.worker),
            escape(&self.job),
            self.state.wire_name(),
            self.resume_from,
        )
    }

    fn parse(line: &str) -> Result<Self, String> {
        let v = json::parse_line(line)?;
        let obj = json::as_obj(&v)?;
        Ok(ShardRecord {
            shard: json::get_usize(obj, "shard")?,
            start: json::get_u64(obj, "start")?,
            end: json::get_u64(obj, "end")?,
            worker: json::get_str(obj, "worker")?.to_owned(),
            job: json::get_str(obj, "job")?.to_owned(),
            state: ShardState::parse(json::get_str(obj, "state")?)?,
            resume_from: json::get_u64(obj, "resume_from")?,
        })
    }
}

/// The append-only shard journal.
#[derive(Debug)]
pub struct FabricJournal {
    out: BufWriter<File>,
}

impl FabricJournal {
    /// Opens (or creates) the journal at `path` for the campaign whose
    /// canonical spec line is `campaign_json`, returning the journal,
    /// the campaign's pinned shard count, and the latest replayed state
    /// per shard (empty for a fresh file).
    ///
    /// A fresh journal writes `planned_shards` into its header; an
    /// existing journal returns the count *it* recorded, ignoring
    /// `planned_shards` — so a restarted coordinator re-derives exactly
    /// the split it first journaled even if the shard-count flag
    /// changed, and replayed records always line up with the plan by
    /// ordinal. A torn final line is truncated; a journal written for a
    /// *different* campaign is an error — re-dispatching another
    /// campaign's shards would corrupt both.
    ///
    /// # Errors
    ///
    /// I/O failures, a bad header, or a campaign mismatch.
    pub fn open(
        path: &Path,
        campaign_json: &str,
        planned_shards: usize,
    ) -> Result<(Self, usize, Vec<ShardRecord>), String> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }

        let mut latest: BTreeMap<usize, ShardRecord> = BTreeMap::new();
        let mut valid_len = 0usize;
        let mut saw_header = false;
        let mut shards = planned_shards;
        for line in text.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break; // torn final line: the append died mid-write
            };
            if !saw_header {
                let v = json::parse_line(body).map_err(|e| format!("journal header: {e}"))?;
                let obj = json::as_obj(&v).map_err(|e| format!("journal header: {e}"))?;
                let version = json::get_usize(obj, "radcrit_fabric_journal")
                    .map_err(|e| format!("journal header: {e}"))?;
                if version as u64 != FABRIC_JOURNAL_VERSION {
                    return Err(format!("unsupported fabric journal version {version}"));
                }
                let stored =
                    json::get_str(obj, "campaign").map_err(|e| format!("journal header: {e}"))?;
                if stored != campaign_json {
                    return Err(format!(
                        "journal {} belongs to a different campaign",
                        path.display()
                    ));
                }
                shards =
                    json::get_usize(obj, "shards").map_err(|e| format!("journal header: {e}"))?;
                saw_header = true;
                valid_len += line.len();
                continue;
            }
            match ShardRecord::parse(body) {
                Ok(rec) => {
                    latest.insert(rec.shard, rec);
                    valid_len += line.len();
                }
                Err(_) => break, // torn mid-file write; drop the tail
            }
        }

        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.set_len(valid_len as u64)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut journal = FabricJournal {
            out: BufWriter::new(file),
        };
        if !saw_header {
            journal
                .write_line(&format!(
                    "{{\"radcrit_fabric_journal\":{FABRIC_JOURNAL_VERSION},\
                     \"campaign\":\"{}\",\"shards\":{planned_shards}}}",
                    escape(campaign_json)
                ))
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok((journal, shards, latest.into_values().collect()))
    }

    /// Appends one shard transition, flushed to the OS before return —
    /// the coordinator acts on a transition only after it is journaled.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or flushing.
    pub fn append(&mut self, record: &ShardRecord) -> std::io::Result<()> {
        self.write_line(&record.render())
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    const CAMPAIGN: &str = r#"{"spec":1,"kernel":"dgemm","n":32,"injections":40,"seed":23}"#;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "radcrit_fabric_journal_{tag}_{}_{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rec(shard: usize, state: ShardState, worker: &str, resume_from: u64) -> ShardRecord {
        ShardRecord {
            shard,
            start: shard as u64 * 10,
            end: shard as u64 * 10 + 10,
            worker: worker.to_owned(),
            job: format!("job-{shard:06}"),
            state,
            resume_from,
        }
    }

    #[test]
    fn replay_returns_the_latest_state_per_shard() {
        let path = temp_path("replay");
        {
            let (mut j, shards, replayed) = FabricJournal::open(&path, CAMPAIGN, 4).unwrap();
            assert_eq!(shards, 4);
            assert!(replayed.is_empty());
            j.append(&rec(0, ShardState::Dispatched, "a:1", 0)).unwrap();
            j.append(&rec(1, ShardState::Dispatched, "b:2", 10))
                .unwrap();
            j.append(&rec(0, ShardState::Completed, "a:1", 10)).unwrap();
            j.append(&rec(1, ShardState::Redispatched, "a:1", 14))
                .unwrap();
        }
        let (_, _, replayed) = FabricJournal::open(&path, CAMPAIGN, 4).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].state, ShardState::Completed);
        assert_eq!(replayed[1].state, ShardState::Redispatched);
        assert_eq!(replayed[1].worker, "a:1");
        assert_eq!(replayed[1].resume_from, 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_continues() {
        let path = temp_path("torn");
        {
            let (mut j, _, _) = FabricJournal::open(&path, CAMPAIGN, 2).unwrap();
            j.append(&rec(0, ShardState::Dispatched, "a:1", 0)).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"shard\":1,\"start\":10,\"en").unwrap();
        }
        let (mut j, _, replayed) = FabricJournal::open(&path, CAMPAIGN, 2).unwrap();
        assert_eq!(replayed.len(), 1, "torn record dropped");
        j.append(&rec(1, ShardState::Dispatched, "b:2", 10))
            .unwrap();
        drop(j);
        let (_, _, replayed) = FabricJournal::open(&path, CAMPAIGN, 2).unwrap();
        assert_eq!(replayed.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn a_journal_for_another_campaign_is_rejected() {
        let path = temp_path("mismatch");
        drop(FabricJournal::open(&path, CAMPAIGN, 2).unwrap());
        let err = FabricJournal::open(&path, r#"{"spec":1,"kernel":"lava"}"#, 2);
        assert!(err.is_err(), "campaign mismatch must refuse to open");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn the_header_pins_the_shard_count_across_reopens() {
        let path = temp_path("pinned");
        drop(FabricJournal::open(&path, CAMPAIGN, 3).unwrap());
        // A restart with a different shard-count flag keeps the
        // journaled split — otherwise replayed ordinals would index a
        // different plan.
        let (_, shards, _) = FabricJournal::open(&path, CAMPAIGN, 7).unwrap();
        assert_eq!(shards, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ranges_beyond_u32_survive_a_round_trip() {
        let path = temp_path("u64");
        let big = ShardRecord {
            shard: 0,
            start: 1 << 40,
            end: (1 << 40) + 10,
            worker: "a:1".to_owned(),
            job: "job-000000".to_owned(),
            state: ShardState::Dispatched,
            resume_from: (1 << 40) + 3,
        };
        {
            let (mut j, _, _) = FabricJournal::open(&path, CAMPAIGN, 1).unwrap();
            j.append(&big).unwrap();
        }
        let (_, _, replayed) = FabricJournal::open(&path, CAMPAIGN, 1).unwrap();
        assert_eq!(replayed, vec![big]);
        std::fs::remove_file(&path).ok();
    }
}
