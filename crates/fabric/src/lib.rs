//! Federated campaign fabric: the pure logic behind coordinator-sharded
//! multi-daemon campaigns.
//!
//! One campaign's injection index range `0..N` is split into contiguous
//! shards ([`plan_shards`]), each shard is placed on a worker daemon by
//! rendezvous-hashing the campaign's golden content address
//! ([`rendezvous_rank`]) so re-runs of the same campaign warm the same
//! golden caches, and every shard's event stream is folded into one
//! [`MergedStream`] whose aggregate is byte-identical to a single-node
//! run of the same seed — the invariant
//! `crates/campaign/tests/shard_determinism.rs` pins.
//!
//! Fault tolerance is journal + heartbeat shaped: the
//! [`FabricJournal`] records every shard assignment, re-dispatch and
//! completion (append-only JSONL, torn-tail tolerant, mirroring the
//! daemon's job journal), and the [`WorkerRegistry`] tracks heartbeat
//! recency so a dead worker's shards can be re-dispatched — from the
//! merged stream's *covered frontier*, not from scratch, because the
//! fold is idempotent per global injection index and shard event files
//! are written in index order.
//!
//! This crate is transport-free: it depends only on `radcrit-obs` (the
//! event/JSON/analytics vocabulary). HTTP dispatch, SSE tailing and the
//! coordinator endpoints live in `radcrit-serve`, which composes these
//! pieces.

pub mod journal;
pub mod merge;
pub mod plan;
pub mod registry;

pub use journal::{FabricJournal, ShardRecord, ShardState};
pub use merge::{IngestOutcome, MergedStream};
pub use plan::{plan_shards, rendezvous_rank};
pub use registry::{ClockEstimate, ClockProbe, Worker, WorkerRegistry};
