//! Worker health tracking: registration, heartbeat recency and the
//! sweep that declares silent workers dead.
//!
//! All time flows in through explicit [`Instant`] parameters — the
//! registry never reads the clock itself — so the heartbeat-timeout
//! state machine is testable without sleeping.

use std::time::{Duration, Instant};

/// One registered worker daemon.
#[derive(Debug, Clone)]
pub struct Worker {
    /// The worker's HTTP address, `host:port` — its identity.
    pub addr: String,
    /// Last successful heartbeat (or registration) time.
    pub last_seen: Instant,
    /// Whether the worker is currently considered alive.
    pub alive: bool,
}

/// The coordinator's view of its worker fleet.
#[derive(Debug)]
pub struct WorkerRegistry {
    workers: Vec<Worker>,
    timeout: Duration,
}

impl WorkerRegistry {
    /// An empty registry declaring workers dead after `timeout` without
    /// a heartbeat.
    pub fn new(timeout: Duration) -> Self {
        WorkerRegistry {
            workers: Vec::new(),
            timeout,
        }
    }

    /// The configured heartbeat timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Registers a worker (idempotent by address). Re-registering a
    /// dead worker revives it — a restarted daemon re-joins the fleet.
    /// Returns the worker's index.
    pub fn register(&mut self, addr: &str, now: Instant) -> usize {
        if let Some(i) = self.workers.iter().position(|w| w.addr == addr) {
            self.workers[i].last_seen = now;
            self.workers[i].alive = true;
            return i;
        }
        self.workers.push(Worker {
            addr: addr.to_owned(),
            last_seen: now,
            alive: true,
        });
        self.workers.len() - 1
    }

    /// Records a successful heartbeat for `addr` (no-op for unknown
    /// addresses). A heartbeat does *not* revive a worker already swept
    /// dead: its shards are being re-dispatched, and a zombie answering
    /// probes must not be handed work until it re-registers.
    pub fn mark_seen(&mut self, addr: &str, now: Instant) {
        if let Some(w) = self.workers.iter_mut().find(|w| w.addr == addr) {
            if w.alive {
                w.last_seen = now;
            }
        }
    }

    /// Declares a worker dead immediately (a connection actively
    /// refused is stronger evidence than a missed heartbeat).
    pub fn mark_dead(&mut self, addr: &str) {
        if let Some(w) = self.workers.iter_mut().find(|w| w.addr == addr) {
            w.alive = false;
        }
    }

    /// Sweeps the fleet at time `now`: every live worker whose last
    /// heartbeat is older than the timeout flips to dead, and the newly
    /// dead addresses are returned (each exactly once) so the caller can
    /// re-dispatch their shards.
    pub fn sweep_at(&mut self, now: Instant) -> Vec<String> {
        let mut newly_dead = Vec::new();
        for w in &mut self.workers {
            if w.alive && now.duration_since(w.last_seen) > self.timeout {
                w.alive = false;
                newly_dead.push(w.addr.clone());
            }
        }
        newly_dead
    }

    /// Addresses of all currently live workers, in registration order.
    pub fn alive(&self) -> Vec<String> {
        self.workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.addr.clone())
            .collect()
    }

    /// Number of currently live workers.
    pub fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Whether `addr` is registered and live.
    pub fn is_alive(&self, addr: &str) -> bool {
        self.workers.iter().any(|w| w.addr == addr && w.alive)
    }

    /// All workers, live and dead, in registration order.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn registration_is_idempotent_by_address() {
        let now = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        assert_eq!(reg.register("a:1", now), 0);
        assert_eq!(reg.register("b:2", now), 1);
        assert_eq!(reg.register("a:1", now), 0, "same index on re-register");
        assert_eq!(reg.alive_count(), 2);
    }

    #[test]
    fn sweep_kills_silent_workers_once() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        reg.register("b:2", t0);
        reg.mark_seen("b:2", t0 + Duration::from_secs(3));
        let dead = reg.sweep_at(t0 + Duration::from_secs(4));
        assert_eq!(dead, ["a:1"], "only the silent worker dies");
        assert!(!reg.is_alive("a:1"));
        assert!(reg.is_alive("b:2"));
        assert!(
            reg.sweep_at(t0 + Duration::from_secs(5)).is_empty(),
            "a dead worker is reported exactly once"
        );
    }

    #[test]
    fn heartbeats_do_not_revive_the_dead_but_reregistration_does() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        reg.mark_dead("a:1");
        reg.mark_seen("a:1", t0 + Duration::from_secs(1));
        assert!(!reg.is_alive("a:1"), "zombie heartbeat must not revive");
        reg.register("a:1", t0 + Duration::from_secs(1));
        assert!(reg.is_alive("a:1"), "explicit re-registration revives");
        assert_eq!(reg.workers().len(), 1);
    }

    #[test]
    fn alive_listing_follows_registration_order() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("c:3", t0);
        reg.register("a:1", t0);
        reg.register("b:2", t0);
        reg.mark_dead("a:1");
        assert_eq!(reg.alive(), ["c:3", "b:2"]);
    }
}
