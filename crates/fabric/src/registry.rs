//! Worker health tracking: registration, heartbeat recency and the
//! sweep that declares silent workers dead.
//!
//! All time flows in through explicit [`Instant`] parameters — the
//! registry never reads the clock itself — so the heartbeat-timeout
//! state machine is testable without sleeping.

use std::time::{Duration, Instant};

/// Clock probes each worker keeps at most; older probes age out. The
/// best (lowest-RTT) estimate wins, so a short recent history is
/// enough while staying bounded on week-long campaigns.
pub const PROBE_CAP: usize = 64;

/// One heartbeat round-trip measurement against a worker's clock: the
/// coordinator records the probe's RTT and the midpoint-method offset
/// (worker µs-since-epoch → coordinator µs-since-epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockProbe {
    /// When the probe completed (coordinator clock).
    pub at: Instant,
    /// Round-trip time of the healthz probe.
    pub rtt: Duration,
    /// Microseconds to add to a worker timestamp to land it on the
    /// coordinator timeline: `coordinator_midpoint_us - worker_now_us`.
    pub offset_us: i64,
}

/// The registry's best clock-offset estimate for one worker: the
/// lowest-RTT probe in the trailing history, whose symmetric-delay
/// error bound is half its RTT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Microseconds to add to worker timestamps (may be negative).
    pub offset_us: i64,
    /// Error bound of the estimate: the chosen probe's `rtt / 2`.
    pub error_us: u64,
}

/// One registered worker daemon.
#[derive(Debug, Clone)]
pub struct Worker {
    /// The worker's HTTP address, `host:port` — its identity.
    pub addr: String,
    /// Last successful heartbeat (or registration) time.
    pub last_seen: Instant,
    /// Whether the worker is currently considered alive.
    pub alive: bool,
    /// Recent clock probes, oldest first (bounded by [`PROBE_CAP`]).
    pub probes: Vec<ClockProbe>,
    /// Alive→dead transitions this worker has suffered.
    pub deaths: u64,
}

/// The coordinator's view of its worker fleet.
#[derive(Debug)]
pub struct WorkerRegistry {
    workers: Vec<Worker>,
    timeout: Duration,
}

impl WorkerRegistry {
    /// An empty registry declaring workers dead after `timeout` without
    /// a heartbeat.
    pub fn new(timeout: Duration) -> Self {
        WorkerRegistry {
            workers: Vec::new(),
            timeout,
        }
    }

    /// The configured heartbeat timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Registers a worker (idempotent by address). Re-registering a
    /// dead worker revives it — a restarted daemon re-joins the fleet.
    /// Returns the worker's index.
    pub fn register(&mut self, addr: &str, now: Instant) -> usize {
        if let Some(i) = self.workers.iter().position(|w| w.addr == addr) {
            self.workers[i].last_seen = now;
            self.workers[i].alive = true;
            return i;
        }
        self.workers.push(Worker {
            addr: addr.to_owned(),
            last_seen: now,
            alive: true,
            probes: Vec::new(),
            deaths: 0,
        });
        self.workers.len() - 1
    }

    /// Records one heartbeat clock probe for `addr` (no-op for unknown
    /// addresses), keeping at most [`PROBE_CAP`] recent probes.
    pub fn record_probe(&mut self, addr: &str, probe: ClockProbe) {
        if let Some(w) = self.workers.iter_mut().find(|w| w.addr == addr) {
            if w.probes.len() >= PROBE_CAP {
                w.probes.remove(0);
            }
            w.probes.push(probe);
        }
    }

    /// The best clock-offset estimate for `addr`: the lowest-RTT probe
    /// in the trailing history (symmetric-delay midpoint method, error
    /// bound RTT/2). `None` until a probe has been recorded.
    pub fn clock_offset(&self, addr: &str) -> Option<ClockEstimate> {
        let w = self.workers.iter().find(|w| w.addr == addr)?;
        let best = w.probes.iter().min_by_key(|p| p.rtt)?;
        Some(ClockEstimate {
            offset_us: best.offset_us,
            error_us: (best.rtt.as_micros() / 2) as u64,
        })
    }

    /// Cumulative alive→dead transitions across the whole fleet — the
    /// input of the `worker-flapping` alert rule.
    pub fn deaths_total(&self) -> u64 {
        self.workers.iter().map(|w| w.deaths).sum()
    }

    /// Records a successful heartbeat for `addr` (no-op for unknown
    /// addresses). A heartbeat does *not* revive a worker already swept
    /// dead: its shards are being re-dispatched, and a zombie answering
    /// probes must not be handed work until it re-registers.
    pub fn mark_seen(&mut self, addr: &str, now: Instant) {
        if let Some(w) = self.workers.iter_mut().find(|w| w.addr == addr) {
            if w.alive {
                w.last_seen = now;
            }
        }
    }

    /// Declares a worker dead immediately (a connection actively
    /// refused is stronger evidence than a missed heartbeat). Returns
    /// whether this call flipped a live worker — `false` for unknown
    /// addresses and workers already struck, so callers can act on the
    /// death edge exactly once.
    pub fn mark_dead(&mut self, addr: &str) -> bool {
        if let Some(w) = self.workers.iter_mut().find(|w| w.addr == addr) {
            if w.alive {
                w.deaths += 1;
                w.alive = false;
                return true;
            }
        }
        false
    }

    /// Sweeps the fleet at time `now`: every live worker whose last
    /// heartbeat is older than the timeout flips to dead, and the newly
    /// dead addresses are returned (each exactly once) so the caller can
    /// re-dispatch their shards.
    pub fn sweep_at(&mut self, now: Instant) -> Vec<String> {
        let mut newly_dead = Vec::new();
        for w in &mut self.workers {
            if w.alive && now.duration_since(w.last_seen) > self.timeout {
                w.alive = false;
                w.deaths += 1;
                newly_dead.push(w.addr.clone());
            }
        }
        newly_dead
    }

    /// Addresses of all currently live workers, in registration order.
    pub fn alive(&self) -> Vec<String> {
        self.workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.addr.clone())
            .collect()
    }

    /// Number of currently live workers.
    pub fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Whether `addr` is registered and live.
    pub fn is_alive(&self, addr: &str) -> bool {
        self.workers.iter().any(|w| w.addr == addr && w.alive)
    }

    /// All workers, live and dead, in registration order.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn registration_is_idempotent_by_address() {
        let now = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        assert_eq!(reg.register("a:1", now), 0);
        assert_eq!(reg.register("b:2", now), 1);
        assert_eq!(reg.register("a:1", now), 0, "same index on re-register");
        assert_eq!(reg.alive_count(), 2);
    }

    #[test]
    fn sweep_kills_silent_workers_once() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        reg.register("b:2", t0);
        reg.mark_seen("b:2", t0 + Duration::from_secs(3));
        let dead = reg.sweep_at(t0 + Duration::from_secs(4));
        assert_eq!(dead, ["a:1"], "only the silent worker dies");
        assert!(!reg.is_alive("a:1"));
        assert!(reg.is_alive("b:2"));
        assert!(
            reg.sweep_at(t0 + Duration::from_secs(5)).is_empty(),
            "a dead worker is reported exactly once"
        );
    }

    #[test]
    fn heartbeats_do_not_revive_the_dead_but_reregistration_does() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        reg.mark_dead("a:1");
        reg.mark_seen("a:1", t0 + Duration::from_secs(1));
        assert!(!reg.is_alive("a:1"), "zombie heartbeat must not revive");
        reg.register("a:1", t0 + Duration::from_secs(1));
        assert!(reg.is_alive("a:1"), "explicit re-registration revives");
        assert_eq!(reg.workers().len(), 1);
    }

    #[test]
    fn clock_probes_prefer_the_lowest_rtt_and_stay_bounded() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        assert_eq!(reg.clock_offset("a:1"), None, "no probe yet");
        reg.record_probe(
            "a:1",
            ClockProbe {
                at: t0,
                rtt: Duration::from_micros(900),
                offset_us: 5_000,
            },
        );
        reg.record_probe(
            "a:1",
            ClockProbe {
                at: t0 + Duration::from_secs(1),
                rtt: Duration::from_micros(200),
                offset_us: 4_700,
            },
        );
        let est = reg.clock_offset("a:1").unwrap();
        assert_eq!(est.offset_us, 4_700, "the lowest-RTT probe wins");
        assert_eq!(est.error_us, 100, "error bound is RTT/2");
        for i in 0..(PROBE_CAP * 2) {
            reg.record_probe(
                "a:1",
                ClockProbe {
                    at: t0,
                    rtt: Duration::from_millis(10),
                    offset_us: i as i64,
                },
            );
        }
        assert_eq!(reg.workers()[0].probes.len(), PROBE_CAP);
        assert!(reg.clock_offset("nope").is_none());
    }

    #[test]
    fn deaths_accumulate_once_per_transition() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("a:1", t0);
        reg.register("b:2", t0);
        assert_eq!(reg.deaths_total(), 0);
        reg.mark_dead("a:1");
        reg.mark_dead("a:1"); // already dead: not a second transition
        assert_eq!(reg.deaths_total(), 1);
        let dead = reg.sweep_at(t0 + Duration::from_secs(10));
        assert_eq!(dead, ["b:2"]);
        assert_eq!(reg.deaths_total(), 2);
        // Revival and a second death count again.
        reg.register("a:1", t0 + Duration::from_secs(10));
        reg.mark_dead("a:1");
        assert_eq!(reg.deaths_total(), 3);
    }

    #[test]
    fn alive_listing_follows_registration_order() {
        let t0 = Instant::now();
        let mut reg = WorkerRegistry::new(T);
        reg.register("c:3", t0);
        reg.register("a:1", t0);
        reg.register("b:2", t0);
        reg.mark_dead("a:1");
        assert_eq!(reg.alive(), ["c:3", "b:2"]);
    }
}
