//! The coordinator's merged event stream: every shard's tail folds into
//! one [`CriticalityAggregator`] and (optionally) one merged JSONL file
//! backing the federated `/jobs/:id/stream`.
//!
//! Idempotence per *global* injection index is the load-bearing
//! property: shard tails reconnect and replay from `Last-Event-ID`, a
//! re-dispatched shard re-delivers the prefix its dead predecessor
//! already streamed, and none of it changes the aggregate — an index is
//! folded and written at most once. The merged file keeps the analytic
//! skeleton of the campaign (the `run_begin` header, one terminal
//! `provenance`/`replay` line per index, and a synthesized `run_end`
//! once every index is covered); per-shard detail events stay on the
//! worker that produced them.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

use radcrit_obs::event::parse_event_line;
use radcrit_obs::CriticalityAggregator;

/// What [`MergedStream::ingest_line`] did with a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// A `run_begin` header (folded; written once).
    Header,
    /// A terminal event covering a previously uncovered index.
    NewIndex(u64),
    /// A terminal event for an index already covered — a re-delivery,
    /// ignored by fold and file alike.
    Duplicate,
    /// Anything else (detail events, shard `run_end` trailers, torn
    /// fragments) — not part of the merged skeleton.
    Other,
}

/// The merged fold of all shard event streams of one campaign.
#[derive(Debug)]
pub struct MergedStream {
    agg: CriticalityAggregator,
    covered: HashSet<u64>,
    total: u64,
    out: Option<BufWriter<File>>,
    header_written: bool,
    end_written: bool,
}

impl MergedStream {
    /// A fresh merge of a campaign with `total` injections, writing the
    /// merged skeleton to `out` when given (truncating any previous
    /// file there).
    ///
    /// # Errors
    ///
    /// Any I/O error creating the output file.
    pub fn create(total: u64, out: Option<&Path>) -> std::io::Result<Self> {
        let out = match out {
            Some(path) => Some(BufWriter::new(File::create(path)?)),
            None => None,
        };
        Ok(MergedStream {
            agg: CriticalityAggregator::new(),
            covered: HashSet::new(),
            total,
            out,
            header_written: false,
            end_written: false,
        })
    }

    /// Reopens an existing merged file (a coordinator restart): every
    /// complete line is re-ingested — recovering the covered set and
    /// the aggregate — and a torn final line is truncated away before
    /// appending resumes.
    ///
    /// # Errors
    ///
    /// I/O failures, or merged lines that no longer parse as events.
    pub fn resume(total: u64, path: &Path) -> Result<Self, String> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
        let mut merged = MergedStream {
            agg: CriticalityAggregator::new(),
            covered: HashSet::new(),
            total,
            out: None,
            header_written: false,
            end_written: false,
        };
        let mut valid_len = 0usize;
        for line in text.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break;
            };
            merged.ingest_line(body)?;
            valid_len += line.len();
        }
        // A resumed file may already carry the synthesized run_end.
        merged.end_written = merged.agg.is_finished();
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        file.set_len(valid_len as u64)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        use std::io::{Seek, SeekFrom};
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len as u64))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        merged.out = Some(BufWriter::new(file));
        Ok(merged)
    }

    /// Ingests one event line from any shard's tail. See
    /// [`IngestOutcome`] for the classification; the fold itself is
    /// the aggregator's, so everything `fold_line` tolerates (torn
    /// fragments, unknown kinds) is tolerated here.
    ///
    /// # Errors
    ///
    /// A parseable terminal event with ill-typed fields, or I/O errors
    /// appending to the merged file.
    pub fn ingest_line(&mut self, line: &str) -> Result<IngestOutcome, String> {
        let Ok(event) = parse_event_line(line) else {
            return Ok(IngestOutcome::Other);
        };
        match event.kind.as_str() {
            "run_begin" => {
                self.agg.fold_line(line)?;
                if !self.header_written {
                    self.header_written = true;
                    self.write_line(line)?;
                }
                Ok(IngestOutcome::Header)
            }
            // A shard's own trailer ends that shard, not the campaign;
            // the merged stream synthesizes its own in `finish`.
            "run_end" => Ok(IngestOutcome::Other),
            "provenance" | "replay" => {
                let Some(index) = event.index else {
                    return Ok(IngestOutcome::Other);
                };
                if self.covered.contains(&index) {
                    return Ok(IngestOutcome::Duplicate);
                }
                self.agg.fold_line(line)?;
                self.covered.insert(index);
                self.write_line(line)?;
                Ok(IngestOutcome::NewIndex(index))
            }
            _ => Ok(IngestOutcome::Other),
        }
    }

    /// Synthesizes and writes the `run_end` trailer once every index is
    /// covered (idempotent; a no-op while indices are missing), and
    /// flushes the merged file. Call after every ingest batch — the
    /// tailer serving `/jobs/:id/stream` only sees flushed lines.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or flushing.
    pub fn finish_if_complete(&mut self) -> Result<(), String> {
        if self.is_complete() && !self.end_written {
            self.end_written = true;
            let line = format!(
                "{{\"e\":\"run_end\",\"produced\":{},\"masked\":{},\"sdc\":{},\
                 \"crash\":{},\"hang\":{}}}",
                self.covered.len(),
                self.agg.masked(),
                self.agg.sdc(),
                self.agg.crash(),
                self.agg.hang(),
            );
            self.agg.fold_line(&line)?;
            self.write_line(&line)?;
        }
        if let Some(out) = self.out.as_mut() {
            out.flush().map_err(|e| format!("merged stream: {e}"))?;
        }
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        if let Some(out) = self.out.as_mut() {
            out.write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .map_err(|e| format!("merged stream: {e}"))?;
        }
        Ok(())
    }

    /// The merged aggregate — the coordinator's `/analytics` body and,
    /// once complete, the source of the federated `CampaignSummary`.
    pub fn aggregator(&self) -> &CriticalityAggregator {
        &self.agg
    }

    /// Indices covered so far.
    pub fn covered(&self) -> u64 {
        self.covered.len() as u64
    }

    /// Whether index `i` is covered.
    pub fn is_covered(&self, i: u64) -> bool {
        self.covered.contains(&i)
    }

    /// Indices of `start..end` covered so far.
    pub fn covered_in(&self, start: u64, end: u64) -> u64 {
        (start..end).filter(|i| self.covered.contains(i)).count() as u64
    }

    /// The first index of `start..end` not yet covered (`end` when the
    /// whole range is covered). Shard event files are written in index
    /// order, so this is the exact point a re-dispatched shard resumes
    /// from.
    pub fn next_uncovered(&self, start: u64, end: u64) -> u64 {
        (start..end)
            .find(|i| !self.covered.contains(i))
            .unwrap_or(end)
    }

    /// Whether every index of `0..total` is covered.
    pub fn is_complete(&self) -> bool {
        self.covered.len() as u64 == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "radcrit_fabric_merge_{tag}_{}_{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    const HEADER: &str = r#"{"e":"run_begin","device":"K40","injections":3,"seed":7,"kernel":"dgemm","input":"32x32","sigma":100.0}"#;

    fn prov(i: u64, outcome: &str) -> String {
        format!(
            "{{\"e\":\"provenance\",\"i\":{i},\"site\":\"fpu\",\"delivered\":true,\
             \"touched\":[],\"outcome\":\"{outcome}\",\"mismatches\":0,\
             \"class\":\"none\",\"critical\":false}}"
        )
    }

    #[test]
    fn redelivery_is_idempotent_and_completion_synthesizes_run_end() {
        let path = temp_path("idem");
        let mut m = MergedStream::create(3, Some(&path)).unwrap();
        assert_eq!(m.ingest_line(HEADER).unwrap(), IngestOutcome::Header);
        assert_eq!(
            m.ingest_line(&prov(0, "MASKED")).unwrap(),
            IngestOutcome::NewIndex(0)
        );
        // Reconnect replays the whole prefix; nothing changes.
        assert_eq!(m.ingest_line(HEADER).unwrap(), IngestOutcome::Header);
        assert_eq!(
            m.ingest_line(&prov(0, "MASKED")).unwrap(),
            IngestOutcome::Duplicate
        );
        m.ingest_line(&prov(2, "CRASH")).unwrap();
        m.finish_if_complete().unwrap();
        assert!(!m.is_complete());
        assert_eq!(m.next_uncovered(0, 3), 1);
        m.ingest_line(&prov(1, "MASKED")).unwrap();
        m.finish_if_complete().unwrap();
        assert!(m.is_complete());
        assert!(m.aggregator().is_finished());
        assert_eq!(m.aggregator().masked(), 2);
        assert_eq!(m.aggregator().crash(), 1);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "header + 3 terminals + run_end: {text}");
        assert!(lines[0].contains("run_begin"));
        assert!(lines[4].contains("run_end"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_run_end_trailers_are_not_campaign_end() {
        let mut m = MergedStream::create(2, None).unwrap();
        m.ingest_line(HEADER).unwrap();
        m.ingest_line(&prov(0, "MASKED")).unwrap();
        assert_eq!(
            m.ingest_line(r#"{"e":"run_end","produced":1,"masked":1,"sdc":0,"crash":0,"hang":0}"#)
                .unwrap(),
            IngestOutcome::Other
        );
        m.finish_if_complete().unwrap();
        assert!(
            !m.aggregator().is_finished(),
            "one shard ending is not the campaign ending"
        );
    }

    #[test]
    fn resume_recovers_coverage_and_truncates_torn_tail() {
        let path = temp_path("resume");
        {
            let mut m = MergedStream::create(3, Some(&path)).unwrap();
            m.ingest_line(HEADER).unwrap();
            m.ingest_line(&prov(0, "MASKED")).unwrap();
            m.finish_if_complete().unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"e\":\"provenance\",\"i\":1").unwrap();
        }
        let mut m = MergedStream::resume(3, &path).unwrap();
        assert_eq!(m.covered(), 1);
        assert!(m.is_covered(0));
        assert_eq!(m.next_uncovered(0, 3), 1);
        m.ingest_line(&prov(1, "SDC")).unwrap();
        m.ingest_line(&prov(2, "MASKED")).unwrap();
        m.finish_if_complete().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().all(|l| parse_event_line(l).is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn covered_in_counts_per_shard_progress() {
        let mut m = MergedStream::create(10, None).unwrap();
        for i in [0u64, 1, 2, 7] {
            m.ingest_line(&prov(i, "MASKED")).unwrap();
        }
        assert_eq!(m.covered_in(0, 5), 3);
        assert_eq!(m.covered_in(5, 10), 1);
        assert_eq!(m.next_uncovered(5, 10), 5);
        assert_eq!(m.next_uncovered(0, 3), 3, "fully covered range");
    }
}
