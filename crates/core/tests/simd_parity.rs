//! Property suite pinning every vectorized executor primitive to the
//! [`Scalar`] bit-identity reference.
//!
//! Each test runs the same inputs through the dispatching free function
//! (which uses the best ISA runtime detection found on this host —
//! AVX2 on x86-64, NEON on aarch64) and through [`Scalar`] directly,
//! and asserts the results are identical down to the bit: same indices,
//! same tie-breaking (first match / first minimum), same NaN payloads
//! in written buffers. On a host with no vector unit both sides run the
//! same scalar code and the suite degenerates to a self-check.
//!
//! Inputs deliberately cover the shapes the kernels produce: empty
//! slices, lengths around every vector-width boundary, unaligned heads
//! and tails (slices taken at an odd offset into a larger buffer), and
//! NaNs with distinct payload bits.

use proptest::prelude::*;

use radcrit_core::compare::compare_slices;
use radcrit_core::dirty::DirtyRegion;
use radcrit_core::exec::{self, KernelExecutor, Scalar};
use radcrit_core::shape::OutputShape;

/// f64 entropy that actually exercises the match rule: ordinary values
/// from a small set (so equal pairs are common), signed zeros, infs,
/// and NaNs with different payloads (which must compare as matching).
fn tricky_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-4i32..5).prop_map(f64::from),
        any::<u32>().prop_map(|b| f64::from_bits(0x7ff8_0000_0000_0000 | u64::from(b))),
        any::<u32>().prop_map(|b| f64::from_bits(0xfff8_0000_0000_0000 | u64::from(b))),
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        any::<u32>().prop_map(|b| f64::from(b) * 1.5e-3),
    ]
}

fn tricky_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-4i32..5).prop_map(|v| v as f32),
        any::<u16>().prop_map(|b| f32::from_bits(0x7fc0_0000 | u32::from(b))),
        any::<u16>().prop_map(|b| f32::from_bits(0xffc0_0000 | u32::from(b))),
        Just(0.0f32),
        Just(-0.0f32),
        any::<u16>().prop_map(|b| f32::from(b) * 1.5e-3),
    ]
}

/// Pairs of nearly-identical buffers: `observed` starts as a copy of
/// `golden` and gets a few elements flipped, mirroring how injection
/// outputs differ from the golden output in a handful of places.
fn mismatch_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, usize)> {
    (
        prop::collection::vec(tricky_f64(), 0..97),
        prop::collection::vec((0usize..10_000, tricky_f64()), 0..5),
        0usize..10_000,
    )
        .prop_map(|(golden, flips, from)| {
            let mut observed = golden.clone();
            for (idx, v) in flips {
                if !observed.is_empty() {
                    let i = idx % observed.len();
                    observed[i] = v;
                }
            }
            let from = from % (golden.len() + 1);
            (golden, observed, from)
        })
}

proptest! {
    /// Way-scan: first index of the needle, or None — identical over
    /// random haystacks, including ones where the needle repeats.
    #[test]
    fn find_u64_matches_scalar(
        haystack in prop::collection::vec(0u64..16, 0..67),
        needle in 0u64..16,
        off in 0usize..8,
    ) {
        let tail = &haystack[off.min(haystack.len())..];
        prop_assert_eq!(exec::find_u64(tail, needle), Scalar::find_u64(tail, needle));
    }

    /// LRU victim scan: first minimum index, with duplicate minima
    /// resolving to the lowest index on both sides.
    #[test]
    fn min_index_u64_matches_scalar(
        vals in prop::collection::vec(0u64..32, 1..67),
        off in 0usize..8,
    ) {
        let tail = &vals[off.min(vals.len() - 1)..];
        prop_assert_eq!(exec::min_index_u64(tail), Scalar::min_index_u64(tail));
    }

    /// Sparse compare scan: first index past `from` where golden and
    /// observed disagree (NaN matches NaN regardless of payload).
    #[test]
    fn next_mismatch_f64_matches_scalar((golden, observed, from) in mismatch_pair()) {
        prop_assert_eq!(
            exec::next_mismatch_f64(&golden, &observed, from),
            Scalar::next_mismatch_f64(&golden, &observed, from)
        );
    }

    /// Single-precision compare scan parity.
    #[test]
    fn next_mismatch_f32_matches_scalar(
        golden in prop::collection::vec(tricky_f32(), 0..97),
        flips in prop::collection::vec((0usize..10_000, tricky_f32()), 0..5),
        from_idx in 0usize..10_000,
    ) {
        let mut observed = golden.clone();
        for (idx, v) in flips {
            if !observed.is_empty() {
                let i = idx % observed.len();
                observed[i] = v;
            }
        }
        let from = from_idx % (golden.len() + 1);
        prop_assert_eq!(
            exec::next_mismatch_f32(&golden, &observed, from),
            Scalar::next_mismatch_f32(&golden, &observed, from)
        );
    }

    /// FMA row kernel: the accumulator after the vectorized pass is
    /// bit-identical to the scalar pass wherever the result is a
    /// number; NaN results agree on NaN-ness only (the documented
    /// carve-out — soft-float and hardware FMA propagate NaN payloads
    /// differently, and every consumer is payload-blind).
    #[test]
    fn fma_row_matches_scalar(
        a in tricky_f64(),
        row in prop::collection::vec(tricky_f64(), 0..67),
        acc0 in prop::collection::vec(tricky_f64(), 0..67),
    ) {
        let n = row.len().min(acc0.len());
        let mut vec_acc = acc0.clone();
        let mut ref_acc = acc0.clone();
        exec::fma_row(a, &row[..n], &mut vec_acc[..n]);
        Scalar::fma_row(a, &row[..n], &mut ref_acc[..n]);
        for (v, r) in vec_acc.iter().zip(&ref_acc) {
            if r.is_nan() {
                prop_assert!(v.is_nan(), "scalar NaN vs vector {v}");
            } else {
                prop_assert_eq!(v.to_bits(), r.to_bits());
            }
        }
    }

    /// Scalar FMA: a single fused multiply-add matches `f64::mul_add`,
    /// with the NaN carve-out applied on the dispatched side.
    #[test]
    fn fma_matches_mul_add(a in tricky_f64(), b in tricky_f64(), c in tricky_f64()) {
        let reference = a.mul_add(b, c);
        prop_assert_eq!(Scalar::fma(a, b, c).to_bits(), reference.to_bits());
        let dispatched = exec::fma(a, b, c);
        if reference.is_nan() {
            prop_assert!(dispatched.is_nan());
        } else {
            prop_assert_eq!(dispatched.to_bits(), reference.to_bits());
        }
    }

    /// Bulk copy (snapshot delta capture/apply): byte-identical
    /// destination, NaN payloads included, at unaligned offsets.
    #[test]
    fn copy_f64_matches_scalar(
        src in prop::collection::vec(tricky_f64(), 0..97),
        off in 0usize..8,
    ) {
        let tail = &src[off.min(src.len())..];
        let mut vec_dst = vec![0.0f64; tail.len()];
        let mut ref_dst = vec![0.0f64; tail.len()];
        exec::copy_f64(tail, &mut vec_dst);
        Scalar::copy_f64(tail, &mut ref_dst);
        let vec_bits: Vec<u64> = vec_dst.iter().map(|v| v.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_dst.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(vec_bits, ref_bits);
    }

    /// Dirty-span clamp: same surviving spans in the same order, with
    /// saturating ends, over spans that may be empty or out of range.
    #[test]
    fn clamp_spans_matches_scalar(
        spans in prop::collection::vec((0usize..300, 0usize..40), 0..33),
        len in 0usize..256,
    ) {
        let mut vec_out = Vec::new();
        let mut ref_out = Vec::new();
        exec::clamp_spans(&spans, len, &mut vec_out);
        Scalar::clamp_spans(&spans, len, &mut ref_out);
        prop_assert_eq!(vec_out, ref_out);
    }

    /// End-to-end: the full error report built by the dispatched
    /// compare equals the one built with dispatch pinned to scalar.
    #[test]
    fn compare_slices_report_is_isa_invariant(
        (golden, observed, _) in mismatch_pair(),
    ) {
        prop_assume!(!golden.is_empty());
        let shape = OutputShape::d1(golden.len());
        let vectored = compare_slices(&golden, &observed, shape).unwrap();
        let pinned = {
            let _g = exec::scalar_scope();
            compare_slices(&golden, &observed, shape).unwrap()
        };
        prop_assert_eq!(format!("{vectored:?}"), format!("{pinned:?}"));
    }

    /// End-to-end: the dirty-region union (clamp + sort + merge) is
    /// ISA-invariant.
    #[test]
    fn dirty_region_is_isa_invariant(
        spans in prop::collection::vec((0usize..300, 0usize..40), 0..33),
        len in 0usize..256,
    ) {
        let vectored = DirtyRegion::from_spans(spans.clone(), len);
        let pinned = {
            let _g = exec::scalar_scope();
            DirtyRegion::from_spans(spans, len)
        };
        prop_assert_eq!(format!("{vectored:?}"), format!("{pinned:?}"));
    }
}
