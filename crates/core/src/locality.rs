//! Spatial locality of corrupted elements (metric 4, §III).
//!
//! When several elements are corrupted the paper classifies the error
//! pattern by how the corrupted coordinates align with the output axes:
//!
//! * **Single** — exactly one corrupted element;
//! * **Line** — all corrupted elements share their position on all axes
//!   but one (e.g. one row or one column of a matrix);
//! * **Square** — the corrupted elements extend along exactly two axes and
//!   form a dense cluster;
//! * **Cubic** — the corrupted elements extend along three axes and form a
//!   dense cluster (only possible for rank-3 outputs such as LavaMD's);
//! * **Random** — the corrupted elements extend along two or more axes but
//!   are scattered, without the block structure of square/cubic errors.
//!
//! Locality matters because it determines which software hardening
//! strategies apply: ABFT DGEMM corrects single and line errors in linear
//! time but not square or random ones (§III).
//!
//! The square/cubic-versus-random distinction requires a density notion:
//! a block error produced by a corrupted shared structure fills its
//! bounding box densely, while unrelated scattered corruption leaves the
//! box almost empty. [`LocalityClassifier::density_threshold`] makes the
//! cut-off explicit and configurable (the paper does not publish its exact
//! rule; the default of 0.05 reproduces its qualitative break-downs).

use serde::{Deserialize, Serialize};

use crate::report::ErrorReport;

/// The spatial-locality classes of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpatialClass {
    /// No corrupted elements (not plotted in the paper; kept so that a
    /// fully-filtered execution still has a well-defined classification).
    None,
    /// Exactly one corrupted element.
    Single,
    /// Corrupted elements aligned along one axis.
    Line,
    /// Corrupted elements spanning two axes as a dense block.
    Square,
    /// Corrupted elements spanning three axes as a dense block.
    Cubic,
    /// Corrupted elements scattered across two or more axes.
    Random,
}

impl SpatialClass {
    /// All classes that appear in the paper's FIT break-downs, in the
    /// stacking order of Figs. 3, 5 and 7.
    pub const PLOTTED: [SpatialClass; 5] = [
        SpatialClass::Cubic,
        SpatialClass::Square,
        SpatialClass::Line,
        SpatialClass::Single,
        SpatialClass::Random,
    ];

    /// Whether ABFT for matrix operations (Huang & Abraham) can correct an
    /// error with this locality: single and line errors are correctable in
    /// linear time on parallel devices, square and random (and cubic)
    /// errors are not (§III, §V-A).
    pub fn abft_correctable(&self) -> bool {
        matches!(self, SpatialClass::Single | SpatialClass::Line)
    }
}

impl std::fmt::Display for SpatialClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SpatialClass::None => "none",
            SpatialClass::Single => "single",
            SpatialClass::Line => "line",
            SpatialClass::Square => "square",
            SpatialClass::Cubic => "cubic",
            SpatialClass::Random => "random",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for SpatialClass {
    type Err = String;

    /// Parses the [`std::fmt::Display`] form back into the class (used by
    /// the campaign log and checkpoint readers).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "none" => SpatialClass::None,
            "single" => SpatialClass::Single,
            "line" => SpatialClass::Line,
            "square" => SpatialClass::Square,
            "cubic" => SpatialClass::Cubic,
            "random" => SpatialClass::Random,
            other => return Err(format!("unknown spatial class {other:?}")),
        })
    }
}

/// Classifies the corrupted coordinates of an [`ErrorReport`] into a
/// [`SpatialClass`].
///
/// # Examples
///
/// ```
/// use radcrit_core::{locality::{LocalityClassifier, SpatialClass},
///                    mismatch::Mismatch, report::ErrorReport,
///                    shape::OutputShape};
///
/// // Three corrupted elements along row 2 of a matrix: a line error.
/// let shape = OutputShape::d2(8, 8);
/// let mismatches = vec![
///     Mismatch::new([2, 1, 0], 9.0, 1.0),
///     Mismatch::new([2, 4, 0], 9.0, 1.0),
///     Mismatch::new([2, 6, 0], 9.0, 1.0),
/// ];
/// let report = ErrorReport::new(shape, mismatches);
/// let class = LocalityClassifier::default().classify(&report);
/// assert_eq!(class, SpatialClass::Line);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityClassifier {
    density_threshold: f64,
}

impl LocalityClassifier {
    /// Default bounding-box density separating block errors from scattered
    /// ones. A corrupted shared structure (cache line, scheduler entry)
    /// produces a block that fills a sizeable fraction of its bounding
    /// box; unrelated scatter fills a vanishing fraction on realistic
    /// output sizes.
    pub const DEFAULT_DENSITY_THRESHOLD: f64 = 0.05;

    /// Creates a classifier with an explicit density threshold in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `density_threshold` is not in `(0, 1]` or is NaN.
    pub fn with_density_threshold(density_threshold: f64) -> Self {
        assert!(
            density_threshold > 0.0 && density_threshold <= 1.0,
            "density threshold must be in (0, 1], got {density_threshold}"
        );
        LocalityClassifier { density_threshold }
    }

    /// The bounding-box density below which multi-axis errors are tagged
    /// random rather than square/cubic.
    pub fn density_threshold(&self) -> f64 {
        self.density_threshold
    }

    /// Classifies a report's mismatch pattern.
    pub fn classify(&self, report: &ErrorReport) -> SpatialClass {
        let coords: Vec<[usize; 3]> = report.mismatches().iter().map(|m| m.coord()).collect();
        self.classify_coords(&coords)
    }

    /// Classifies a raw coordinate set; exposed for callers that already
    /// extracted coordinates (e.g. log replay).
    pub fn classify_coords(&self, coords: &[[usize; 3]]) -> SpatialClass {
        match coords.len() {
            0 => return SpatialClass::None,
            1 => return SpatialClass::Single,
            _ => {}
        }

        let mut lo = coords[0];
        let mut hi = coords[0];
        for c in coords {
            for a in 0..3 {
                lo[a] = lo[a].min(c[a]);
                hi[a] = hi[a].max(c[a]);
            }
        }
        let spread_axes = (0..3).filter(|&a| hi[a] > lo[a]).count();

        match spread_axes {
            0 => SpatialClass::Single, // duplicate coordinates collapse
            1 => SpatialClass::Line,
            k => {
                let volume: f64 = (0..3).map(|a| (hi[a] - lo[a] + 1) as f64).product();
                let density = coords.len() as f64 / volume;
                if density >= self.density_threshold {
                    if k == 2 {
                        SpatialClass::Square
                    } else {
                        SpatialClass::Cubic
                    }
                } else {
                    SpatialClass::Random
                }
            }
        }
    }
}

impl Default for LocalityClassifier {
    fn default() -> Self {
        LocalityClassifier {
            density_threshold: Self::DEFAULT_DENSITY_THRESHOLD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mismatch::Mismatch;
    use crate::shape::OutputShape;
    use proptest::prelude::*;

    fn classify(coords: &[[usize; 3]]) -> SpatialClass {
        LocalityClassifier::default().classify_coords(coords)
    }

    #[test]
    fn display_and_from_str_round_trip() {
        for class in [
            SpatialClass::None,
            SpatialClass::Single,
            SpatialClass::Line,
            SpatialClass::Square,
            SpatialClass::Cubic,
            SpatialClass::Random,
        ] {
            assert_eq!(class.to_string().parse::<SpatialClass>(), Ok(class));
        }
        assert!("triangular".parse::<SpatialClass>().is_err());
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(classify(&[]), SpatialClass::None);
    }

    #[test]
    fn one_element_is_single() {
        assert_eq!(classify(&[[3, 4, 0]]), SpatialClass::Single);
    }

    #[test]
    fn duplicates_collapse_to_single() {
        assert_eq!(classify(&[[3, 4, 0], [3, 4, 0]]), SpatialClass::Single);
    }

    #[test]
    fn row_is_line() {
        assert_eq!(
            classify(&[[2, 0, 0], [2, 5, 0], [2, 9, 0]]),
            SpatialClass::Line
        );
    }

    #[test]
    fn column_is_line() {
        assert_eq!(
            classify(&[[0, 7, 0], [4, 7, 0], [9, 7, 0]]),
            SpatialClass::Line
        );
    }

    #[test]
    fn depth_line_in_3d() {
        assert_eq!(
            classify(&[[1, 1, 0], [1, 1, 5], [1, 1, 9]]),
            SpatialClass::Line
        );
    }

    #[test]
    fn dense_block_is_square() {
        let mut coords = Vec::new();
        for r in 10..14 {
            for c in 20..24 {
                coords.push([r, c, 0]);
            }
        }
        assert_eq!(classify(&coords), SpatialClass::Square);
    }

    #[test]
    fn dense_3d_block_is_cubic() {
        let mut coords = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    coords.push([x, y, z]);
                }
            }
        }
        assert_eq!(classify(&coords), SpatialClass::Cubic);
    }

    #[test]
    fn sparse_scatter_is_random() {
        // 4 elements spread over a 1000x1000 bounding box: density 4e-6.
        let coords = [[0, 0, 0], [999, 999, 0], [17, 903, 0], [764, 51, 0]];
        assert_eq!(classify(&coords), SpatialClass::Random);
    }

    #[test]
    fn sparse_3d_scatter_is_random() {
        let coords = [[0, 0, 0], [99, 99, 99], [5, 80, 3], [60, 2, 97]];
        assert_eq!(classify(&coords), SpatialClass::Random);
    }

    #[test]
    fn density_threshold_controls_cut() {
        // 2x2 box with 2 of 4 elements corrupted: density 0.5.
        let coords = [[0, 0, 0], [1, 1, 0]];
        let lenient = LocalityClassifier::with_density_threshold(0.4);
        let strict = LocalityClassifier::with_density_threshold(0.6);
        assert_eq!(lenient.classify_coords(&coords), SpatialClass::Square);
        assert_eq!(strict.classify_coords(&coords), SpatialClass::Random);
    }

    #[test]
    #[should_panic(expected = "density threshold")]
    fn zero_threshold_rejected() {
        LocalityClassifier::with_density_threshold(0.0);
    }

    #[test]
    fn abft_correctability_matches_paper() {
        assert!(SpatialClass::Single.abft_correctable());
        assert!(SpatialClass::Line.abft_correctable());
        assert!(!SpatialClass::Square.abft_correctable());
        assert!(!SpatialClass::Cubic.abft_correctable());
        assert!(!SpatialClass::Random.abft_correctable());
    }

    #[test]
    fn classify_via_report() {
        let shape = OutputShape::d2(8, 8);
        let report = crate::report::ErrorReport::new(
            shape,
            vec![
                Mismatch::new([1, 2, 0], 2.0, 1.0),
                Mismatch::new([1, 5, 0], 2.0, 1.0),
            ],
        );
        assert_eq!(
            LocalityClassifier::default().classify(&report),
            SpatialClass::Line
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(SpatialClass::Cubic.to_string(), "cubic");
        assert_eq!(SpatialClass::Random.to_string(), "random");
    }

    proptest! {
        /// Translating all coordinates by a constant offset never changes
        /// the classification.
        #[test]
        fn translation_invariance(
            coords in proptest::collection::vec(
                (0usize..50, 0usize..50, 0usize..50), 1..30),
            dx in 0usize..100, dy in 0usize..100, dz in 0usize..100) {
            let base: Vec<[usize; 3]> = coords.iter().map(|&(x, y, z)| [x, y, z]).collect();
            let moved: Vec<[usize; 3]> =
                base.iter().map(|c| [c[0] + dx, c[1] + dy, c[2] + dz]).collect();
            prop_assert_eq!(classify(&base), classify(&moved));
        }

        /// Permuting the axes maps line→line, square→square, etc.
        #[test]
        fn axis_permutation_invariance(
            coords in proptest::collection::vec(
                (0usize..50, 0usize..50, 0usize..50), 1..30)) {
            let base: Vec<[usize; 3]> = coords.iter().map(|&(x, y, z)| [x, y, z]).collect();
            let swapped: Vec<[usize; 3]> = base.iter().map(|c| [c[1], c[2], c[0]]).collect();
            prop_assert_eq!(classify(&base), classify(&swapped));
        }

        /// The classifier never returns None for a non-empty set and never
        /// returns Single for a set with two distinct coordinates.
        #[test]
        fn class_consistency(
            coords in proptest::collection::vec(
                (0usize..20, 0usize..20, 0usize..20), 1..30)) {
            let base: Vec<[usize; 3]> = coords.iter().map(|&(x, y, z)| [x, y, z]).collect();
            let class = classify(&base);
            prop_assert_ne!(class, SpatialClass::None);
            let distinct: std::collections::HashSet<_> = base.iter().collect();
            if distinct.len() > 1 {
                prop_assert_ne!(class, SpatialClass::Single);
            } else {
                prop_assert_eq!(class, SpatialClass::Single);
            }
        }
    }
}
