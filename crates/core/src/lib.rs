//! # radcrit-core
//!
//! Error-criticality metrics for HPC accelerator outputs, implementing the
//! methodology of *"Radiation-Induced Error Criticality in Modern HPC
//! Parallel Accelerators"* (Oliveira et al., HPCA 2017).
//!
//! The paper argues that a plain golden-output mismatch count is not enough
//! to evaluate the radiation sensitivity of HPC devices and algorithms, and
//! proposes four metrics that this crate implements:
//!
//! 1. **Number of incorrect elements** — how many output elements differ
//!    from the fault-free output ([`ErrorReport::incorrect_elements`]).
//! 2. **Relative error** — per-element
//!    `|read − expected| / |expected| × 100` ([`Mismatch::relative_error`]).
//! 3. **Mean relative error** — the average relative error over all
//!    corrupted elements of one faulty execution
//!    ([`ErrorReport::mean_relative_error`]).
//! 4. **Spatial locality** — the geometric pattern of the corrupted
//!    elements: single, line, square, cubic or random
//!    ([`locality::LocalityClassifier`]).
//!
//! A parameterized tolerance filter ([`filter::ToleranceFilter`], 2 % in the
//! paper) removes mismatches whose relative error falls inside the accepted
//! imprecision of the application, and FIT accounting ([`fit`]) converts
//! event counts and beam fluence into Failure-In-Time rates expressed in
//! arbitrary units, exactly as the paper reports them.
//!
//! ## Example
//!
//! ```
//! use radcrit_core::{compare::compare_slices, filter::ToleranceFilter,
//!                    locality::LocalityClassifier, shape::OutputShape};
//!
//! let shape = OutputShape::d2(4, 4);
//! let golden = vec![1.0_f64; 16];
//! let mut observed = golden.clone();
//! observed[5] = 1.5;   // 50 % relative error
//! observed[6] = 1.001; // 0.1 % relative error: inside a 2 % tolerance
//!
//! let report = compare_slices(&golden, &observed, shape).expect("same length");
//! assert_eq!(report.incorrect_elements(), 2);
//!
//! let filtered = ToleranceFilter::paper_default().apply(&report);
//! assert_eq!(filtered.incorrect_elements(), 1);
//!
//! let class = LocalityClassifier::default().classify(&filtered);
//! assert_eq!(class, radcrit_core::locality::SpatialClass::Single);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod compare;
pub mod dirty;
pub mod error;
pub mod exec;
pub mod filter;
pub mod fit;
pub mod histogram;
pub mod locality;
pub mod mismatch;
pub mod report;
pub mod shape;
pub mod stats;

pub use compare::compare_slices;
pub use dirty::DirtyRegion;
pub use error::CoreError;
pub use exec::{Isa, KernelExecutor};
pub use filter::ToleranceFilter;
pub use fit::{FitBreakdown, FitRate, Fluence};
pub use locality::{LocalityClassifier, SpatialClass};
pub use mismatch::Mismatch;
pub use report::{CriticalityReport, ErrorReport};
pub use shape::{Coord, OutputShape};
