//! Log-scale histograms of error magnitudes.
//!
//! Relative errors in radiation campaigns span many decades — from
//! sub-ulp mantissa flips to exploded exponents (§V-B's 20 000 %+). A
//! linear histogram is useless there; this module bins values by decade,
//! which is also how the scatter figures of the paper are best read.

use serde::{Deserialize, Serialize};

/// A histogram over decades: one bin per power of ten between `10^min`
/// and `10^max`, plus underflow/overflow bins.
///
/// # Examples
///
/// ```
/// use radcrit_core::histogram::DecadeHistogram;
///
/// let mut h = DecadeHistogram::new(-2, 4); // 0.01 % .. 10 000 %
/// h.record(0.5);
/// h.record(3.0);
/// h.record(25_000.0);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecadeHistogram {
    min_decade: i32,
    max_decade: i32,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    zeros: u64,
}

impl DecadeHistogram {
    /// Creates a histogram covering `10^min_decade ..= 10^max_decade`.
    ///
    /// # Panics
    ///
    /// Panics if `min_decade > max_decade`.
    pub fn new(min_decade: i32, max_decade: i32) -> Self {
        assert!(
            min_decade <= max_decade,
            "decade range inverted: {min_decade} > {max_decade}"
        );
        let n = (max_decade - min_decade) as usize;
        DecadeHistogram {
            min_decade,
            max_decade,
            bins: vec![0; n.max(1)],
            underflow: 0,
            overflow: 0,
            zeros: 0,
        }
    }

    /// The default range for relative errors in percent: 10⁻⁶ % (around
    /// double-precision ulp level) to 10⁶ % (exploded exponents).
    pub fn for_relative_errors() -> Self {
        DecadeHistogram::new(-6, 6)
    }

    /// Records one value. Zero and negative values count as `zeros`
    /// (relative errors are non-negative; exact zero means "equal
    /// magnitude"). Non-finite values count as overflow.
    pub fn record(&mut self, value: f64) {
        if value <= 0.0 {
            self.zeros += 1;
            return;
        }
        if !value.is_finite() {
            self.overflow += 1;
            return;
        }
        let d = value.log10().floor() as i32;
        if d < self.min_decade {
            self.underflow += 1;
        } else if d >= self.max_decade {
            self.overflow += 1;
        } else {
            self.bins[(d - self.min_decade) as usize] += 1;
        }
    }

    /// Records every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Count in the bin for decade `d` (`10^d ..< 10^(d+1)`).
    pub fn bin(&self, decade: i32) -> u64 {
        if decade < self.min_decade || decade >= self.max_decade {
            0
        } else {
            self.bins[(decade - self.min_decade) as usize]
        }
    }

    /// Values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above the top of the range, including non-finite.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Zero (or negative) values.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// All recorded values.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow + self.zeros
    }

    /// Fraction of (non-zero) values at or above `10^decade`.
    pub fn fraction_at_least(&self, decade: i32) -> f64 {
        let nonzero = self.total() - self.zeros;
        if nonzero == 0 {
            return 0.0;
        }
        let mut count = self.overflow;
        for d in decade.max(self.min_decade)..self.max_decade {
            count += self.bin(d);
        }
        if decade < self.min_decade {
            count += self.underflow;
        }
        count as f64 / nonzero as f64
    }

    /// Renders an ASCII bar view, one row per decade.
    pub fn render(&self) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.zeros > 0 {
            out.push_str(&format!("{:>10} | {}\n", "zero", self.zeros));
        }
        if self.underflow > 0 {
            out.push_str(&format!("{:>10} | {}\n", "under", self.underflow));
        }
        for d in self.min_decade..self.max_decade {
            let n = self.bin(d);
            let width = (n * 40 / max) as usize;
            out.push_str(&format!(
                "{:>9}% | {:<40} {}\n",
                format_decade(d),
                "#".repeat(width),
                n
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>10} | {}\n", "over", self.overflow));
        }
        out
    }
}

fn format_decade(d: i32) -> String {
    if (-3..=3).contains(&d) {
        format!("{}", 10f64.powi(d))
    } else {
        format!("1e{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_by_decade() {
        let mut h = DecadeHistogram::new(0, 3);
        h.record(1.0); // decade 0
        h.record(9.99); // decade 0
        h.record(10.0); // decade 1
        h.record(999.0); // decade 2
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_over_zero_flow() {
        let mut h = DecadeHistogram::new(0, 2);
        h.record(0.5); // under
        h.record(100.0); // at top => over
        h.record(0.0); // zero
        h.record(f64::INFINITY); // over
        h.record(f64::NAN); // over
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn fraction_at_least_counts_tail() {
        let mut h = DecadeHistogram::new(0, 4);
        h.extend([1.0, 15.0, 150.0, 1500.0]);
        assert!((h.fraction_at_least(2) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_least(0) - 1.0).abs() < 1e-12);
        // Zeros are excluded from the denominator.
        h.record(0.0);
        assert!((h.fraction_at_least(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = DecadeHistogram::new(-1, 2);
        h.extend([0.5, 5.0, 5.5, 50.0]);
        let r = h.render();
        assert!(r.contains('#'));
        assert!(r.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "decade range inverted")]
    fn inverted_range_panics() {
        DecadeHistogram::new(3, 1);
    }

    proptest! {
        #[test]
        fn total_equals_recorded(values in proptest::collection::vec(-1e9f64..1e9, 0..200)) {
            let mut h = DecadeHistogram::for_relative_errors();
            h.extend(values.iter().copied());
            prop_assert_eq!(h.total(), values.len() as u64);
        }

        #[test]
        fn fraction_is_monotone_in_decade(values in proptest::collection::vec(1e-8f64..1e8, 1..100)) {
            let mut h = DecadeHistogram::for_relative_errors();
            h.extend(values.iter().copied());
            let mut prev = 1.0f64;
            for d in -6..=6 {
                let f = h.fraction_at_least(d);
                prop_assert!(f <= prev + 1e-12);
                prev = f;
            }
        }
    }
}
