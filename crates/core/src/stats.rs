//! Statistical helpers for campaign analysis.
//!
//! Radiation campaigns observe counts of rare events (Poisson arrivals),
//! so uncertainty is usually reported as a Poisson confidence interval on
//! the event count. This module also provides the running summary
//! statistics used by the scatter plots (Figs. 2, 4, 6 and 8).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let std_dev = if count < 2 {
            0.0
        } else {
            let var =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64;
            var.sqrt()
        };
        Some(Summary {
            count,
            mean,
            min,
            max,
            std_dev,
        })
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0, 1], got {q}"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Fraction of values `v` satisfying `v <= bound`.
pub fn fraction_at_most(values: &[f64], bound: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= bound).count() as f64 / values.len() as f64
}

/// Two-sided Poisson confidence interval on the expectation given an
/// observed count, via the chi-square/gamma relationship with the
/// Wilson–Hilferty approximation of chi-square quantiles.
///
/// Returns `(lower, upper)` bounds on the Poisson mean. The lower bound is
/// 0 when the count is 0. Accuracy is within a fraction of a percent of
/// the exact interval for all counts, which is ample for FIT error bars.
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)`.
pub fn poisson_ci(count: usize, confidence: f64) -> (f64, f64) {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    let alpha = 1.0 - confidence;
    let lower = if count == 0 {
        0.0
    } else {
        0.5 * chi_square_quantile(alpha / 2.0, 2.0 * count as f64)
    };
    let upper = 0.5 * chi_square_quantile(1.0 - alpha / 2.0, 2.0 * (count as f64 + 1.0));
    (lower, upper)
}

/// Wilson–Hilferty approximation to the chi-square quantile function.
fn chi_square_quantile(p: f64, df: f64) -> f64 {
    let z = standard_normal_quantile(p);
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Acklam's rational approximation to the standard normal quantile
/// (inverse CDF). Absolute error below 1.15e-9 over the open unit
/// interval.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // sample std dev of 1,2,3,4 = sqrt(5/3)
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_value_summary_has_zero_std() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(3.0));
        assert_eq!(quantile(&v, 0.5), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert!((quantile(&v, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn fraction_at_most_counts() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((fraction_at_most(&v, 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((standard_normal_quantile(0.99) - 2.326348).abs() < 1e-4);
    }

    #[test]
    fn poisson_ci_zero_count() {
        let (lo, hi) = poisson_ci(0, 0.95);
        assert_eq!(lo, 0.0);
        // exact upper bound for 0 events at 95 % is ~3.689
        assert!((hi - 3.689).abs() < 0.05, "got {hi}");
    }

    #[test]
    fn poisson_ci_brackets_count() {
        for &n in &[1usize, 5, 20, 100, 1000] {
            let (lo, hi) = poisson_ci(n, 0.95);
            assert!(lo < n as f64, "lower {lo} !< {n}");
            assert!(hi > n as f64, "upper {hi} !> {n}");
        }
    }

    #[test]
    fn poisson_ci_matches_exact_for_ten() {
        // Exact 95 % CI for 10 events: (4.795, 18.390).
        let (lo, hi) = poisson_ci(10, 0.95);
        assert!((lo - 4.795).abs() < 0.1, "lower {lo}");
        assert!((hi - 18.390).abs() < 0.15, "upper {hi}");
    }

    proptest! {
        #[test]
        fn normal_quantile_is_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(standard_normal_quantile(lo) <= standard_normal_quantile(hi) + 1e-12);
        }

        #[test]
        fn normal_quantile_is_antisymmetric(p in 0.001f64..0.5) {
            let a = standard_normal_quantile(p);
            let b = standard_normal_quantile(1.0 - p);
            prop_assert!((a + b).abs() < 1e-6);
        }

        #[test]
        fn poisson_ci_widens_with_confidence(n in 0usize..500) {
            let (lo90, hi90) = poisson_ci(n, 0.90);
            let (lo99, hi99) = poisson_ci(n, 0.99);
            prop_assert!(lo99 <= lo90 + 1e-9);
            prop_assert!(hi99 >= hi90 - 1e-9);
        }

        #[test]
        fn summary_mean_within_bounds(values in proptest::collection::vec(-1e9f64..1e9, 1..64)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.mean >= s.min - 1e-6 && s.mean <= s.max + 1e-6);
        }
    }
}
