//! Output shapes and coordinates.
//!
//! HPC output data is commonly structured as one-, two- or
//! three-dimensional arrays (§III of the paper). [`OutputShape`] describes
//! the logical geometry of a flat output buffer and converts between linear
//! indices and [`Coord`]inates, which the spatial-locality classifier
//! operates on.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A coordinate in up to three dimensions.
///
/// Unused trailing axes are fixed at `0`, so a 2-D coordinate `(row, col)`
/// is stored as `[row, col, 0]`. This uniform representation lets the
/// locality classifier treat all ranks with the same code path.
pub type Coord = [usize; 3];

/// The logical geometry of a flat output buffer.
///
/// # Examples
///
/// ```
/// use radcrit_core::shape::OutputShape;
///
/// let shape = OutputShape::d2(3, 4);
/// assert_eq!(shape.len(), 12);
/// assert_eq!(shape.coord_of(7), [1, 3, 0]);
/// assert_eq!(shape.index_of([1, 3, 0]), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OutputShape {
    dims: [usize; 3],
    rank: u8,
}

impl OutputShape {
    /// Creates a one-dimensional shape with `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero; use [`OutputShape::try_d1`] for a fallible
    /// constructor.
    pub fn d1(n: usize) -> Self {
        Self::try_d1(n).expect("dimension must be non-zero")
    }

    /// Creates a two-dimensional (`rows × cols`) shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::try_d2(rows, cols).expect("dimensions must be non-zero")
    }

    /// Creates a three-dimensional (`x × y × z`) shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn d3(x: usize, y: usize, z: usize) -> Self {
        Self::try_d3(x, y, z).expect("dimensions must be non-zero")
    }

    /// Fallible variant of [`OutputShape::d1`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyShape`] if `n` is zero.
    pub fn try_d1(n: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::EmptyShape);
        }
        Ok(OutputShape {
            dims: [n, 1, 1],
            rank: 1,
        })
    }

    /// Fallible variant of [`OutputShape::d2`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyShape`] if either dimension is zero.
    pub fn try_d2(rows: usize, cols: usize) -> Result<Self, CoreError> {
        if rows == 0 || cols == 0 {
            return Err(CoreError::EmptyShape);
        }
        Ok(OutputShape {
            dims: [rows, cols, 1],
            rank: 2,
        })
    }

    /// Fallible variant of [`OutputShape::d3`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyShape`] if any dimension is zero.
    pub fn try_d3(x: usize, y: usize, z: usize) -> Result<Self, CoreError> {
        if x == 0 || y == 0 || z == 0 {
            return Err(CoreError::EmptyShape);
        }
        Ok(OutputShape {
            dims: [x, y, z],
            rank: 3,
        })
    }

    /// The number of logical axes (1, 2 or 3).
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// The extent of each axis; trailing unused axes report `1`.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The total number of elements described by this shape.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Always `false`: shapes are constructed with non-zero dimensions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Converts a linear index into a coordinate (row-major / C order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn coord_of(&self, index: usize) -> Coord {
        assert!(
            index < self.len(),
            "index {index} out of bounds for shape of {} elements",
            self.len()
        );
        let plane = self.dims[1] * self.dims[2];
        let x = index / plane;
        let rem = index % plane;
        let y = rem / self.dims[2];
        let z = rem % self.dims[2];
        [x, y, z]
    }

    /// Converts a coordinate into a linear index (row-major / C order).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the shape.
    pub fn index_of(&self, coord: Coord) -> usize {
        assert!(
            coord[0] < self.dims[0] && coord[1] < self.dims[1] && coord[2] < self.dims[2],
            "coordinate {coord:?} out of bounds for dims {:?}",
            self.dims
        );
        (coord[0] * self.dims[1] + coord[1]) * self.dims[2] + coord[2]
    }

    /// Validates that `slice_len` matches this shape's volume.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] when the lengths disagree.
    pub fn check_len(&self, slice_len: usize) -> Result<(), CoreError> {
        if slice_len == self.len() {
            Ok(())
        } else {
            Err(CoreError::ShapeMismatch {
                expected: self.len(),
                actual: slice_len,
            })
        }
    }
}

impl std::fmt::Display for OutputShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.rank {
            1 => write!(f, "{}", self.dims[0]),
            2 => write!(f, "{}x{}", self.dims[0], self.dims[1]),
            _ => write!(f, "{}x{}x{}", self.dims[0], self.dims[1], self.dims[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn d1_roundtrip() {
        let s = OutputShape::d1(10);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.len(), 10);
        for i in 0..10 {
            assert_eq!(s.coord_of(i), [i, 0, 0]);
            assert_eq!(s.index_of([i, 0, 0]), i);
        }
    }

    #[test]
    fn d2_coord_layout_is_row_major() {
        let s = OutputShape::d2(2, 3);
        assert_eq!(s.coord_of(0), [0, 0, 0]);
        assert_eq!(s.coord_of(2), [0, 2, 0]);
        assert_eq!(s.coord_of(3), [1, 0, 0]);
        assert_eq!(s.coord_of(5), [1, 2, 0]);
    }

    #[test]
    fn d3_roundtrip_all() {
        let s = OutputShape::d3(2, 3, 4);
        assert_eq!(s.len(), 24);
        for i in 0..24 {
            assert_eq!(s.index_of(s.coord_of(i)), i);
        }
    }

    #[test]
    fn zero_dims_rejected() {
        assert_eq!(OutputShape::try_d1(0), Err(CoreError::EmptyShape));
        assert_eq!(OutputShape::try_d2(0, 3), Err(CoreError::EmptyShape));
        assert_eq!(OutputShape::try_d2(3, 0), Err(CoreError::EmptyShape));
        assert_eq!(OutputShape::try_d3(1, 0, 1), Err(CoreError::EmptyShape));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn coord_of_out_of_range_panics() {
        OutputShape::d2(2, 2).coord_of(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_of_out_of_range_panics() {
        OutputShape::d2(2, 2).index_of([2, 0, 0]);
    }

    #[test]
    fn check_len_matches() {
        let s = OutputShape::d2(4, 4);
        assert!(s.check_len(16).is_ok());
        assert_eq!(
            s.check_len(15),
            Err(CoreError::ShapeMismatch {
                expected: 16,
                actual: 15
            })
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(OutputShape::d1(8).to_string(), "8");
        assert_eq!(OutputShape::d2(8, 9).to_string(), "8x9");
        assert_eq!(OutputShape::d3(2, 3, 4).to_string(), "2x3x4");
    }

    proptest! {
        #[test]
        fn roundtrip_index_coord(x in 1usize..20, y in 1usize..20, z in 1usize..20,
                                 frac in 0.0f64..1.0) {
            let s = OutputShape::d3(x, y, z);
            let idx = ((s.len() as f64 - 1.0) * frac) as usize;
            prop_assert_eq!(s.index_of(s.coord_of(idx)), idx);
        }

        #[test]
        fn coords_within_dims(x in 1usize..20, y in 1usize..20, z in 1usize..20,
                              frac in 0.0f64..1.0) {
            let s = OutputShape::d3(x, y, z);
            let idx = ((s.len() as f64 - 1.0) * frac) as usize;
            let c = s.coord_of(idx);
            prop_assert!(c[0] < x && c[1] < y && c[2] < z);
        }
    }
}
